#!/usr/bin/env python
"""jobctl — talk to a running ``python -m repro.service`` from the CLI.

Subcommands (all stdlib, all against http://127.0.0.1:<port>):

* ``submit <payload.pkl>`` — POST a pickled EvalJobSpec/CurationJobSpec
  (build one with ``repro.service.EvalJobSpec(plan)`` and
  ``pickle.dump``); prints the queued job id;
* ``status <job_id>`` — one job's current ledger state;
* ``jobs`` — every job the service knows about;
* ``result <job_id>`` — the result summary (``--pickle OUT`` saves the
  full pickled result object instead);
* ``cancel <job_id>`` — cancel a job;
* ``drain`` — ask the service to drain to resumable;
* ``tail <ledger.jsonl>`` — pretty-print a service ledger, following
  appends with ``-f`` (reads the file directly, no service needed).

Example::

    PYTHONPATH=src python -m repro.service --root /tmp/svc --port 8787 &
    PYTHONPATH=src python tools/jobctl.py submit plan.pkl --port 8787
    PYTHONPATH=src python tools/jobctl.py status job-000001 --port 8787
    PYTHONPATH=src python tools/jobctl.py tail /tmp/svc/ledger.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def _url(args: argparse.Namespace, path: str) -> str:
    return f"http://127.0.0.1:{args.port}{path}"


def _get(args: argparse.Namespace, path: str):
    with urllib.request.urlopen(_url(args, path)) as resp:
        return json.load(resp)


def _post(args: argparse.Namespace, path: str, data: bytes = b"",
          headers=None):
    request = urllib.request.Request(
        _url(args, path), data=data, method="POST",
        headers=dict(headers or {}),
    )
    with urllib.request.urlopen(request) as resp:
        return json.load(resp)


def cmd_submit(args: argparse.Namespace) -> int:
    with open(args.payload, "rb") as handle:
        body = handle.read()
    job = _post(
        args, "/submit", body, headers={"X-Repro-Client": args.client}
    )
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    print(json.dumps(_get(args, f"/status/{args.job_id}"),
                     indent=2, sort_keys=True))
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    for job in _get(args, "/jobs")["jobs"]:
        print(
            f"{job['job_id']}  {job['state']:<10} "
            f"attempts={job['attempts']} client={job['client']} "
            f"{job['detail']}"
        )
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    if args.pickle:
        with urllib.request.urlopen(
            _url(args, f"/result/{args.job_id}?pickle=1")
        ) as resp:
            blob = resp.read()
        with open(args.pickle, "wb") as handle:
            handle.write(blob)
        print(f"wrote {len(blob)} bytes to {args.pickle}")
    else:
        print(json.dumps(_get(args, f"/result/{args.job_id}"),
                         indent=2, sort_keys=True))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    print(json.dumps(_post(args, f"/cancel/{args.job_id}"),
                     indent=2, sort_keys=True))
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    print(json.dumps(_post(args, "/drain"), indent=2, sort_keys=True))
    return 0


def _format_event(line: str) -> str:
    try:
        event = json.loads(line)
    except json.JSONDecodeError:
        return f"?? {line.rstrip()}"
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(event.get("ts", 0))
    )
    extra = []
    for key in ("attempts", "executor", "error", "degraded"):
        if event.get(key):
            extra.append(f"{key}={event[key]}")
    detail = event.get("detail", "")
    return (
        f"{stamp}  {event.get('job', '?'):<12} "
        f"{event.get('state', '?'):<10} "
        f"{' '.join(extra)}{'  ' if extra and detail else ''}{detail}"
    )


def cmd_tail(args: argparse.Namespace) -> int:
    with open(args.ledger, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                print(_format_event(line))
        while args.follow:
            line = handle.readline()
            if line:
                if line.strip():
                    print(_format_event(line), flush=True)
            else:
                time.sleep(0.2)
    return 0


def main(argv=None) -> int:
    # --port is accepted both before and after the subcommand
    # (``jobctl --port N jobs`` and ``jobctl jobs --port N``).  The
    # subcommand copy uses SUPPRESS so its default cannot clobber a
    # value already parsed by the top-level parser (bpo-9351).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--port", type=int, default=argparse.SUPPRESS)
    parser = argparse.ArgumentParser(
        prog="jobctl", description=__doc__.splitlines()[0],
    )
    parser.add_argument("--port", type=int, default=8787)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="POST a pickled job payload",
                       parents=[common])
    p.add_argument("payload")
    p.add_argument("--client", default="jobctl")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="show one job",
                   parents=[common])
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("jobs", help="list all jobs", parents=[common])
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser("result", help="fetch a done job's result",
                   parents=[common])
    p.add_argument("job_id")
    p.add_argument("--pickle", metavar="OUT",
                   help="save the full pickled result here")
    p.set_defaults(fn=cmd_result)

    p = sub.add_parser("cancel", help="cancel a job", parents=[common])
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("drain", help="drain the service", parents=[common])
    p.set_defaults(fn=cmd_drain)

    p = sub.add_parser("tail", help="pretty-print a service ledger",
                   parents=[common])
    p.add_argument("ledger")
    p.add_argument("-f", "--follow", action="store_true")
    p.set_defaults(fn=cmd_tail)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except urllib.error.HTTPError as exc:
        try:
            message = json.load(exc).get("error", "")
        except Exception:
            message = ""
        print(f"error {exc.code}: {message or exc.reason}", file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(
            f"cannot reach service on port {args.port}: {exc.reason}",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":
    sys.exit(main())
