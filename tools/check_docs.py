#!/usr/bin/env python
"""Execute the documentation so it cannot rot.

Two kinds of checks, both wired into CI and into the tier-1 suite
through ``tests/test_docs.py``:

* every fenced ```python code block in ``README.md`` and ``docs/*.md``
  runs top to bottom in its own namespace (blocks are self-contained by
  convention; any uncaught exception fails the check and names the file
  and line the block starts on);
* the doctests of the public simulation API modules
  (:mod:`repro.sim.simulator`, :mod:`repro.sim.testbench`) run via
  :mod:`doctest`, so the examples in those docstrings stay executable.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]

With no arguments it checks README.md plus every markdown file under
docs/.
"""

from __future__ import annotations

import doctest
import importlib
import pathlib
import re
import sys
import traceback
from typing import List, Sequence, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: modules whose docstring examples must stay runnable
DOCTEST_MODULES = (
    "repro.sim.simulator",
    "repro.sim.testbench",
    "repro.sim.coverage",
)

_FENCE = re.compile(r"^```(\w*)\s*$")


def extract_blocks(path: pathlib.Path) -> List[Tuple[int, str]]:
    """Fenced ```python blocks in ``path`` as (start line, code) pairs."""
    blocks: List[Tuple[int, str]] = []
    language = None
    start = 0
    lines: List[str] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        fence = _FENCE.match(line)
        if fence is None:
            if language is not None:
                lines.append(line)
            continue
        if language is None:
            language = fence.group(1).lower()
            start = lineno + 1
            lines = []
        else:
            if language == "python":
                blocks.append((start, "\n".join(lines) + "\n"))
            language = None
    return blocks


def run_block(path: pathlib.Path, lineno: int, code: str) -> bool:
    """Execute one code block; report and return False on failure."""
    namespace = {"__name__": f"docblock:{path.name}:{lineno}"}
    # Pad with blank lines so traceback line numbers are absolute in the
    # markdown file instead of relative to the block.
    padded = "\n" * (lineno - 1) + code
    try:
        exec(compile(padded, str(path), "exec"), namespace)
    except Exception:
        print(f"FAIL {path}:{lineno}")
        traceback.print_exc()
        return False
    print(f"ok   {path}:{lineno}")
    return True


def run_doctests(module_name: str) -> bool:
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    if results.failed:
        print(f"FAIL doctests: {module_name} ({results.failed} failing)")
        return False
    print(f"ok   doctests: {module_name} ({results.attempted} examples)")
    return True


def default_paths() -> List[pathlib.Path]:
    paths = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        paths.extend(sorted(docs.glob("*.md")))
    return paths


def main(argv: Sequence[str] = ()) -> int:
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    paths = [pathlib.Path(arg) for arg in argv] or default_paths()
    ok = True
    total = 0
    for path in paths:
        for lineno, code in extract_blocks(path):
            total += 1
            ok = run_block(path, lineno, code) and ok
    for module_name in DOCTEST_MODULES:
        ok = run_doctests(module_name) and ok
    if total == 0:
        print("FAIL: no python code blocks found — wrong paths?")
        return 1
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
