#!/usr/bin/env python
"""Render a human report from traced-run artifacts (``repro.obs``).

Usage::

    python tools/trace_report.py [DIR] [--top N] [--merge]

``DIR`` defaults to ``REPRO_OBS_DIR`` or ``repro_obs``; it may be a run
directory containing ``events.jsonl`` directly, or a parent directory
holding any number of exported runs (``<name>-<pid>-<seq>/``) — each run
found is reported in turn, or, with ``--merge``, every log found is
folded into one combined report (spans concatenated, counters and
histograms summed, gauges last-wins) — the view you want for a cluster
run, whose coordinator and ``cluster-worker-<id>-<pid>/`` logs land
side by side.  For every run the report shows:

* the per-span breakdown: call count, total/mean/max wall time, CPU
  time, grouped by span name;
* the final metric values (counters, gauges, histograms);
* the top-N slowest ``vereval.problem`` spans — the problems to look at
  first when an evaluation run is slow.

Reads only the ``events.jsonl`` log, so it works on artifacts shipped
from another machine (e.g. a CI trace artifact) without the repo's
source tree on ``sys.path`` beyond this file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Iterator, List, Tuple

_NS_PER_S = 1_000_000_000.0


def find_event_logs(root: str) -> List[str]:
    """Every ``events.jsonl`` under ``root`` (or ``root`` itself)."""
    if os.path.isfile(root):
        return [root]
    direct = os.path.join(root, "events.jsonl")
    if os.path.isfile(direct):
        return [direct]
    found: List[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        if "events.jsonl" in filenames:
            found.append(os.path.join(dirpath, "events.jsonl"))
    return found


def read_lines(path: str) -> Iterator[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                yield json.loads(raw)


def _fmt_seconds(ns: float) -> str:
    return f"{ns / _NS_PER_S:9.3f}s"


def _span_table(spans: List[Dict[str, Any]]) -> List[str]:
    agg: Dict[str, List[float]] = {}
    for span in spans:
        entry = agg.setdefault(span["name"], [0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
        entry[2] = max(entry[2], span["dur"])
        entry[3] += span.get("cpu") or 0.0
    if not agg:
        return []
    width = max(len(name) for name in agg)
    lines = [
        f"  {'span':<{width}}  {'n':>7}  {'total':>10} "
        f"{'mean':>10} {'max':>10} {'cpu':>10}"
    ]
    for name, (n, total, peak, cpu) in sorted(
        agg.items(), key=lambda item: -item[1][1]
    ):
        lines.append(
            f"  {name:<{width}}  {n:>7}  {_fmt_seconds(total):>10} "
            f"{_fmt_seconds(total / n):>10} {_fmt_seconds(peak):>10} "
            f"{_fmt_seconds(cpu):>10}"
        )
    return lines


def _metric_table(lines_in: List[Dict[str, Any]]) -> List[str]:
    rows: List[Tuple[str, str]] = []
    for line in lines_in:
        if line["type"] in ("counter", "gauge"):
            rows.append((line["name"], f"{line['value']:g}"))
        elif line["type"] == "histogram":
            n = line["count"]
            mean = line["sum"] / n if n else 0.0
            rows.append((
                line["name"],
                f"n={n} mean={mean:g} min={line['min']:g} "
                f"max={line['max']:g}",
            ))
    if not rows:
        return []
    width = max(len(name) for name, _ in rows)
    return [f"  {name:<{width}}  {value}" for name, value in sorted(rows)]


def _slowest_problems(
    spans: List[Dict[str, Any]], top: int
) -> List[str]:
    problems = [s for s in spans if s["name"] == "vereval.problem"]
    problems.sort(key=lambda s: -s["dur"])
    lines = []
    for span in problems[:top]:
        attrs = span.get("attrs") or {}
        label = attrs.get("problem", "?")
        candidates = attrs.get("candidates", "?")
        lines.append(
            f"  {_fmt_seconds(span['dur'])}  {label} "
            f"(candidates={candidates})"
        )
    return lines


def _report_block(
    header: str, lines_in: List[Dict[str, Any]], top: int
) -> List[str]:
    spans = [line for line in lines_in if line["type"] == "span"]
    out = [header]
    span_table = _span_table(spans)
    if span_table:
        out.append("spans:")
        out.extend(span_table)
    metric_table = _metric_table(lines_in)
    if metric_table:
        out.append("metrics:")
        out.extend(metric_table)
    slowest = _slowest_problems(spans, top)
    if slowest:
        out.append(f"slowest problems (top {top}):")
        out.extend(slowest)
    return out


def report_run(path: str, top: int) -> List[str]:
    lines_in = list(read_lines(path))
    meta = next(
        (line for line in lines_in if line["type"] == "meta"), {}
    )
    header = (
        f"== {os.path.dirname(path) or path} "
        f"(run={meta.get('run', '?')}, mode={meta.get('mode', '?')}) =="
    )
    return _report_block(header, lines_in, top)


def merge_logs(paths: List[str]) -> List[Dict[str, Any]]:
    """Fold several event logs into one combined line list.

    Spans concatenate; counters sum by name; gauges are last-wins;
    histograms merge count/sum/min/max.  This is how a cluster run —
    one coordinator log plus one residual log per worker — reads as a
    single report.
    """
    spans: List[Dict[str, Any]] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    runs: List[str] = []
    for path in paths:
        for line in read_lines(path):
            kind = line["type"]
            if kind == "meta":
                runs.append(str(line.get("run", "?")))
            elif kind == "span":
                spans.append(line)
            elif kind == "counter":
                counters[line["name"]] = (
                    counters.get(line["name"], 0) + line["value"]
                )
            elif kind == "gauge":
                gauges[line["name"]] = line["value"]
            elif kind == "histogram":
                merged = histograms.get(line["name"])
                if merged is None:
                    histograms[line["name"]] = dict(line)
                else:
                    merged["count"] += line["count"]
                    merged["sum"] += line["sum"]
                    merged["min"] = min(merged["min"], line["min"])
                    merged["max"] = max(merged["max"], line["max"])
    out: List[Dict[str, Any]] = [
        {"type": "meta", "run": "+".join(runs) or "?", "mode": "merged"}
    ]
    out.extend(spans)
    out.extend(
        {"type": "counter", "name": name, "value": value}
        for name, value in counters.items()
    )
    out.extend(
        {"type": "gauge", "name": name, "value": value}
        for name, value in gauges.items()
    )
    out.extend(histograms.values())
    return out


def report_merged(paths: List[str], top: int) -> List[str]:
    lines_in = merge_logs(paths)
    meta = lines_in[0]
    header = f"== merged: {len(paths)} logs (runs={meta['run']}) =="
    return _report_block(header, lines_in, top)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize repro.obs trace artifacts."
    )
    parser.add_argument(
        "directory",
        nargs="?",
        default=os.environ.get("REPRO_OBS_DIR") or "repro_obs",
        help="run directory or parent of run directories "
        "(default: $REPRO_OBS_DIR or ./repro_obs)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="slowest problems to list per run (default 10)",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="fold every log found into one combined report "
        "(e.g. a cluster coordinator plus its worker logs)",
    )
    args = parser.parse_args(argv)
    logs = find_event_logs(args.directory)
    if not logs:
        print(
            f"no events.jsonl found under {args.directory!r} "
            "(run with REPRO_OBS=trace to produce one)",
            file=sys.stderr,
        )
        return 1
    if args.merge:
        blocks = [report_merged(logs, args.top)]
    else:
        blocks = [report_run(path, args.top) for path in logs]
    print("\n\n".join("\n".join(block) for block in blocks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
