"""E2 — Table II: functional Verilog generation (mini-VerilogEval pass@k).

Regenerates the table's two blocks: foundation models and Verilog-tuned
models.  Shape to reproduce (the paper's orderings, not its absolute
numbers — our substrate is a scaled simulation):

* every Verilog-tuned model beats its own base model;
* instruction-tuned policies (CraftRTL, CodeV, OriGen) sit at the top,
  continual-pre-training-only models (VeriGen, FreeV) below them;
* FreeV improves on Llama-3.1 with the gain concentrated at pass@5/10
  (paper: +0.7 / +7.9 / +10.1).
"""

from repro.vereval import EvalConfig, evaluate_model
from benchmarks.conftest import write_result

FOUNDATION = [
    "GPT-4",
    "CodeLlama-7B",
    "DeepSeek-Coder-6.7B",
    "CodeQwen-7B",
    "Llama-3.1-8B-Instruct",
]
TUNED = [
    ("VeriGen", "CodeGen-6B-multi"),
    ("RTLCoder-DS", "DeepSeek-Coder-6.7B"),
    ("BetterV-CodeQwen", "CodeQwen-7B"),
    ("CodeV-DS-6.7B", "DeepSeek-Coder-6.7B"),
    ("OriGen-DS", "DeepSeek-Coder-6.7B"),
    ("CraftRTL-StarCoder2", "StarCoder2-15B"),
    ("FreeV-Llama3.1", "Llama-3.1-8B-Instruct"),
]

_CONFIG = EvalConfig(
    n_samples=10, ks=(1, 5, 10), temperatures=(0.2, 0.8), max_new_tokens=600
)


def test_table2(benchmark, model_zoo, problems):
    scores = {}

    def eval_model(name):
        if name not in scores:
            result = evaluate_model(model_zoo.model(name), problems, _CONFIG)
            scores[name] = result.best()
        return scores[name]

    bases_of_tuned = sorted({base for _, base in TUNED})
    lines = [f"{'model':<24}{'pass@1':>8}{'pass@5':>8}{'pass@10':>9}"]
    lines.append("-- foundation models --")
    for name in sorted(set(FOUNDATION) | set(bases_of_tuned)):
        s = eval_model(name)
        lines.append(
            f"{name:<24}{s[1]:>8.1%}{s[5]:>8.1%}{s[10]:>9.1%}"
        )
    lines.append("-- verilog-tuned models --")
    for name, _base in TUNED:
        s = eval_model(name)
        lines.append(
            f"{name:<24}{s[1]:>8.1%}{s[5]:>8.1%}{s[10]:>9.1%}"
        )
        if name != "FreeV-Llama3.1":
            model_zoo.evict(name)
    write_result("table2_verilogeval", "\n".join(lines))

    # fine-tuning on Verilog helps: every tuned model clears its base at
    # pass@10 (small tolerance for sampling noise at this problem count)
    for tuned, base in TUNED:
        assert scores[tuned][10] >= scores[base][10] - 0.05, (tuned, base)
    # FreeV's gain over Llama is real and concentrated at higher k
    llama = scores["Llama-3.1-8B-Instruct"]
    freev = scores["FreeV-Llama3.1"]
    assert freev[10] > llama[10]
    assert freev[10] - llama[10] >= freev[1] - llama[1] - 0.02
    # Verilog-tuned models dominate the foundation block on average
    # (GPT-4 excluded, as in the paper's narrative)
    tuned_mean = sum(scores[t][10] for t, _ in TUNED) / len(TUNED)
    foundation_mean = sum(
        scores[f][10] for f in FOUNDATION if f != "GPT-4"
    ) / (len(FOUNDATION) - 1)
    assert tuned_mean > foundation_mean
    # instruction-tuned policies at least match the pretrain-only ones at
    # the top (paper: CraftRTL tops Table II; with 20 problems the pass@10
    # granularity is 5%, so assert tie-or-better)
    instruct = [
        t for t, _ in TUNED if t not in ("VeriGen", "FreeV-Llama3.1")
    ]
    pretrain_only = ["VeriGen", "FreeV-Llama3.1"]
    assert max(scores[t][10] for t in instruct) >= max(
        scores[t][10] for t in pretrain_only
    )

    # timed unit: one model's full pass@k evaluation at one temperature
    quick = EvalConfig(
        n_samples=5, ks=(1, 5), temperatures=(0.8,), max_new_tokens=400
    )
    benchmark.pedantic(
        lambda: evaluate_model(
            model_zoo.model("Llama-3.1-8B-Instruct"), problems[:5], quick
        ),
        rounds=1,
        iterations=1,
    )
