"""Evaluation performance: the engine-backed evalkit vs the seed harness.

Claim, measured at bench-world scale: running the paper's pass@k
protocol through :class:`repro.evalkit.EvalPlan` is at least 2x faster
than the seed's serial evaluation harness, with numerically identical
results (same pass@k per temperature, same per-sample seeds).

The baseline below is the seed-era harness *frozen verbatim* — the
serial ``evaluate_model`` loop, its ``check_completion`` (golden module
re-parsed, re-elaborated, and re-simulated for every completion; the
hand-written character lexer), and the seed sampler (per-token
``context + generated`` concatenation, whole-context copies in the
n-gram hash, numpy-scalar table lookups) — so the comparison survives
this PR's refactor of the live code paths.  The evalkit side gets its
speed from the golden parse/elaboration/trace cache, the regex lexer,
prompt-token reuse, duplicate-completion memoization, and the linear
sampling loop; on multi-core machines the pooled check/generate phase
adds process-level parallelism on top.
"""

import gc
import time

import numpy as np

from repro.engine import auto_executor
from repro.errors import ElaborationError, SimulationError, TrainingError
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm.ngram import _HASH_MULT, _HASH_SEED, NGramLM
from repro.llm.sampler import GenerationConfig
from repro.sim import elaborate, equivalence_check, random_stimulus
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalConfig, EvalResult, ProblemOutcome
from repro.vereval.passk import mean_pass_at_k
from repro.verilog import parse_source

from benchmarks.conftest import write_result

_CONFIG = EvalConfig(
    n_samples=10, ks=(1, 5, 10), temperatures=(0.2, 0.8), max_new_tokens=600
)

_MASK_64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# The seed evaluation path, frozen: serial loops, per-sample golden work,
# quadratic sampling.  Reproduced from the pre-evalkit implementation.
# ---------------------------------------------------------------------------


def _seed_hash_context(context, order):
    acc = int(_HASH_SEED)
    if order > 0:
        window = list(context)[-order:]
        for token in window:
            acc = ((acc * int(_HASH_MULT)) + int(token)) & _MASK_64
    return acc


def _seed_distribution(lm, context):
    for order in lm.counts.orders:
        if order > len(context):
            continue
        table = lm.counts.tables[order]
        if len(table.keys) == 0:
            continue
        key = np.uint64(_seed_hash_context(context, order))
        pos = int(np.searchsorted(table.keys, key))
        if pos >= len(table.keys) or table.keys[pos] != key:
            continue
        next_tokens = table.next_tokens[int(table.offsets[pos]):
                                        int(table.offsets[pos + 1])]
        weights = table.counts[int(table.offsets[pos]):
                               int(table.offsets[pos + 1])]
        if order > 0 and float(weights.sum()) < lm.min_evidence:
            continue
        return next_tokens, weights, order
    raise TrainingError("model has no training data (empty unigram table)")


def _seed_sample_token(lm, context, temperature, rng):
    next_tokens, weights, _ = _seed_distribution(lm, context)
    if len(next_tokens) == 1:
        return int(next_tokens[0])
    if temperature <= 1e-6:
        return int(next_tokens[int(np.argmax(weights))])
    logw = np.log(weights.astype(np.float64)) / temperature
    logw -= logw.max()
    probs = np.exp(logw)
    probs /= probs.sum()
    pick = rng.random()
    return int(next_tokens[int(np.searchsorted(np.cumsum(probs), pick))])


def _seed_generate(model, lm, prompt, config, seed):
    rng = DeterministicRNG(seed)
    context = model.tokenizer.encode(prompt)
    generated = []
    text_parts = []
    max_stop = max((len(s) for s in config.stop_strings), default=0)
    for _ in range(config.max_new_tokens):
        token = _seed_sample_token(
            lm, context + generated, config.temperature, rng
        )
        generated.append(token)
        piece = model.tokenizer.decode([token])
        text_parts.append(piece)
        if max_stop:
            window = "".join(text_parts[-(max_stop + len(piece)):])
            for stop in config.stop_strings:
                if window.find(stop) >= 0:
                    text = "".join(text_parts)
                    end = text.find(stop) + (
                        len(stop) if config.include_stop else 0
                    )
                    return text[:end]
    return "".join(text_parts)


def _seed_check_completion(problem, completion):
    candidate_source = problem.prompt() + completion
    try:
        candidate_file = parse_source(candidate_source)
    except Exception:
        return False, "syntax"
    name = problem.module.name
    if candidate_file.module(name) is None:
        return False, "missing_module"
    try:
        golden = elaborate(parse_source(problem.golden_source), name)
        candidate = elaborate(candidate_file, name)
    except ElaborationError:
        return False, "elaboration"
    interface = problem.module.interface
    stimulus = random_stimulus(
        golden, problem.stimulus_cycles, seed=problem.stimulus_seed
    )
    try:
        verdict = equivalence_check(
            golden,
            candidate,
            stimulus,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
    except SimulationError:
        return False, "simulation"
    if verdict.equivalent:
        return True, ""
    return False, verdict.error or "mismatch"


def seed_serial_evaluation(model, problems, config):
    """The seed pass@k harness, end to end."""
    lm = NGramLM(model.counts)
    result = EvalResult(model_name=model.name)
    for temperature in config.temperatures:
        outcomes = []
        for problem in problems:
            gen_config = GenerationConfig(
                temperature=temperature,
                max_new_tokens=config.max_new_tokens,
                stop_strings=("endmodule",),
            )
            passes = 0
            failures = {}
            prompt = problem.prompt()
            for sample_index in range(config.n_samples):
                seed = DeterministicRNG(config.seed).fork(
                    model.name, temperature, problem.problem_id, sample_index
                ).seed
                completion = _seed_generate(
                    model, lm, prompt, gen_config, seed
                )
                ok, reason = _seed_check_completion(problem, completion)
                if ok:
                    passes += 1
                else:
                    failures[reason] = failures.get(reason, 0) + 1
            outcomes.append(
                ProblemOutcome(
                    problem_id=problem.problem_id,
                    passes=passes,
                    samples=config.n_samples,
                    failures=failures,
                )
            )
        result.outcomes[temperature] = outcomes
        counts = [o.passes for o in outcomes]
        result.per_temperature[temperature] = {
            k: mean_pass_at_k(counts, config.n_samples, k) for k in config.ks
        }
    return result


def _timed(fn, repeats=2):
    """Best-of-N wall time with the cyclic GC paused during measurement."""
    best, value = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_evalkit_speedup(benchmark, trainer, problems):
    model = trainer.base_model()

    serial_seconds, serial = _timed(
        lambda: seed_serial_evaluation(model, problems, _CONFIG)
    )

    executor = auto_executor()  # one (possibly pooled) executor, closed below

    def evalkit_run():
        # Cold start each repeat: the golden-artifact cache is part of
        # what is being measured, not pre-warmed state.
        import repro.vereval.harness as harness

        harness._GOLDEN_CACHE.clear()
        plan = EvalPlan(
            [model], [PassAtKTask(problems, _CONFIG)], executor=executor
        )
        return plan.run()

    try:
        evalkit_seconds, run = _timed(evalkit_run)
        kit = run.result(model.name, "passk")

        # identical numbers: pass@k per temperature, outcomes, and the
        # per-sample seed chain
        assert kit == serial
        expected_seeds = [
            DeterministicRNG(_CONFIG.seed).fork(
                model.name, temperature, problem.problem_id, sample_index
            ).seed
            for temperature in _CONFIG.temperatures
            for problem in problems
            for sample_index in range(_CONFIG.n_samples)
        ]
        assert run.seeds(model.name, "passk") == expected_seeds

        speedup = serial_seconds / evalkit_seconds
        samples = len(expected_seeds)
        write_result(
            "evalkit_speedup",
            f"pass@k protocol: {len(problems)} problems x "
            f"{len(_CONFIG.temperatures)} temperatures x "
            f"{_CONFIG.n_samples} samples = {samples} samples\n"
            f"seed serial harness:  {serial_seconds:8.3f} s\n"
            f"evalkit plan:         {evalkit_seconds:8.3f} s\n"
            f"speedup:              {speedup:8.2f} x\n"
            f"(pass@k, outcomes, and per-sample seeds identical)",
            values={
                "samples": samples,
                "serial_seconds": serial_seconds,
                "evalkit_seconds": evalkit_seconds,
                "speedup": speedup,
            },
        )
        assert speedup >= 2.0, (
            f"evalkit only {speedup:.2f}x faster than seed path"
        )
        benchmark.pedantic(evalkit_run, rounds=1, iterations=1)
    finally:
        executor.close()
