"""Engine performance: chunked-parallel curation and incremental ingest.

Two claims, measured at bench-world scale:

1. the engine's chunked path (batched MinHash permutations, regex-lexed
   syntax checks, streaming chunks) curates the corpus at least 2x faster
   than the seed's serial whole-corpus loop, with byte-identical output;
2. incrementally ingesting a 10% batch into a live
   :class:`IncrementalCurator` is at least 5x faster than re-curating the
   grown corpus from scratch, again with identical output.

The serial baseline below is the seed's ``CurationPipeline.run`` loop,
reproduced verbatim from the pre-engine implementation so the comparison
survives the facade refactor.
"""

import gc
import time

from repro.curation import CopyrightFilter, CurationPipeline, IncrementalCurator, LicenseFilter
from repro.curation.report import FunnelReport
from repro.dedup import deduplicate
from repro.verilog import check_syntax

from benchmarks.conftest import write_result


def seed_serial_curation(files):
    """The seed pipeline, frozen: serial, whole-corpus, per-file hashing."""
    funnel = FunnelReport()
    current = list(files)
    funnel.record("extracted", len(current), len(current))

    before = len(current)
    current = LicenseFilter(allow_unlicensed=False).apply(current)
    funnel.record("license_filter", before, len(current))

    before = len(current)
    result = deduplicate([(f.file_id, f.content) for f in current])
    kept = set(result.kept_keys)
    current = [f for f in current if f.file_id in kept]
    funnel.record("dedup", before, len(current))

    before = len(current)
    current = CopyrightFilter().apply(current)
    funnel.record("copyright_filter", before, len(current))

    before = len(current)
    current = [f for f in current if check_syntax(f.content).ok]
    funnel.record("syntax_check", before, len(current))
    return current, funnel


def _timed(fn, repeats=1):
    """Best-of-N wall time with the cyclic GC paused during measurement.

    The bench session keeps large fixtures (trained models, corpora)
    alive, so generational scans triggered by allocation-heavy runs would
    add noise proportional to *other* tests' heaps; pausing the collector
    times both contenders on equal footing.
    """
    best, value = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def test_chunked_engine_speedup(benchmark, raw_files):
    # Same repeats for both contenders: each gets best-of-2, so one-time
    # warmup costs and noise spikes are discarded evenhandedly.
    serial_seconds, (serial_files, serial_funnel) = _timed(
        lambda: seed_serial_curation(raw_files), repeats=2
    )
    engine_seconds, dataset = _timed(
        lambda: CurationPipeline().run(raw_files), repeats=2
    )

    # identical curation: same kept files, same funnel accounting
    assert [f.file_id for f in serial_files] == [f.file_id for f in dataset.files]
    assert [f.content for f in serial_files] == [f.content for f in dataset.files]
    assert [
        (s.name, s.in_count, s.out_count) for s in serial_funnel.stages
    ] == [(s.name, s.in_count, s.out_count) for s in dataset.funnel.stages]

    speedup = serial_seconds / engine_seconds
    write_result(
        "engine_speedup",
        f"corpus: {len(raw_files)} files\n"
        f"seed serial path:     {serial_seconds:8.3f} s\n"
        f"engine chunked path:  {engine_seconds:8.3f} s\n"
        f"speedup:              {speedup:8.2f} x\n"
        f"(outputs byte-identical)",
        values={
            "corpus_files": len(raw_files),
            "serial_seconds": serial_seconds,
            "engine_seconds": engine_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, f"engine only {speedup:.2f}x faster than seed path"

    benchmark.pedantic(
        lambda: CurationPipeline().run(raw_files), rounds=1, iterations=1
    )


def test_incremental_ingest_speedup(benchmark, raw_files):
    # Stratified 90/10 split (every 10th file) so the increment carries
    # the corpus-wide license/duplicate mix rather than one scrape facet.
    batch = raw_files[::10]
    base = [f for i, f in enumerate(raw_files) if i % 10]
    corpus = base + batch

    curator = IncrementalCurator()
    curator.ingest(base)
    incremental_seconds, _ = _timed(lambda: curator.ingest(batch))

    full_seconds, full = _timed(lambda: CurationPipeline().run(corpus))

    # one full pass over base+batch keeps exactly the incremental result
    assert [f.content for f in curator.kept_files] == [
        f.content for f in full.files
    ]
    assert [
        (s.name, s.in_count, s.out_count) for s in curator.funnel.stages
    ] == [(s.name, s.in_count, s.out_count) for s in full.funnel.stages]

    speedup = full_seconds / incremental_seconds
    write_result(
        "engine_incremental",
        f"corpus: {len(corpus)} files, increment: {len(batch)} files (10%)\n"
        f"full recuration:      {full_seconds:8.3f} s\n"
        f"incremental ingest:   {incremental_seconds:8.3f} s\n"
        f"speedup:              {speedup:8.2f} x\n"
        f"(cumulative output identical to full recuration)",
        values={
            "corpus_files": len(corpus),
            "increment_files": len(batch),
            "full_seconds": full_seconds,
            "incremental_seconds": incremental_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 5.0, f"incremental only {speedup:.2f}x faster"

    benchmark.pedantic(
        lambda: IncrementalCurator().ingest(batch), rounds=1, iterations=1
    )
