"""A1 — ablation: de-duplication threshold sweep.

The paper fixes the VeriGen-style Jaccard threshold at 0.85.  This
ablation sweeps the threshold and reports how many files survive: lower
thresholds collapse same-family variants together (over-merging), higher
thresholds keep trivial fork copies (under-merging).
"""

from repro.dedup import deduplicate
from benchmarks.conftest import write_result

THRESHOLDS = (0.70, 0.80, 0.85, 0.90, 0.95)


def test_dedup_threshold_sweep(benchmark, freeset_result):
    # sweep over the post-license-filter population, like the pipeline
    licensed = [
        (f.file_id, f.content)
        for f in freeset_result.raw_files
        if f.license_key is not None
    ]
    kept = {}
    for threshold in THRESHOLDS:
        kept[threshold] = deduplicate(licensed, threshold=threshold).kept_count

    lines = [f"{'threshold':>10}{'kept':>8}{'removed_frac':>14}"]
    for threshold in THRESHOLDS:
        removed = 1 - kept[threshold] / len(licensed)
        lines.append(f"{threshold:>10.2f}{kept[threshold]:>8}{removed:>14.2%}")
    write_result("ablation_dedup", "\n".join(lines))

    # monotone: stricter similarity requirement keeps more files
    ordered = [kept[t] for t in THRESHOLDS]
    assert ordered == sorted(ordered)
    # the paper's 0.85 setting removes the majority of licensed files
    assert 1 - kept[0.85] / len(licensed) > 0.45

    benchmark.pedantic(
        lambda: deduplicate(licensed[:800], threshold=0.85),
        rounds=1,
        iterations=1,
    )
