"""Cluster executor performance: sharded leases vs the serial baseline.

Two claims, both written to ``benchmarks/results/cluster.json``:

* **Overlap**: on a latency-bound phase — each chunk blocks for a fixed
  service time, the shape of a remote simulator farm or accelerator
  queue — a 2-worker cluster overlaps leases and beats serial by
  >= 1.5x.  This holds on any machine, single-core CI runners included,
  because the win comes from the coordinator keeping both workers'
  lease queues full, not from extra cores.
* **Compute**: a multi-model pass@k ``EvalPlan`` run on a 2-worker
  cluster is verdict-identical to serial, candidate for candidate; its
  wall-clock speedup is recorded, and asserted >= 1.5x when the machine
  actually has >= 2 CPUs to run the workers on (a 2-process shard of
  CPU-bound work cannot beat serial on one core).
"""

from __future__ import annotations

import gc
import os
import time

from repro.engine import ClusterExecutor, MapStage
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm import LanguageModel
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalConfig, build_problem_set
from repro.vgen import generate as generate_module

from benchmarks.conftest import write_result

_SERVICE_S = 0.05  # per-chunk service time of the latency-bound phase
_LATENCY_CHUNKS = 40

_CONFIG = EvalConfig(
    n_samples=10, ks=(1, 5, 10), temperatures=(0.2, 0.8),
    max_new_tokens=600,
)


class _FarmCheckStage(MapStage):
    """A latency-bound phase: fixed service time per chunk, then 1:1."""

    name = "farm_check"
    parallel_safe = True

    def __init__(self, service_s: float) -> None:
        self.service_s = service_s

    def process(self, chunk):
        time.sleep(self.service_s)
        return [item * 2 for item in chunk]


def _timed(fn):
    gc.collect()
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _train_models():
    rng = DeterministicRNG(0x906)
    corpus = [generate_module(rng.fork(i)).source for i in range(120)]
    return [
        LanguageModel.pretrain("freev-a", corpus[:60], num_merges=200),
        LanguageModel.pretrain("freev-b", corpus[60:], num_merges=200),
    ]


def test_cluster_speedup():
    from repro.engine import SerialExecutor, iter_chunks

    # -- overlap: latency-bound chunks, any machine ---------------------
    chunks = [list(range(32)) for _ in range(_LATENCY_CHUNKS)]
    stages = [_FarmCheckStage(_SERVICE_S)]
    serial_latency_s, serial_out = _timed(lambda: [
        out for out, _ in SerialExecutor().map_chunks(stages, iter(chunks))
    ])
    with ClusterExecutor(workers=2, heartbeat_s=0.5) as executor:
        cluster_latency_s, cluster_out = _timed(lambda: [
            out for out, _ in executor.map_chunks(stages, iter(chunks))
        ])
    assert cluster_out == serial_out
    overlap_speedup = serial_latency_s / cluster_latency_s
    assert overlap_speedup >= 1.5, (
        f"latency-bound cluster speedup {overlap_speedup:.2f}x < 1.5x "
        f"(serial {serial_latency_s:.2f}s, cluster {cluster_latency_s:.2f}s)"
    )

    # -- compute: the multi-model EvalPlan ------------------------------
    models = _train_models()
    task = PassAtKTask(
        build_problem_set(n_problems=20, seed=0xE7A1), _CONFIG
    )
    plan = EvalPlan(models, [task], chunk_size=40)

    serial_plan_s, serial_run = _timed(plan.run)
    with ClusterExecutor(workers=2, heartbeat_s=0.5) as executor:
        cluster_plan_s, cluster_run = _timed(
            lambda: plan.run(executor=executor)
        )

    def verdicts(run):
        return [
            (r.model_name, r.unit_id, r.sample_index, r.passed)
            for r in run.records
        ]

    assert verdicts(cluster_run) == verdicts(serial_run)
    plan_speedup = serial_plan_s / cluster_plan_s
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        assert plan_speedup >= 1.5, (
            f"EvalPlan cluster speedup {plan_speedup:.2f}x < 1.5x on "
            f"{cpus} CPUs (serial {serial_plan_s:.2f}s, "
            f"cluster {cluster_plan_s:.2f}s)"
        )

    samples = len(serial_run.records)
    write_result(
        "cluster",
        f"latency-bound phase ({_LATENCY_CHUNKS} chunks x "
        f"{int(_SERVICE_S * 1000)} ms service):\n"
        f"  serial:            {serial_latency_s:8.3f} s\n"
        f"  2-worker cluster:  {cluster_latency_s:8.3f} s\n"
        f"  speedup:           {overlap_speedup:8.2f} x (>= 1.5x asserted)\n"
        f"multi-model EvalPlan ({len(models)} models, {samples} "
        "candidates, verdict-identical):\n"
        f"  serial:            {serial_plan_s:8.3f} s\n"
        f"  2-worker cluster:  {cluster_plan_s:8.3f} s\n"
        f"  speedup:           {plan_speedup:8.2f} x "
        f"(asserted >= 1.5x when cpus >= 2; this machine: {cpus})",
        values={
            "latency_serial_s": round(serial_latency_s, 4),
            "latency_cluster_s": round(cluster_latency_s, 4),
            "latency_speedup": round(overlap_speedup, 3),
            "plan_serial_s": round(serial_plan_s, 4),
            "plan_cluster_s": round(cluster_plan_s, 4),
            "plan_speedup": round(plan_speedup, 3),
            "plan_candidates": samples,
            "workers": 2,
            "cpus": cpus,
            "verdict_identical": True,
        },
    )
