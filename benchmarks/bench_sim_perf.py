"""Simulation performance: compiled backend vs the interpreter reference.

Claims, measured at bench scale:

* the compiled backend (levelized, slot-indexed, closure-compiled;
  :mod:`repro.sim.compile`) simulates the fifo microbench at >=5x the
  interpreter's cycles/sec, *including* its one-time compile cost;
* compilation amortizes within the first handful of cycles (compile time
  is a small multiple of one interpreter cycle);
* the end-to-end pass@k evaluation protocol — generation plus functional
  checking — speeds up >=2x from the simulator backend swap alone, with
  identical results, once candidate simulation carries production-depth
  stimulus (384 cycles/problem; at the paper's 24-cycle smoke depth the
  n-gram sampler is the floor and the ratio shrinks toward 1).

Both comparisons run the *current* harness code on both backends, so the
deltas isolate the execution backend (unlike ``bench_eval_perf.py``,
whose baseline freezes the seed-era evaluation loop).
"""

import gc
import time

import pytest

from repro.evalkit import EvalPlan, PassAtKTask
from repro.sim import Testbench, compile_design, elaborate, set_default_backend
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalConfig, build_problem_set
from repro.vgen import generate_family
from repro.verilog import parse_source

from benchmarks.conftest import write_result

_FIFO_CYCLES = 300

_EVAL_STIMULUS_CYCLES = 384
_EVAL_CONFIG = EvalConfig(
    n_samples=4, ks=(1, 4), temperatures=(0.2, 0.8), max_new_tokens=400
)


@pytest.fixture(scope="module")
def fifo_module():
    return generate_family("fifo", DeterministicRNG(0x9EEF))


def _timed(fn, repeats=2):
    """Best-of-N wall time with the cyclic GC paused during measurement."""
    best, value = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


def _run_fifo(source, name, backend, cycles=_FIFO_CYCLES):
    """Elaborate-and-simulate, the per-candidate shape of the eval funnel."""
    design = elaborate(parse_source(source), name)
    bench = Testbench(design, clock="clk", reset="rst", backend=backend)
    bench.apply_reset()
    step = bench.step
    for i in range(cycles):
        step({"push": i % 2, "pop": i % 3 == 0, "din": i & 0xFF})
    return bench.sample()


def test_compiled_backend_speedup(benchmark, fifo_module):
    source, name = fifo_module.source, fifo_module.name

    interp_seconds, interp_out = _timed(
        lambda: _run_fifo(source, name, "interp"), repeats=2
    )
    compiled_seconds, compiled_out = _timed(
        lambda: _run_fifo(source, name, "compiled"), repeats=3
    )
    assert compiled_out == interp_out  # cycle-identical end state

    # Compile-time amortization: one compile costs a few interpreter
    # cycles, and it is cached on the Design for every later Simulator.
    # Elaboration happens outside the timer (both backends pay it); each
    # repeat compiles a fresh Design so the cache cannot short-circuit.
    fresh_designs = [
        elaborate(parse_source(source), name) for _ in range(3)
    ]
    compile_seconds, compiled_design = _timed(
        lambda: compile_design(fresh_designs.pop()), repeats=3
    )
    assert compiled_design.levelized
    interp_cycle = interp_seconds / _FIFO_CYCLES
    amortize_cycles = compile_seconds / max(
        interp_cycle - compiled_seconds / _FIFO_CYCLES, 1e-9
    )

    speedup = interp_seconds / compiled_seconds
    interp_cps = _FIFO_CYCLES / interp_seconds
    compiled_cps = _FIFO_CYCLES / compiled_seconds
    write_result(
        "sim_speedup",
        f"fifo microbench, {_FIFO_CYCLES} cycles (elaborate + simulate)\n"
        f"interpreter backend:  {interp_seconds:8.3f} s"
        f"  ({interp_cps:10.0f} cycles/s)\n"
        f"compiled backend:     {compiled_seconds:8.3f} s"
        f"  ({compiled_cps:10.0f} cycles/s, compile included)\n"
        f"speedup:              {speedup:8.2f} x\n"
        f"compile_design time:  {compile_seconds * 1e3:8.2f} ms"
        f"  (amortized after ~{amortize_cycles:.0f} interpreter cycles)\n"
        f"(final simulator state identical across backends)",
        values={
            "cycles": _FIFO_CYCLES,
            "interp_seconds": interp_seconds,
            "compiled_seconds": compiled_seconds,
            "compile_seconds": compile_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 5.0, (
        f"compiled backend only {speedup:.2f}x faster than interpreter"
    )
    benchmark.pedantic(
        lambda: _run_fifo(source, name, "compiled"), rounds=1, iterations=1
    )


def test_end_to_end_eval_speedup(trainer):
    # The trained model's completions mostly elaborate, so the functional
    # check — candidate simulation under deep stimulus — carries the run.
    model = trainer.train()
    problems = build_problem_set(
        n_problems=20, seed=0xE7A1, stimulus_cycles=_EVAL_STIMULUS_CYCLES
    )

    def eval_once():
        # Cold start each run: the golden parse/elab/trace cache is
        # rebuilt so both backends pay the same per-problem setup.
        import repro.vereval.harness as harness

        harness._GOLDEN_CACHE.clear()
        plan = EvalPlan([model], [PassAtKTask(problems, _EVAL_CONFIG)])
        return plan.run().result(model.name, "passk")

    def eval_with(backend):
        previous = set_default_backend(backend)
        try:
            return _timed(eval_once, repeats=2)
        finally:
            set_default_backend(previous)

    interp_seconds, interp_result = eval_with("interp")
    compiled_seconds, compiled_result = eval_with("auto")
    assert compiled_result == interp_result  # identical pass@k + outcomes

    samples = (
        len(problems) * len(_EVAL_CONFIG.temperatures) * _EVAL_CONFIG.n_samples
    )
    speedup = interp_seconds / compiled_seconds
    write_result(
        "sim_eval_speedup",
        f"pass@k protocol, {len(problems)} problems x "
        f"{len(_EVAL_CONFIG.temperatures)} temperatures x "
        f"{_EVAL_CONFIG.n_samples} samples = {samples} samples, "
        f"{_EVAL_STIMULUS_CYCLES} stimulus cycles/problem\n"
        f"interpreter backend:  {interp_seconds:8.3f} s\n"
        f"compiled backend:     {compiled_seconds:8.3f} s\n"
        f"end-to-end speedup:   {speedup:8.2f} x\n"
        f"(pass@k, outcomes, and failure reasons identical)",
        values={
            "samples": samples,
            "interp_seconds": interp_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"end-to-end eval only {speedup:.2f}x faster on the compiled backend"
    )
