"""E6 — the abstract's headline numbers, jointly.

Paper: FreeV improves VerilogEval pass@1/5/10 by +0.7/+7.9/+10.1 points
over its base, while showing a 3% violation rate (base: 2%) — the lowest
among fine-tuned models.  The reproduction asserts the joint shape: real
functional gains concentrated at higher k AND a violation rate that stays
within a few points of the base.
"""

from repro.vereval import EvalConfig
from benchmarks.conftest import write_result


def test_headline(benchmark, trainer):
    def run():
        return trainer.headline(
            n_problems=20,
            eval_config=EvalConfig(
                n_samples=10,
                ks=(1, 5, 10),
                temperatures=(0.2, 0.8),
                max_new_tokens=600,
            ),
            num_prompts=100,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("headline", report.summary())

    delta = report.passk_delta()
    # functional gains, concentrated at higher k
    assert delta[10] > 0
    assert delta[10] >= delta[1] - 0.02
    # violation rate stays near the base (paper: +1 point)
    assert (
        report.freev_violation_rate <= report.base_violation_rate + 0.05
    )
    assert report.freev_violation_rate <= 0.10
