"""Shared bench-scale fixtures.

The bench world is ~1/100 of the paper's corpus scale, calibrated so the
funnel *ratios* land near the paper's (Sec. IV-A): roughly half the files
survive the license filter, de-duplication removes ~62.5% of what's left,
and ~1% of the original corpus is copyright-protected.

Each bench writes its regenerated table/figure series into
``benchmarks/results/`` so the artifacts survive pytest's output capture.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional

import pytest

from repro.core.comparison import ModelZoo
from repro.core.freeset import FreeSetBuilder
from repro.core.freev import FreeVTrainer
from repro.copyright import CopyrightBenchmark, collect_copyrighted_corpus
from repro.github import WorldConfig
from repro.vereval import build_problem_set

BENCH_WORLD_CONFIG = WorldConfig(
    n_repos=400,
    seed=0xDAC25,
    licensed_repo_fraction=0.46,
    duplicate_rate=0.55,
    proprietary_rate=0.012,
    # ~1/100 of the paper's 90M-character outlier file
    mega_file_modules=1100,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(
    name: str, text: str, values: Optional[Dict[str, Any]] = None
) -> None:
    """Persist a regenerated table/figure and echo it for -s runs.

    ``values`` optionally adds a machine-readable sibling,
    ``results/<name>.json`` — the numbers CI and trend tooling consume
    without scraping the text table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if values is not None:
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(
            json.dumps({"bench": name, **values}, indent=2, sort_keys=True)
            + "\n"
        )
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def freeset_result():
    return FreeSetBuilder(world_config=BENCH_WORLD_CONFIG).build()


@pytest.fixture(scope="session")
def raw_files(freeset_result):
    return freeset_result.raw_files


@pytest.fixture(scope="session")
def copyrighted_corpus(raw_files):
    return collect_copyrighted_corpus(raw_files)


@pytest.fixture(scope="session")
def model_zoo(raw_files, copyrighted_corpus):
    return ModelZoo(
        raw_files,
        list(copyrighted_corpus.entries.values()),
        max_train_tokens=600_000,
    )


@pytest.fixture(scope="session")
def trainer(freeset_result):
    return FreeVTrainer(freeset=freeset_result)


@pytest.fixture(scope="session")
def problems():
    return build_problem_set(n_problems=20, seed=0xE7A1)


@pytest.fixture(scope="session")
def violation_benchmark(copyrighted_corpus):
    return CopyrightBenchmark(copyrighted_corpus, num_prompts=100)
