"""E1 — Table I: comparison of FreeSet with prior curated datasets.

Regenerates the table's columns for every dataset policy run over the
same synthetic world scrape.  The paper's qualitative claims that must
hold at any scale: FreeSet is the largest open-source dataset, and it is
the only one with BOTH a license check and a file-level copyright check.
"""

from repro.core.comparison import DATASET_POLICIES, simulate_prior_dataset
from benchmarks.conftest import write_result

_COLUMNS = (
    f"{'dataset':<12}{'size(MB)':>10}{'rows':>8}{'structure':>24}"
    f"{'augmented':>11}{'open':>6}{'lic':>5}{'copy':>6}"
)


def _row(dataset):
    return (
        f"{dataset.name:<12}{dataset.size_bytes / 1e6:>10.2f}"
        f"{dataset.rows:>8}{dataset.structure:>24}"
        f"{'Yes' if dataset.augmented else 'No':>11}"
        f"{'Yes' if dataset.open_source else 'No':>6}"
        f"{'Yes' if dataset.license_check else 'No':>5}"
        f"{'Yes' if dataset.copyright_check else 'No':>6}"
    )


def test_table1(benchmark, raw_files, freeset_result):
    datasets = {}
    for name, policy in DATASET_POLICIES.items():
        if name == "FreeSet":
            datasets[name] = freeset_result.dataset
        else:
            datasets[name] = simulate_prior_dataset(policy, raw_files)

    lines = [_COLUMNS]
    lines.extend(_row(d) for d in datasets.values())
    write_result("table1_datasets", "\n".join(lines))

    freeset = datasets["FreeSet"]
    open_source = [d for d in datasets.values() if d.open_source]
    # FreeSet is the largest open-source dataset by size; by rows it is
    # competitive with OriGen (paper: 222,624 vs 222,075 — a near-tie) ...
    assert freeset.size_bytes == max(d.size_bytes for d in open_source)
    assert freeset.rows >= 0.6 * max(d.rows for d in open_source)
    # ... and uniquely performs both checks (Table I's last two columns).
    both_checks = [
        d.name
        for d in datasets.values()
        if d.license_check and d.copyright_check
    ]
    assert both_checks == ["FreeSet"]

    # timed unit: simulating one prior policy end to end
    benchmark.pedantic(
        lambda: simulate_prior_dataset(DATASET_POLICIES["RTLCoder"], raw_files),
        rounds=1,
        iterations=1,
    )
