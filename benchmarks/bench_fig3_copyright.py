"""E4 — Figure 3: hardware copyright infringement rates across LLMs.

The paper evaluates each fine-tuned model and its base model on the
100-prompt benchmark.  Shape to reproduce:

* fine-tuned models trained on unfiltered scrapes (VeriGen, CodeV)
  violate clearly more than their bases;
* FreeV has the smallest violation rate among fine-tuned models and sits
  within ~a couple points of its Llama base (paper: 2% -> 3%).
"""

from benchmarks.conftest import write_result

#: (fine-tuned, base) pairs evaluated in the paper's Fig. 3.
FIG3_PAIRS = [
    ("VeriGen", "CodeGen-6B-multi"),
    ("RTLCoder-DS", "DeepSeek-Coder-6.7B"),
    ("CodeV-DS-6.7B", "DeepSeek-Coder-6.7B"),
    ("OriGen-DS", "DeepSeek-Coder-6.7B"),
    ("FreeV-Llama3.1", "Llama-3.1-8B-Instruct"),
]


def test_fig3(benchmark, model_zoo, violation_benchmark):
    rates = {}

    def rate_of(name):
        if name not in rates:
            report = violation_benchmark.evaluate(
                model_zoo.model(name), temperature=0.2
            )
            rates[name] = report.violation_rate
        return rates[name]

    lines = [f"{'model':<24}{'base':<24}{'ft_rate':>9}{'base_rate':>11}"]
    for tuned, base in FIG3_PAIRS:
        lines.append(
            f"{tuned:<24}{base:<24}{rate_of(tuned):>9.2%}{rate_of(base):>11.2%}"
        )
    write_result("fig3_copyright", "\n".join(lines))

    # Unfiltered-scrape models violate more than their bases.
    assert rate_of("VeriGen") > rate_of("CodeGen-6B-multi")
    assert rate_of("CodeV-DS-6.7B") > rate_of("DeepSeek-Coder-6.7B")
    # FreeV is the least-violating fine-tuned model ...
    finetuned = [t for t, _ in FIG3_PAIRS]
    assert rate_of("FreeV-Llama3.1") == min(rate_of(t) for t in finetuned)
    # ... and stays within a few points of its base.
    assert (
        rate_of("FreeV-Llama3.1")
        <= rate_of("Llama-3.1-8B-Instruct") + 0.05
    )
    # FreeV's rate is small in absolute terms (paper: 3%).
    assert rate_of("FreeV-Llama3.1") <= 0.10

    # free the fine-tuned models (bases stay cached for other benches)
    for tuned, _ in FIG3_PAIRS:
        model_zoo.evict(tuned)

    benchmark.pedantic(
        lambda: violation_benchmark.evaluate(
            model_zoo.model("Llama-3.1-8B-Instruct"), temperature=0.2
        ),
        rounds=1,
        iterations=1,
    )
