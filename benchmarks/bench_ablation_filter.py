"""A2 — ablation: FreeV trained with vs without the copyright filter.

The paper's central causal claim: removing copyright-protected files from
the fine-tuning corpus is what keeps FreeV's violation rate at its base's
level.  The ablation trains the *same* base on FreeSet curated with and
without the file-level copyright filter and compares violation rates.
"""

from repro.curation import CurationConfig, CurationPipeline
from benchmarks.conftest import write_result


def test_copyright_filter_ablation(
    benchmark, trainer, freeset_result, violation_benchmark
):
    base = trainer.base_model()
    freev = trainer.train()  # with filter (the real FreeSet)

    unfiltered_config = CurationConfig(copyright_check=False)
    unfiltered = CurationPipeline(unfiltered_config).run(
        freeset_result.raw_files, name="FreeSet-no-copyright-filter"
    )
    freev_dirty = base.continual_pretrain(
        "FreeV-no-filter", unfiltered.texts(), weight=2.0,
        max_train_tokens=600_000,
    )

    rate_base = violation_benchmark.evaluate(base).violation_rate
    rate_clean = violation_benchmark.evaluate(freev).violation_rate
    rate_dirty = violation_benchmark.evaluate(freev_dirty).violation_rate

    write_result(
        "ablation_filter",
        "\n".join(
            [
                f"base (Llama-sim):          {rate_base:.2%}",
                f"FreeV (filter ON):         {rate_clean:.2%}",
                f"FreeV (filter OFF):        {rate_dirty:.2%}",
                f"filter effect:             {rate_dirty - rate_clean:+.2%}",
            ]
        ),
    )

    # the filter is what keeps violations down
    assert rate_dirty > rate_clean
    assert rate_dirty - rate_clean >= 0.05

    benchmark.pedantic(
        lambda: violation_benchmark.evaluate(freev), rounds=1, iterations=1
    )
