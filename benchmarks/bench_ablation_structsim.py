"""A4 — extension: structural vs textual similarity (the GNN4IP item).

Sec. V proposes structure-aware similarity (GNN4IP) as future work for
the copyright benchmark.  This bench quantifies why: a *rename attack*
(consistently re-prefixing every identifier in a copied design) drives
textual cosine similarity below the 0.8 violation threshold while the
Weisfeiler-Lehman structural similarity of the name-free dataflow graphs
remains 1.0.
"""

from repro.github.world import _brand_identifiers
from repro.structsim import StructuralIndex
from repro.textsim import SimilarityIndex
from repro.verilog import check_syntax
from benchmarks.conftest import write_result


def test_rename_attack_detection(benchmark, copyrighted_corpus):
    # Use the syntactically valid copyrighted files as the protected IP.
    entries = [
        (key, text)
        for key, text in copyrighted_corpus.entries.items()
        if check_syntax(text).ok
    ][:30]
    assert len(entries) >= 10

    textual = SimilarityIndex()
    structural = StructuralIndex()
    for key, text in entries:
        textual.add(key, text)
        structural.add(key, text)

    text_scores = []
    struct_scores = []
    for key, text in entries:
        laundered = _brand_identifiers(text, "laundered_")
        text_match = textual.best_match(laundered)
        struct_match = structural.best_match(laundered)
        text_scores.append(text_match.score if text_match else 0.0)
        struct_scores.append(struct_match.score if struct_match else 0.0)
        # the structural detector must attribute the laundered copy to a
        # protected design with near-certain similarity
        assert struct_match is not None and struct_match.score > 0.99

    text_caught = sum(s >= 0.8 for s in text_scores)
    struct_caught = sum(s >= 0.8 for s in struct_scores)
    lines = [
        f"protected designs:            {len(entries)}",
        f"textual detector catches:     {text_caught}/{len(entries)} "
        f"(mean sim {sum(text_scores) / len(text_scores):.2f})",
        f"structural detector catches:  {struct_caught}/{len(entries)} "
        f"(mean sim {sum(struct_scores) / len(struct_scores):.2f})",
    ]
    write_result("ablation_structsim", "\n".join(lines))

    # the attack meaningfully degrades the textual detector ...
    assert text_caught < len(entries)
    # ... while the structural detector catches everything
    assert struct_caught == len(entries)

    benchmark.pedantic(
        lambda: structural.best_match(
            _brand_identifiers(entries[0][1], "x_")
        ),
        rounds=3,
        iterations=1,
    )
