"""Lane-parallel simulation + persistent compile cache performance.

Claims, measured at bench scale:

* a 64-lane multi-seed stimulus sweep through the batch backend
  (:mod:`repro.sim.batch` via :func:`repro.sim.sweep_random_stimulus`)
  runs >=3x faster than 64 scalar compiled-backend episodes, with
  lane-for-lane identical outcomes;
* combinational all-vectors checking — every stimulus vector of a
  problem riding its own lane in one settle sweep
  (``_check_all_vectors_batch``) — beats the scalar per-cycle check loop
  by >=2x with identical verdicts;
* **lockstep sequential pass@k checking** — N candidate completions of
  one clocked problem simulating one lane each under the shared golden
  stimulus (:func:`repro.vereval.check_candidates_lockstep`), with
  structural grouping, AST-level compile sharing, mismatch retirement,
  and dirty-level skipping — beats checking the same candidates one at
  a time on the scalar path by >=2x end to end (parse + elaborate +
  compile + simulate + verdict), candidate-for-candidate identical;
* a pool-worker-shaped evaluation run (fresh in-process caches, golden
  elaboration + trace + duplicate candidate checks) with a warm
  :mod:`repro.sim.cache` directory runs >=1.5x faster than the same run
  against a cold cache, with identical verdicts;
* **per-lever lane-representation claims** (collected into
  ``results/bitslice.json``): on a 1-bit-heavy family the bit-sliced
  plane backend beats the scalar all-vectors loop by >=2x and lockstep
  checking beats the scalar candidate loop by >=1.5x; on a wide
  (>63-bit) datapath the multi-word spill lanes beat the historical
  ``UnbatchableDesign`` scalar fallback sweep by >=3x — all
  lane-for-lane / verdict-for-verdict identical.

``bench_sim_perf.py`` and ``bench_eval_perf.py`` guard the scalar paths;
this file only adds claims, it does not relax theirs.
"""

import gc
import time

import pytest

from repro.sim import elaborate, random_stimulus, sweep_random_stimulus
from repro.sim import cache as sim_cache
from repro.sim.batch import (
    batch_design,
    configure_lane_representation,
    is_stateless_comb,
    lane_representation,
)
from repro.utils.rng import DeterministicRNG
from repro.vereval import build_problem_set, check_candidates_lockstep
from repro.vereval.problems import EvalProblem
from repro.vgen import generate_family
from repro.vgen.base import GeneratedModule, ModuleInterface
from repro.verilog import parse_source

import repro.vereval.harness as harness

from benchmarks.conftest import write_result

_SWEEP_LANES = 64
_SWEEP_CYCLES = 96
_COMB_CYCLES = 384
_POOL_PROBLEMS = 12
_POOL_DUPLICATES = 3
_LOCKSTEP_CANDIDATES = 48
_LOCKSTEP_CYCLES = 384  # the production stimulus depth bench_sim_perf uses


def _timed(fn, repeats=2):
    """Best-of-N wall time with the cyclic GC paused during measurement."""
    best, value = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


@pytest.fixture(scope="module")
def fifo_design():
    module = generate_family("fifo", DeterministicRNG(0x9EEF))
    design = elaborate(parse_source(module.source), module.name)
    return design, module.interface


def test_multi_seed_sweep_speedup(benchmark, fifo_design):
    design, interface = fifo_design
    seeds = range(_SWEEP_LANES)
    kwargs = dict(
        clock=interface.clock,
        reset=interface.reset,
        reset_active_high=interface.reset_active_high,
    )
    # Stimulus generation is identical work on both paths; pre-generating
    # it isolates the comparison to sweep (simulation) throughput.
    stimuli = [
        random_stimulus(design, _SWEEP_CYCLES, seed) for seed in seeds
    ]

    def run_batch():
        return sweep_random_stimulus(
            design, _SWEEP_CYCLES, seeds, stimuli=stimuli, **kwargs
        )

    def run_scalar():
        return sweep_random_stimulus(
            design, _SWEEP_CYCLES, seeds, backend="compiled",
            stimuli=stimuli, **kwargs
        )

    # Warm both compile caches outside the timers: the comparison is
    # steady-state sweep throughput, the shape of repeated validation
    # sweeps and the ablation benches.
    batch_result = run_batch()
    scalar_result = run_scalar()
    assert batch_result.vectorized
    assert batch_result.traces == scalar_result.traces  # lane-for-lane
    assert batch_result.errors == scalar_result.errors

    batch_seconds, _ = _timed(run_batch, repeats=5)
    scalar_seconds, _ = _timed(run_scalar, repeats=3)
    speedup = scalar_seconds / batch_seconds
    lane_cycles = _SWEEP_LANES * _SWEEP_CYCLES
    write_result(
        "batch_sweep_speedup",
        f"fifo multi-seed sweep, {_SWEEP_LANES} lanes x {_SWEEP_CYCLES} "
        f"cycles = {lane_cycles} lane-cycles\n"
        f"scalar compiled (64 episodes): {scalar_seconds:8.3f} s"
        f"  ({lane_cycles / scalar_seconds:10.0f} lane-cycles/s)\n"
        f"batch backend (one sweep):     {batch_seconds:8.3f} s"
        f"  ({lane_cycles / batch_seconds:10.0f} lane-cycles/s)\n"
        f"speedup:                       {speedup:8.2f} x\n"
        f"(per-lane traces and error classification identical)",
        values={
            "lanes": _SWEEP_LANES,
            "cycles": _SWEEP_CYCLES,
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"batch sweep only {speedup:.2f}x faster than scalar episodes"
    )
    benchmark.pedantic(run_batch, rounds=1, iterations=1)


def test_combinational_all_vectors_speedup():
    problems = build_problem_set(
        n_problems=12, stimulus_cycles=_COMB_CYCLES
    )
    comb = [
        p for p in problems
        if p.module.interface.clock is None
        and is_stateless_comb(
            batch_design(
                elaborate(parse_source(p.golden_source), p.module.name),
                p.stimulus_cycles,
            )
        )
    ]
    assert comb, "no stateless combinational problems in the set"
    candidates = [
        elaborate(parse_source(p.golden_source), p.module.name) for p in comb
    ]
    refs = [harness._GoldenRef(p) for p in comb]

    def check_all(enabled):
        previous = harness.BATCH_CHECK_ENABLED
        harness.BATCH_CHECK_ENABLED = enabled
        try:
            return [
                harness._check_against_trace(ref, candidate, problem)
                for ref, candidate, problem in zip(refs, candidates, comb)
            ]
        finally:
            harness.BATCH_CHECK_ENABLED = previous

    fast_verdicts = check_all(True)  # warm lane lowering
    slow_verdicts = check_all(False)
    assert fast_verdicts == slow_verdicts  # verdict-identical
    assert all(v.equivalent for v in fast_verdicts)

    fast_seconds, _ = _timed(lambda: check_all(True), repeats=3)
    slow_seconds, _ = _timed(lambda: check_all(False), repeats=2)
    speedup = slow_seconds / fast_seconds
    checks = len(comb) * _COMB_CYCLES
    write_result(
        "batch_comb_check_speedup",
        f"combinational all-vectors checking, {len(comb)} problems x "
        f"{_COMB_CYCLES} stimulus vectors = {checks} vector checks\n"
        f"scalar per-cycle loop:     {slow_seconds:8.3f} s"
        f"  ({checks / slow_seconds:10.0f} vectors/s)\n"
        f"lane-parallel one settle:  {fast_seconds:8.3f} s"
        f"  ({checks / fast_seconds:10.0f} vectors/s)\n"
        f"speedup:                   {speedup:8.2f} x\n"
        f"(verdicts identical, including first-mismatch bookkeeping)",
        values={
            "vector_checks": checks,
            "scalar_seconds": slow_seconds,
            "batch_seconds": fast_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"all-vectors checking only {speedup:.2f}x faster than the loop"
    )


_LOCKSTEP_DUT = """module lockstep_dut(
  input clk, input rst, input [7:0] a, input [7:0] b,
  output reg [15:0] acc, output [7:0] mix);
  reg [7:0] stage;
  reg [7:0] window [0:7];
  reg [2:0] wptr;
  wire [8:0] sum;
  integer i;
  assign sum = {OP_SUM};
  assign mix = stage ^ ({OP_MIX}) ^ window[wptr];
  always @(posedge clk) begin
    if (rst) begin
      acc <= 16'd0; stage <= 8'd0; wptr <= 3'd0;
      for (i = 0; i < 8; i = i + 1) window[i] <= 8'd0;
    end else begin
      stage <= {OP_STAGE};
      window[wptr] <= {OP_WIN};
      wptr <= wptr + 3'd1;
      acc <= acc + {7'b0, sum};
    end
  end
endmodule
"""


def _lockstep_variant(op_sum="a + b", op_mix="a & b", op_stage="a ^ b",
                      op_win="a | b"):
    return (
        _LOCKSTEP_DUT.replace("{OP_SUM}", op_sum)
        .replace("{OP_MIX}", op_mix)
        .replace("{OP_STAGE}", op_stage)
        .replace("{OP_WIN}", op_win)
    )


def _lockstep_problem():
    module = GeneratedModule(
        family="bench",
        source=_lockstep_variant(),
        interface=ModuleInterface(
            module_name="lockstep_dut", clock="clk", reset="rst",
            reset_active_high=True,
            inputs=[("a", 8), ("b", 8)],
            outputs=[("acc", 16), ("mix", 8)],
        ),
        description="sequential lockstep pass@k benchmark DUT",
    )
    return EvalProblem(
        problem_id="lockstep_bench", module=module,
        stimulus_cycles=_LOCKSTEP_CYCLES, stimulus_seed=11,
    )


def _lockstep_candidates(count):
    """A low-temperature-shaped candidate pool for one problem.

    Three passing structural variants (commuted operands — distinct
    ASTs, same schedule shape) plus the golden, two failing mutations,
    and comment-only resamples of all of them: many texts, few
    structures, a 3:1 pass:fail ratio — the regime sequential pass@k
    checking actually sees.
    """
    passing = [
        _lockstep_variant(),
        _lockstep_variant("b + a"),
        _lockstep_variant(op_mix="b & a"),
        _lockstep_variant(op_stage="b ^ a"),
    ]
    failing = [
        _lockstep_variant(op_sum="a - b"),
        _lockstep_variant(op_win="a ^ b"),
    ]
    sources = []
    for index in range(count):
        if index % 4 == 3:
            base = failing[index % 2]
        else:
            base = passing[index % 4]
        if index >= 6:
            base = base + f"\n// resample {index}\n"
        sources.append(base)
    return sources


def test_sequential_lockstep_passk_speedup():
    problem = _lockstep_problem()
    sources = _lockstep_candidates(_LOCKSTEP_CANDIDATES)
    harness._golden_ref(problem)  # golden artifacts shared by both paths

    def check_all(enabled):
        previous = harness.LOCKSTEP_CHECK_ENABLED
        harness.LOCKSTEP_CHECK_ENABLED = enabled
        try:
            # End to end per candidate: parse + elaborate + compile +
            # simulate + verdict (no disk cache, fresh designs per run).
            return check_candidates_lockstep(problem, sources)
        finally:
            harness.LOCKSTEP_CHECK_ENABLED = previous

    lockstep_verdicts = check_all(True)
    scalar_verdicts = check_all(False)
    assert lockstep_verdicts == scalar_verdicts  # candidate-for-candidate
    assert lockstep_verdicts == [
        harness.check_candidate_source(problem, source) for source in sources
    ]
    passes = sum(1 for passed, _ in lockstep_verdicts if passed)
    assert 0 < passes < len(sources)

    lockstep_seconds, _ = _timed(lambda: check_all(True), repeats=3)
    scalar_seconds, _ = _timed(lambda: check_all(False), repeats=3)
    speedup = scalar_seconds / lockstep_seconds
    checks = _LOCKSTEP_CANDIDATES * _LOCKSTEP_CYCLES
    write_result(
        "batch_lockstep_passk_speedup",
        f"sequential pass@k checking, {_LOCKSTEP_CANDIDATES} candidates x "
        f"{_LOCKSTEP_CYCLES} stimulus cycles = {checks} candidate-cycles "
        f"({passes} pass)\n"
        f"scalar per-candidate loop:  {scalar_seconds:8.3f} s"
        f"  ({checks / scalar_seconds:10.0f} candidate-cycles/s)\n"
        f"lockstep lanes:             {lockstep_seconds:8.3f} s"
        f"  ({checks / lockstep_seconds:10.0f} candidate-cycles/s)\n"
        f"speedup:                    {speedup:8.2f} x\n"
        f"(verdicts candidate-for-candidate identical, end to end: parse + "
        f"elaborate + compile + simulate + verdict)",
        values={
            "candidates": _LOCKSTEP_CANDIDATES,
            "cycles": _LOCKSTEP_CYCLES,
            "scalar_seconds": scalar_seconds,
            "lockstep_seconds": lockstep_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"lockstep checking only {speedup:.2f}x faster than the scalar loop"
    )


def _mutate(source: str, index: int) -> str:
    """A cheap, usually-still-parseable candidate variant per index."""
    replacements = [("+", "-"), ("&", "|"), ("<", ">="), ("^", "&")]
    for old, new in replacements[index % len(replacements):]:
        if old in source:
            return source.replace(old, new, 1)
    return source


def _pool_worker_run(problems) -> list:
    """One pool worker's life: cold in-process caches, golden + checks.

    Every worker pays golden parse/elaborate/stimulate/simulate per
    problem plus elaboration of each distinct candidate; duplicate
    completions repeat verbatim (the low-temperature regime).  The
    :mod:`repro.sim.cache` disk tier is the only state shared across
    runs.
    """
    harness._GOLDEN_CACHE.clear()
    verdicts = []
    for problem in problems:
        sources = [problem.golden_source, _mutate(problem.golden_source, 1)]
        for _ in range(_POOL_DUPLICATES):
            for source in sources:
                verdicts.append(
                    harness.check_candidate_source(problem, source)
                )
    return verdicts


def test_compile_cache_warm_vs_cold(tmp_path):
    problems = build_problem_set(n_problems=_POOL_PROBLEMS)
    baseline = _pool_worker_run(problems)  # no disk cache configured

    cache_root = tmp_path / "sim-cache"
    previous = sim_cache.configure(str(cache_root))
    try:
        cold_seconds, cold_verdicts = _timed(
            lambda: _pool_worker_run(problems), repeats=1
        )
        warm_seconds, warm_verdicts = _timed(
            lambda: _pool_worker_run(problems), repeats=2
        )
    finally:
        sim_cache.configure(previous)
        harness._GOLDEN_CACHE.clear()
    assert cold_verdicts == warm_verdicts == baseline  # cache is invisible
    speedup = cold_seconds / warm_seconds
    checks = len(cold_verdicts)
    write_result(
        "batch_cache_speedup",
        f"pool-worker-shaped run: {_POOL_PROBLEMS} problems, "
        f"{checks} candidate checks (duplicates included), "
        "fresh in-process caches per run\n"
        f"cold disk cache (writes):  {cold_seconds:8.3f} s\n"
        f"warm disk cache (hits):    {warm_seconds:8.3f} s\n"
        f"speedup:                   {speedup:8.2f} x\n"
        f"(verdicts identical with the cache disabled, cold, and warm)",
        values={
            "candidate_checks": checks,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 1.5, (
        f"warm compile cache only {speedup:.2f}x faster than cold"
    )


# ---------------------------------------------------------------------------
# Per-lever lane-representation claims -> results/bitslice.json
#
# One lever per test, accumulated into a single combined artifact so the
# trend tooling reads every bitslice/spill number from one file.  Each
# test writes its slice *before* asserting its threshold, so the
# artifact survives a noisy-runner miss on a later lever.
# ---------------------------------------------------------------------------

_BITSLICE_TEXT = {}
_BITSLICE_VALUES = {}


def _record_bitslice(lever, text, **values):
    _BITSLICE_TEXT[lever] = text
    _BITSLICE_VALUES.update(
        {f"{lever}_{key}": value for key, value in values.items()}
    )
    combined = "\n\n".join(
        _BITSLICE_TEXT[key]
        for key in ("comb", "lockstep", "wide")
        if key in _BITSLICE_TEXT
    )
    write_result("bitslice", combined, values=dict(_BITSLICE_VALUES))


_BITHEAVY_COMB = """module bitheavy(
  input a, input b, input c, input d,
  input e, input f, input g, input h,
  output p, output q, output r, output s);
  wire t0, t1, t2, t3;
  assign t0 = a ^ b;
  assign t1 = c & d;
  assign t2 = e | f;
  assign t3 = g ^ h;
  assign p = t0 ^ t1 ^ t2 ^ t3;
  assign q = (a & b) | (c & d) | (e & f);
  assign r = (t0 | t3) ^ (b & g);
  assign s = (t1 ^ t2) & (a | h);
endmodule
"""


def _bitheavy_comb_problem():
    module = GeneratedModule(
        family="bench",
        source=_BITHEAVY_COMB,
        interface=ModuleInterface(
            module_name="bitheavy", clock=None, reset=None,
            reset_active_high=True,
            inputs=[(name, 1) for name in "abcdefgh"],
            outputs=[(name, 1) for name in "pqrs"],
        ),
        description="1-bit-heavy combinational bitslice benchmark DUT",
    )
    return EvalProblem(
        problem_id="bitslice_comb_bench", module=module,
        stimulus_cycles=_COMB_CYCLES, stimulus_seed=7,
    )


def test_bitslice_comb_all_vectors_speedup():
    problem = _bitheavy_comb_problem()
    design = elaborate(parse_source(problem.golden_source), "bitheavy")
    # The lever under test: the census must class this family bitslice.
    assert lane_representation(design) == "bitslice"
    assert is_stateless_comb(batch_design(design, problem.stimulus_cycles))
    ref = harness._GoldenRef(problem)
    candidate = elaborate(parse_source(problem.golden_source), "bitheavy")

    def check(enabled):
        previous = harness.BATCH_CHECK_ENABLED
        harness.BATCH_CHECK_ENABLED = enabled
        try:
            # A single check is sub-millisecond on the plane backend;
            # batch a handful per timed call to stay above timer noise.
            return [
                harness._check_against_trace(ref, candidate, problem)
                for _ in range(4)
            ]
        finally:
            harness.BATCH_CHECK_ENABLED = previous

    def check_pinned(rep):
        previous = configure_lane_representation(rep)
        try:
            return check(True)
        finally:
            configure_lane_representation(previous)

    bitslice_verdicts = check(True)  # warm lane lowering
    int64_verdicts = check_pinned("int64")
    scalar_verdicts = check(False)
    assert bitslice_verdicts == int64_verdicts == scalar_verdicts
    assert all(v.equivalent for v in bitslice_verdicts)

    bitslice_seconds, _ = _timed(lambda: check(True), repeats=5)
    int64_seconds, _ = _timed(lambda: check_pinned("int64"), repeats=5)
    scalar_seconds, _ = _timed(lambda: check(False), repeats=3)
    speedup = scalar_seconds / bitslice_seconds
    vs_int64 = int64_seconds / bitslice_seconds
    checks = 4 * _COMB_CYCLES
    _record_bitslice(
        "comb",
        f"bit-sliced all-vectors checking, 1-bit-heavy comb DUT, "
        f"4 checks x {_COMB_CYCLES} stimulus vectors = {checks} "
        f"vector checks\n"
        f"scalar per-cycle loop:   {scalar_seconds:8.4f} s"
        f"  ({checks / scalar_seconds:10.0f} vectors/s)\n"
        f"int64 lanes (pinned):    {int64_seconds:8.4f} s"
        f"  ({checks / int64_seconds:10.0f} vectors/s)\n"
        f"bitslice planes:         {bitslice_seconds:8.4f} s"
        f"  ({checks / bitslice_seconds:10.0f} vectors/s)\n"
        f"speedup vs scalar:       {speedup:8.2f} x\n"
        f"speedup vs int64 lanes:  {vs_int64:8.2f} x\n"
        f"(verdicts identical across all three)",
        vector_checks=checks,
        scalar_seconds=scalar_seconds,
        int64_seconds=int64_seconds,
        bitslice_seconds=bitslice_seconds,
        speedup_vs_scalar=speedup,
        speedup_vs_int64=vs_int64,
    )
    assert speedup >= 2.0, (
        f"bitslice all-vectors only {speedup:.2f}x faster than the loop"
    )


_BITCTL_DUT = """module bitctl_dut(
  input clk, input rst, input en, input din, input sel,
  output reg out, output valid, output tick);
  reg s0; reg s1; reg s2; reg s3;
  wire fb;
  assign fb = s3 ^ ({OP_FB});
  assign valid = (s0 ^ s1) | (s2 & en);
  assign tick = {OP_TICK};
  always @(posedge clk) begin
    if (rst) begin
      s0 <= 1'b0; s1 <= 1'b0; s2 <= 1'b0; s3 <= 1'b0; out <= 1'b0;
    end else if (en) begin
      s0 <= fb;
      s1 <= s0;
      s2 <= s1 ^ sel;
      s3 <= {OP_S3};
      out <= valid ^ fb;
    end
  end
endmodule
"""


def _bitctl_variant(op_fb="s0 ^ din", op_tick="s1 | s2", op_s3="s2 ^ s0"):
    return (
        _BITCTL_DUT.replace("{OP_FB}", op_fb)
        .replace("{OP_TICK}", op_tick)
        .replace("{OP_S3}", op_s3)
    )


def _bitctl_problem():
    module = GeneratedModule(
        family="bench",
        source=_bitctl_variant(),
        interface=ModuleInterface(
            module_name="bitctl_dut", clock="clk", reset="rst",
            reset_active_high=True,
            inputs=[("en", 1), ("din", 1), ("sel", 1)],
            outputs=[("out", 1), ("valid", 1), ("tick", 1)],
        ),
        description="1-bit-heavy sequential lockstep benchmark DUT",
    )
    return EvalProblem(
        problem_id="bitslice_lockstep_bench", module=module,
        stimulus_cycles=_LOCKSTEP_CYCLES, stimulus_seed=13,
    )


def _bitctl_candidates(count):
    passing = [
        _bitctl_variant(),
        _bitctl_variant(op_fb="din ^ s0"),
        _bitctl_variant(op_tick="s2 | s1"),
        _bitctl_variant(op_s3="s0 ^ s2"),
    ]
    failing = [
        _bitctl_variant(op_fb="s0 & din"),
        _bitctl_variant(op_tick="s1 & s2"),
    ]
    sources = []
    for index in range(count):
        if index % 4 == 3:
            base = failing[index % 2]
        else:
            base = passing[index % 4]
        if index >= 6:
            base = base + f"\n// resample {index}\n"
        sources.append(base)
    return sources


def test_bitheavy_lockstep_passk_speedup():
    problem = _bitctl_problem()
    # 1-bit-heavy by census (the family bitslice serves on the
    # all-vectors path); lockstep itself rides int64 lanes — the claim
    # is that the shared retirement engine keeps the lockstep win intact
    # on the families the bitslice backend targets.
    golden = elaborate(parse_source(problem.golden_source), "bitctl_dut")
    assert lane_representation(golden) == "bitslice"
    sources = _bitctl_candidates(_LOCKSTEP_CANDIDATES)
    harness._golden_ref(problem)  # golden artifacts shared by both paths

    def check_all(enabled):
        previous = harness.LOCKSTEP_CHECK_ENABLED
        harness.LOCKSTEP_CHECK_ENABLED = enabled
        try:
            return check_candidates_lockstep(problem, sources)
        finally:
            harness.LOCKSTEP_CHECK_ENABLED = previous

    lockstep_verdicts = check_all(True)
    scalar_verdicts = check_all(False)
    assert lockstep_verdicts == scalar_verdicts  # candidate-for-candidate
    passes = sum(1 for passed, _ in lockstep_verdicts if passed)
    assert 0 < passes < len(sources)

    lockstep_seconds, _ = _timed(lambda: check_all(True), repeats=3)
    scalar_seconds, _ = _timed(lambda: check_all(False), repeats=3)
    speedup = scalar_seconds / lockstep_seconds
    checks = _LOCKSTEP_CANDIDATES * _LOCKSTEP_CYCLES
    _record_bitslice(
        "lockstep",
        f"lockstep pass@k on a 1-bit-heavy family, "
        f"{_LOCKSTEP_CANDIDATES} candidates x {_LOCKSTEP_CYCLES} cycles "
        f"= {checks} candidate-cycles ({passes} pass)\n"
        f"scalar per-candidate loop:  {scalar_seconds:8.3f} s"
        f"  ({checks / scalar_seconds:10.0f} candidate-cycles/s)\n"
        f"lockstep lanes:             {lockstep_seconds:8.3f} s"
        f"  ({checks / lockstep_seconds:10.0f} candidate-cycles/s)\n"
        f"speedup:                    {speedup:8.2f} x\n"
        f"(verdicts candidate-for-candidate identical)",
        candidates=_LOCKSTEP_CANDIDATES,
        cycles=_LOCKSTEP_CYCLES,
        scalar_seconds=scalar_seconds,
        lockstep_seconds=lockstep_seconds,
        speedup=speedup,
    )
    assert speedup >= 1.5, (
        f"1-bit-heavy lockstep only {speedup:.2f}x faster than the loop"
    )


_WIDEPATH_SRC = """module widepath(
  input clk, input rst, input [15:0] d,
  output reg [95:0] acc, output [15:0] tap);
  assign tap = acc[95:80] ^ acc[15:0];
  always @(posedge clk) begin
    if (rst) acc <= 96'd0;
    else acc <= {acc[79:0], d} ^ {32'd0, acc[95:32]};
  end
endmodule
"""


def test_wide_datapath_spill_sweep_speedup():
    design = elaborate(parse_source(_WIDEPATH_SRC), "widepath")
    # The lever under test: >63-bit signals spill to python-int lanes
    # instead of the historical UnbatchableDesign scalar fallback.
    assert lane_representation(design) == "spill"
    seeds = range(_SWEEP_LANES)
    stimuli = [
        random_stimulus(design, _SWEEP_CYCLES, seed) for seed in seeds
    ]
    kwargs = dict(
        clock="clk", reset="rst", reset_active_high=True, stimuli=stimuli
    )

    def run_spill():
        return sweep_random_stimulus(
            design, _SWEEP_CYCLES, seeds, **kwargs
        )

    def run_fallback():
        # Pinning int64 on a wide design restores the pre-spill
        # behaviour: UnbatchableDesign -> 64 scalar compiled episodes.
        previous = configure_lane_representation("int64")
        try:
            return sweep_random_stimulus(
                design, _SWEEP_CYCLES, seeds, **kwargs
            )
        finally:
            configure_lane_representation(previous)

    spill_result = run_spill()  # warm both compile caches
    fallback_result = run_fallback()
    assert spill_result.vectorized
    assert not fallback_result.vectorized
    assert spill_result.traces == fallback_result.traces  # lane-for-lane
    assert spill_result.errors == fallback_result.errors

    spill_seconds, _ = _timed(run_spill, repeats=5)
    fallback_seconds, _ = _timed(run_fallback, repeats=3)
    speedup = fallback_seconds / spill_seconds
    lane_cycles = _SWEEP_LANES * _SWEEP_CYCLES
    _record_bitslice(
        "wide",
        f"wide-datapath (96-bit) multi-seed sweep, {_SWEEP_LANES} lanes "
        f"x {_SWEEP_CYCLES} cycles = {lane_cycles} lane-cycles\n"
        f"old scalar fallback (int64 pin): {fallback_seconds:8.3f} s"
        f"  ({lane_cycles / fallback_seconds:10.0f} lane-cycles/s)\n"
        f"spill lanes (one sweep):         {spill_seconds:8.3f} s"
        f"  ({lane_cycles / spill_seconds:10.0f} lane-cycles/s)\n"
        f"speedup:                         {speedup:8.2f} x\n"
        f"(per-lane traces and error classification identical)",
        lanes=_SWEEP_LANES,
        cycles=_SWEEP_CYCLES,
        fallback_seconds=fallback_seconds,
        spill_seconds=spill_seconds,
        speedup=speedup,
    )
    assert speedup >= 3.0, (
        f"spill sweep only {speedup:.2f}x faster than the scalar fallback"
    )
