"""CEGIS checking economics: set pre-check amortization + coverage depth.

Two claims, one artifact (``benchmarks/results/cegis.json``):

* **set pre-check** — once a falsification search has minted a
  distinguishing vector for a hardened problem, the Nth near-miss
  candidate dies against the persisted set at a few cycles' cost instead
  of a fresh full-depth random-stimulus check (asserted ≥2x cheaper,
  measured much larger);
* **coverage saturation** — toggle/level coverage saturates long before
  the configured stimulus depth on a small sequential family, so
  truncating golden-stimulus recording at saturation shortens every
  candidate check while keeping verdicts identical.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.sim import cache as sim_cache
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalProblem, cegis, harness
from repro.vgen import GeneratedModule, ModuleInterface, generate_family, mutate
from repro.vgen.base import random_style

from benchmarks.conftest import write_result

#: deep stimulus so simulation (not parse/elaborate) dominates the
#: full-check cost being amortized
_TRAP_CYCLES = 1024
_N_CANDIDATES = 12
_COVERAGE_CYCLES = 384


def _timed(fn, repeats=2):
    """Best-of-N wall time with the cyclic GC paused during measurement."""
    best, value = float("inf"), None
    for _ in range(repeats):
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return best, value


# A 4-stage 32-bit pipeline whose near-miss mutants mishandle exactly one
# input value (2^32-1): blind spots for uniform random stimulus, killed
# by the boundary episodes of the falsification search.
_TRAP_GOLDEN = """module cegis_trap(
  input wire clk,
  input wire rst,
  input wire [31:0] d,
  output wire [31:0] q,
  output wire [31:0] acc
);
  reg [31:0] s0;
  reg [31:0] s1;
  reg [31:0] s2;
  reg [31:0] a;
  always @(posedge clk) begin
    if (rst) begin
      s0 <= 32'd0;
      s1 <= 32'd0;
      s2 <= 32'd0;
      a <= 32'd0;
    end else begin
      s0 <= d;
      s1 <= s0 ^ (s0 >> 3);
      s2 <= s1 + 32'd1;
      a <= a + s2;
    end
  end
  assign q = s2;
  assign acc = a;
endmodule
"""

_TRAP_MUTANT = _TRAP_GOLDEN.replace(
    "s0 <= d;", "s0 <= (d == 32'd4294967295) ? 32'd1 : d;"
)


def _trap_problem():
    interface = ModuleInterface(
        module_name="cegis_trap",
        clock="clk",
        reset="rst",
        inputs=[("d", 32)],
        outputs=[("q", 32), ("acc", 32)],
    )
    module = GeneratedModule(
        family="handmade",
        source=_TRAP_GOLDEN,
        interface=interface,
        description="pipeline with an equality trap",
        params={},
    )
    return EvalProblem(
        problem_id="bench-trap",
        module=module,
        stimulus_cycles=_TRAP_CYCLES,
        stimulus_seed=3,
    )


def _clear_cegis_state():
    harness._GOLDEN_CACHE.clear()
    cegis._SET_CACHE.clear()
    cegis._CLEAR_MEMO.clear()
    cegis._GOLDEN_SWEEP_CACHE.clear()


@pytest.fixture()
def cegis_cache(tmp_path):
    previous = sim_cache.configure(str(tmp_path))
    _clear_cegis_state()
    try:
        yield str(tmp_path)
    finally:
        sim_cache.configure(previous)
        _clear_cegis_state()


_CEGIS_TEXT = {}
_CEGIS_VALUES = {}


def _record_cegis(part, text, **values):
    _CEGIS_TEXT[part] = text
    _CEGIS_VALUES.update(
        {f"{part}_{key}": value for key, value in values.items()}
    )
    combined = "\n\n".join(
        _CEGIS_TEXT[key]
        for key in ("precheck", "coverage")
        if key in _CEGIS_TEXT
    )
    write_result("cegis", combined, values=dict(_CEGIS_VALUES))


def test_set_precheck_amortizes_full_checks(cegis_cache):
    """The Nth near-miss on a hardened problem is ≥2x cheaper via the
    persisted distinguishing set than via a fresh full-depth check."""
    problem = _trap_problem()
    config = cegis.CegisConfig(enabled=True)

    # distinct near-miss variants per arm so neither arm's candidate
    # elaboration warms the other's sim_cache entries
    fresh_variants = [
        _TRAP_MUTANT + f"// fresh {index}\n" for index in range(_N_CANDIDATES)
    ]
    hardened_variants = [
        _TRAP_MUTANT + f"// hard {index}\n" for index in range(_N_CANDIDATES)
    ]

    # Arm 1 — legacy checker, full random-stimulus check per candidate.
    # The trap survives every one of them (the verdicts prove it).
    previous = cegis.configure(cegis.CegisConfig(enabled=False))
    try:
        harness._golden_ref(problem)  # golden built outside the timer
        legacy_seconds, legacy_verdicts = _timed(
            lambda: [
                harness.check_candidate_source(problem, variant)
                for variant in fresh_variants
            ],
            repeats=1,
        )
    finally:
        cegis.configure(previous)
    assert all(passed for passed, _ in legacy_verdicts)

    # Harden the problem: one search mints the distinguishing vector.
    previous = cegis.configure(config)
    try:
        harness._GOLDEN_CACHE.clear()
        harness._golden_ref(problem)
        passed, _ = harness.check_candidate_source(problem, _TRAP_MUTANT)
        assert not passed  # falsification search caught the trap
        assert len(cegis.distinguishing_set(problem)) >= 1

        # Arm 2 — every later near-miss dies against the set pre-check.
        cegis_seconds, cegis_verdicts = _timed(
            lambda: [
                harness.check_candidate_source(problem, variant)
                for variant in hardened_variants
            ],
            repeats=1,
        )
    finally:
        cegis.configure(previous)
    assert all(not passed for passed, _ in cegis_verdicts)

    legacy_per = legacy_seconds / _N_CANDIDATES
    cegis_per = cegis_seconds / _N_CANDIDATES
    speedup = legacy_per / cegis_per
    _record_cegis(
        "precheck",
        f"distinguishing-set pre-check, {_N_CANDIDATES} near-miss "
        f"candidates, {_TRAP_CYCLES}-cycle stimulus\n"
        f"fresh full check (passes the trap!): {legacy_per * 1e3:8.2f} "
        f"ms/candidate\n"
        f"hardened set pre-check (kills it):   {cegis_per * 1e3:8.2f} "
        f"ms/candidate\n"
        f"speedup: {speedup:.1f}x  "
        f"(floor asserted: 2x)",
        candidates=_N_CANDIDATES,
        stimulus_cycles=_TRAP_CYCLES,
        fresh_ms_per_candidate=legacy_per * 1e3,
        hardened_ms_per_candidate=cegis_per * 1e3,
        speedup=speedup,
    )
    assert speedup >= 2.0


def test_coverage_saturation_shortens_stimulus(cegis_cache):
    """Saturation truncation cuts golden depth on a real family with
    verdicts identical to the full-depth checker."""
    rng = DeterministicRNG(0xC0FE)
    module = generate_family(
        "edge_detector", rng.fork("fam"), random_style(rng.fork("style"))
    )
    problem = EvalProblem(
        problem_id="bench-coverage",
        module=module,
        stimulus_cycles=_COVERAGE_CYCLES,
        stimulus_seed=5,
    )
    candidates = [module.source] + [m.source for m in mutate(module)]

    previous = cegis.configure(cegis.CegisConfig(enabled=False))
    try:
        harness._golden_ref(problem)
        full_seconds, full_verdicts = _timed(
            lambda: [
                harness.check_candidate_source(problem, source)
                for source in candidates
            ],
            repeats=1,
        )
    finally:
        cegis.configure(previous)

    config = cegis.CegisConfig(
        enabled=True,
        coverage_stimulus=True,
        coverage_window=16,
        search_rounds=0,  # isolate truncation: no falsification here
    )
    previous = cegis.configure(config)
    try:
        _clear_cegis_state()
        harness._golden_ref(problem)
        truncated_seconds, truncated_verdicts = _timed(
            lambda: [
                harness.check_candidate_source(problem, source)
                for source in candidates
            ],
            repeats=1,
        )
        ref = harness._golden_ref(problem)
    finally:
        cegis.configure(previous)

    assert truncated_verdicts == full_verdicts  # identical verdicts
    assert ref.coverage is not None
    measured_depth = len(ref.stimulus)
    saved = ref.full_cycles - measured_depth
    assert saved > 0  # saturation measurably shortened the stimulus
    _record_cegis(
        "coverage",
        f"coverage-directed stimulus, edge_detector family, "
        f"{len(candidates)} candidates\n"
        f"configured depth: {_COVERAGE_CYCLES} cycles; saturation at "
        f"cycle {ref.coverage['saturation_cycle']}; measured depth "
        f"{measured_depth} cycles ({saved} saved)\n"
        f"coverage: {ref.coverage['covered_points']}/"
        f"{ref.coverage['total_points']} points "
        f"({ref.coverage['fraction'] * 100:.0f}%)\n"
        f"full-depth checks:  {full_seconds * 1e3:8.2f} ms\n"
        f"truncated checks:   {truncated_seconds * 1e3:8.2f} ms\n"
        f"verdicts identical: {truncated_verdicts == full_verdicts}",
        configured_cycles=_COVERAGE_CYCLES,
        measured_cycles=measured_depth,
        cycles_saved=saved,
        saturation_cycle=ref.coverage["saturation_cycle"],
        coverage_fraction=ref.coverage["fraction"],
        full_ms=full_seconds * 1e3,
        truncated_ms=truncated_seconds * 1e3,
        verdicts_identical=truncated_verdicts == full_verdicts,
    )
