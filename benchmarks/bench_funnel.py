"""E5 — the Sec. IV-A dataset-minimization funnel.

Paper series (absolute, full scale): 1.3M extracted -> 608,180 licensed
-> de-dup removes 62.5% -> syntax+copyright checks -> 222,624 final, with
copyrighted data ~1% of the original corpus.  At 1/100 scale we assert
the *ratios*.
"""

from repro.curation import CurationPipeline
from benchmarks.conftest import write_result


def test_funnel_ratios(benchmark, freeset_result, raw_files):
    funnel = freeset_result.dataset.funnel
    write_result(
        "funnel",
        funnel.to_text()
        + f"\nfinal rows: {freeset_result.dataset.rows}"
        + f"\nfinal size: {freeset_result.dataset.size_bytes / 1e6:.2f} MB",
        values={
            "initial_count": funnel.initial_count,
            "final_count": funnel.final_count,
            "final_rows": freeset_result.dataset.rows,
            "final_size_bytes": freeset_result.dataset.size_bytes,
            "stages": [
                {
                    "name": stage.name,
                    "in": stage.in_count,
                    "out": stage.out_count,
                }
                for stage in funnel.stages
            ],
        },
    )

    license_stage = funnel.stage("license_filter")
    dedup_stage = funnel.stage("dedup")
    copyright_stage = funnel.stage("copyright_filter")

    # license filter keeps roughly half (paper: 46.8%)
    keep = 1 - license_stage.removal_fraction
    assert 0.35 < keep < 0.70
    # de-duplication removes the majority (paper: 62.5%)
    assert 0.45 < dedup_stage.removal_fraction < 0.80
    # copyrighted files are a small but real share of the original corpus
    copyrighted_share = copyright_stage.removed / funnel.initial_count
    assert 0.001 < copyrighted_share < 0.03
    assert funnel.final_count > 0

    # timed unit: one full curation pass over the scraped corpus
    benchmark.pedantic(
        lambda: CurationPipeline().run(raw_files), rounds=1, iterations=1
    )
