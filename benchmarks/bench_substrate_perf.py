"""Substrate micro-benchmarks: parser, simulator, MinHash, generation.

Not paper artifacts — these track the performance of the subsystems the
experiments lean on, so regressions in the hot paths show up here.
"""

import pytest

from repro.dedup import MinHasher
from repro.llm import GenerationConfig, LanguageModel
from repro.sim import Testbench, elaborate
from repro.utils.rng import DeterministicRNG
from repro.verilog import parse_source
from repro.vgen import generate_family


@pytest.fixture(scope="module")
def fifo_module():
    return generate_family("fifo", DeterministicRNG(0x9EEF))


def test_parser_throughput(benchmark, fifo_module):
    source = fifo_module.source * 1  # one realistic module
    result = benchmark(parse_source, source)
    assert result.modules


def test_simulation_cycles_per_second(benchmark, fifo_module):
    design = elaborate(parse_source(fifo_module.source), fifo_module.name)

    def run_100_cycles():
        bench = Testbench(design, clock="clk", reset="rst")
        bench.apply_reset()
        for i in range(100):
            bench.step({"push": i % 2, "pop": i % 3 == 0, "din": i & 0xFF})
        return bench.sample()

    out = benchmark(run_100_cycles)
    assert "count" in out


def test_minhash_signature_throughput(benchmark, fifo_module):
    hasher = MinHasher()
    text = fifo_module.source * 4
    signature = benchmark(hasher.signature, text)
    assert len(signature) == hasher.num_permutations


def test_generation_tokens_per_second(benchmark):
    rng = DeterministicRNG(0x6E6)
    corpus = [
        generate_family("counter", rng.fork(i)).source for i in range(60)
    ]
    model = LanguageModel.pretrain("perf", corpus, num_merges=300)
    config = GenerationConfig(temperature=0.8, max_new_tokens=200)

    out = benchmark(
        model.generate, "module counter(\n    input wire clk,", config, 7
    )
    assert isinstance(out, str)
