"""A3 — ablation: violation-rate sensitivity.

Sweeps the two knobs the paper fixes by fiat: the cosine-similarity
violation threshold (0.8) and the prompt prefix fraction (20%).  The
discussion section calls out both as candidates for future robustness
work; the sweep quantifies how the measured rate depends on them for a
contaminated reference model.
"""

from repro.copyright import CopyrightBenchmark, PromptSpec
from benchmarks.conftest import write_result

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def test_threshold_and_prefix_sweep(
    benchmark, model_zoo, copyrighted_corpus
):
    # VeriGen is the paper's most-contaminated model: a good probe.
    model = model_zoo.model("VeriGen")

    base_bench = CopyrightBenchmark(copyrighted_corpus, num_prompts=60)
    report = base_bench.evaluate(model, temperature=0.2)
    scores = [r.similarity for r in report.results]

    lines = [f"{'threshold':>10}{'violation_rate':>16}"]
    rates = {}
    for threshold in THRESHOLDS:
        rate = sum(s >= threshold for s in scores) / len(scores)
        rates[threshold] = rate
        lines.append(f"{threshold:>10.2f}{rate:>16.2%}")

    lines.append("")
    lines.append(f"{'prefix_frac':>12}{'violation_rate':>16}")
    frac_rates = {}
    for fraction in FRACTIONS:
        bench = CopyrightBenchmark(
            copyrighted_corpus,
            num_prompts=60,
            prompt_spec=PromptSpec(prefix_fraction=fraction),
        )
        frac_rates[fraction] = bench.evaluate(
            model, temperature=0.2
        ).violation_rate
        lines.append(f"{fraction:>12.2f}{frac_rates[fraction]:>16.2%}")
    write_result("ablation_threshold", "\n".join(lines))

    # threshold sweep is monotone non-increasing by construction
    ordered = [rates[t] for t in THRESHOLDS]
    assert ordered == sorted(ordered, reverse=True)
    # at the paper's settings the contaminated model violates measurably
    assert rates[0.8] > 0.0

    model_zoo.evict("VeriGen")
    benchmark.pedantic(
        lambda: base_bench.evaluate(
            model_zoo.model("Llama-3.1-8B-Instruct"), temperature=0.2
        ),
        rounds=1,
        iterations=1,
    )
