"""E3 — Figure 2: distribution of Verilog file lengths, FreeSet vs VeriGen.

The paper plots file counts over log-spaced character-length bins
(10^1..10^8).  Shape to reproduce: FreeSet has far more files overall,
dominated by small files (10..10k chars), plus extreme outliers (the
paper found a 90M-char file; our scaled world carries a proportionally
huge generated netlist).
"""

from repro.core.comparison import DATASET_POLICIES, simulate_prior_dataset
from repro.utils.stats import Histogram, log_bins
from benchmarks.conftest import write_result


def _histogram(lengths):
    hist = Histogram(edges=log_bins(1, 8))
    hist.add_all(lengths)
    return hist


def test_fig2(benchmark, raw_files, freeset_result):
    freeset = freeset_result.dataset
    verigen = simulate_prior_dataset(DATASET_POLICIES["VeriGen"], raw_files)

    hist_free = _histogram(freeset.char_lengths())
    hist_veri = _histogram(verigen.char_lengths())

    lines = [f"{'bin_center':>14}{'FreeSet':>10}{'VeriGen':>10}"]
    for (center, count_free), (_, count_veri) in zip(
        hist_free.series(), hist_veri.series()
    ):
        lines.append(f"{center:>14.0f}{count_free:>10}{count_veri:>10}")
    write_result("fig2_file_lengths", "\n".join(lines))

    # the bulk of FreeSet files are 10..10,000 chars (paper's observation)
    counts = dict(zip(hist_free.bin_centers(), hist_free.counts))
    small_mass = sum(
        c for center, c in counts.items() if center < 10_000
    )
    assert small_mass / max(hist_free.total, 1) > 0.8
    # extreme outlier present (the scaled mega netlist)
    assert max(freeset.char_lengths()) > 100_000

    benchmark.pedantic(
        lambda: _histogram(freeset.char_lengths()), rounds=3, iterations=1
    )
