"""repro.obs: spans, metrics, pool-merge identity, exporters, overhead.

The merge-identity tests run one small EvalPlan in trace mode under both
:class:`~repro.engine.SerialExecutor` and
:class:`~repro.engine.ParallelExecutor` and require the merged traces to
agree span for span — the acceptance criterion for process-pool-correct
observability.  The overhead guard bounds what ``REPRO_OBS=off``
instrumentation may add to a compiled-simulation workload.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.engine import ParallelExecutor, SerialExecutor, StageStat
from repro.engine.executor import ChunkTrace
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm import LanguageModel
from repro.obs import export as obs_export
from repro.sim import cache as sim_cache
from repro.vereval import (
    EvalConfig,
    build_problem_set,
    check_candidates_lockstep,
)

TOOLS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "tools")


@pytest.fixture(autouse=True)
def obs_clean(tmp_path):
    """Fresh collector state, mode off, exports diverted to tmp."""
    previous = obs.configure(obs.MODE_OFF, str(tmp_path / "obs-out"))
    obs.reset()
    yield
    # "" (not None) so a previously-unset directory is truly unset again.
    obs.configure(previous[0], previous[1] or "")
    obs.reset()


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counters_accumulate(self):
        obs.count("x")
        obs.count("x", 4)
        obs.count("y", 2.5)
        assert obs.counter_value("x") == 5
        assert obs.counter_value("y") == 2.5
        assert obs.counter_value("missing") == 0

    def test_counters_prefix_filter(self):
        obs.count("sim.cache.hit", 3)
        obs.count("sim.cache.miss")
        obs.count("other.metric")
        assert obs.counters("sim.cache.") == {
            "sim.cache.hit": 3,
            "sim.cache.miss": 1,
        }

    def test_counters_sum_across_frames(self):
        obs.count("x", 1)
        obs.push_frame()
        obs.count("x", 2)
        assert obs.counter_value("x") == 3
        obs.pop_frame()
        assert obs.counter_value("x") == 1

    def test_gauge_last_write_wins(self):
        obs.gauge("g", 1.0)
        obs.gauge("g", 7.0)
        assert obs.snapshot().gauges["g"] == 7.0

    def test_histogram_math(self):
        for value in (1.0, 3.0, 8.0):
            obs.observe("h", value)
        n, total, vmin, vmax = obs.snapshot().hists["h"]
        assert (n, total, vmin, vmax) == (3, 12.0, 1.0, 8.0)

    def test_histogram_merge_across_buffers(self):
        obs.push_frame()
        obs.observe("h", 2.0)
        obs.observe("h", 10.0)
        buffer = obs.pop_frame()
        obs.observe("h", 4.0)
        obs.merge_buffer(buffer)
        n, total, vmin, vmax = obs.snapshot().hists["h"]
        assert (n, total, vmin, vmax) == (3, 16.0, 2.0, 10.0)

    def test_metrics_recorded_even_when_off(self):
        assert obs.mode() == obs.MODE_OFF
        obs.count("always.on")
        assert obs.counter_value("always.on") == 1


# -- spans -------------------------------------------------------------------


class TestSpans:
    def test_off_mode_span_is_shared_noop(self):
        first = obs.span("a", k=1)
        second = obs.span("b")
        assert first is second
        with first as sp:
            sp.set(extra=True)
        assert not obs.snapshot().agg

    def test_summary_mode_aggregates_without_events(self):
        obs.configure(obs.MODE_SUMMARY)
        with obs.span("work"):
            pass
        with obs.span("work"):
            pass
        snap = obs.snapshot()
        assert snap.agg["work"][0] == 2
        assert snap.events == []

    def test_trace_mode_records_nesting(self):
        obs.configure(obs.MODE_TRACE)
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                pass
            obs.event("point", n=1)
        events = {ev.name: ev for ev in obs.snapshot().events}
        outer, inner, point = (
            events["outer"], events["inner"], events["point"]
        )
        assert outer.parent is None
        assert inner.parent == outer.id
        assert point.parent == outer.id
        assert point.dur == 0
        assert outer.attrs == {"kind": "test"}
        assert outer.dur >= inner.dur >= 0

    def test_span_set_attaches_attributes(self):
        obs.configure(obs.MODE_TRACE)
        with obs.span("s", a=1) as sp:
            sp.set(b=2)
        (ev,) = obs.snapshot().events
        assert ev.attrs == {"a": 1, "b": 2}

    def test_pop_frame_empty_returns_none(self):
        obs.push_frame()
        assert obs.pop_frame() is None

    def test_buffer_is_picklable(self):
        obs.configure(obs.MODE_TRACE)
        obs.push_frame()
        with obs.span("w"):
            obs.count("c", 2)
            obs.observe("h", 1.5)
        buffer = obs.pop_frame()
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.counters == {"c": 2}
        assert [ev.name for ev in clone.events] == ["w"]

    def test_merge_remaps_ids_and_adopts_roots(self):
        obs.configure(obs.MODE_TRACE)
        obs.push_frame()
        with obs.span("worker.outer"):
            with obs.span("worker.inner"):
                pass
        buffer = obs.pop_frame()
        with obs.span("coordinator"):
            obs.merge_buffer(buffer)
        events = {ev.name: ev for ev in obs.snapshot().events}
        coord = events["coordinator"]
        outer = events["worker.outer"]
        inner = events["worker.inner"]
        # Worker root re-parents under the active coordinator span, the
        # child keeps its (remapped) parent, and no ids collide.
        assert outer.parent == coord.id
        assert inner.parent == outer.id
        assert len({coord.id, outer.id, inner.id}) == 3


# -- executor merge identity -------------------------------------------------


def _tiny_plan(executor):
    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=2),
        EvalConfig(n_samples=4, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=48),
    )
    # chunk_size 4: each problem's candidates land in their own chunk,
    # so the parallel run genuinely dispatches more than one chunk.
    return EvalPlan([model], [task], chunk_size=4, executor=executor)


def _traced_run(executor):
    from repro.vereval import harness

    obs.reset()
    previous = sim_cache.configure("")  # no disk tier: runs stay alike
    # Cold golden cache per run: forked pool workers inherit the
    # coordinator's warm LRU, which would skip spans a serial run emits.
    harness._GOLDEN_CACHE.clear()
    try:
        obs.configure(obs.MODE_TRACE)
        run = _tiny_plan(executor).run()
        return run, obs.snapshot()
    finally:
        sim_cache.configure(previous)
        harness._GOLDEN_CACHE.clear()
        if isinstance(executor, ParallelExecutor):
            executor.close()


class TestExecutorMergeIdentity:
    def test_parallel_trace_matches_serial(self):
        serial_run, serial = _traced_run(SerialExecutor())
        obs.reset()
        parallel_run, parallel = _traced_run(ParallelExecutor(workers=2))

        def span_counts(buffer):
            counts = {}
            for ev in buffer.events:
                counts[ev.name] = counts.get(ev.name, 0) + 1
            return counts

        serial_counts = span_counts(serial)
        parallel_counts = span_counts(parallel)
        assert serial_counts == parallel_counts
        # Per-candidate accounting equals the scalar bookkeeping: one
        # eval.candidate event and one counter tick per checked record.
        n_records = len(serial_run.records)
        assert serial_counts["eval.candidate"] == n_records
        assert serial_counts["eval.generate"] == n_records
        assert obs.counter_value("eval.candidates") == n_records
        assert parallel_run.records == serial_run.records

    def test_merged_trace_has_no_orphan_spans(self):
        _, merged = _traced_run(ParallelExecutor(workers=2))
        ids = {ev.id for ev in merged.events}
        assert len(ids) == len(merged.events)  # remap kept ids unique
        parents = {ev.parent for ev in merged.events} - {None}
        assert parents <= ids
        # Worker chunk spans nest under the coordinator's run span.
        by_id = {ev.id: ev for ev in merged.events}
        chunk_spans = [ev for ev in merged.events
                       if ev.name == "engine.chunk"]
        assert chunk_spans
        for ev in chunk_spans:
            top = ev
            while top.parent is not None:
                top = by_id[top.parent]
            assert top.name == "run.eval_plan"

    def test_run_result_carries_telemetry_and_stats(self):
        run, _ = _traced_run(SerialExecutor())
        assert run.telemetry is not None
        assert run.telemetry.spans["eval.candidate"]["count"] == len(
            run.records
        )
        assert "eval.candidate" in run.telemetry.to_text()
        stats = {stat.stage: stat for stat in run.stage_stats}
        assert stats["eval_check"].n_in == len(run.records)


# -- exporters ---------------------------------------------------------------


def _sample_buffer():
    obs.configure(obs.MODE_TRACE)
    obs.push_frame()
    with obs.span("run.demo"):
        with obs.span("vereval.problem", problem="p0", candidates=3):
            obs.event("eval.candidate", passed=True)
        obs.count("sim.cache.hit", 2)
        obs.gauge("pool.workers", 2)
        obs.observe("lockstep.group_lanes", 3)
    return obs.pop_frame()


class TestExporters:
    def test_events_jsonl_round_trip(self, tmp_path):
        buffer = _sample_buffer()
        path = tmp_path / "events.jsonl"
        obs_export.write_events_jsonl(
            str(path), buffer, meta={"run": "demo", "mode": "trace"}
        )
        lines = obs_export.read_events_jsonl(str(path))
        assert lines[0] == {"type": "meta", "run": "demo", "mode": "trace"}
        spans = [line for line in lines if line["type"] == "span"]
        assert [s["name"] for s in spans] == [
            "eval.candidate", "vereval.problem", "run.demo"
        ]
        for entry in spans:
            assert {"name", "ts", "dur", "cpu", "pid", "id",
                    "parent", "attrs"} <= set(entry)
        counter = next(l for l in lines if l["type"] == "counter")
        assert counter == {
            "type": "counter", "name": "sim.cache.hit", "value": 2
        }
        hist = next(l for l in lines if l["type"] == "histogram")
        assert hist["name"] == "lockstep.group_lanes"
        assert hist["count"] == 1 and hist["sum"] == 3

    def test_trace_event_file_is_loadable(self, tmp_path):
        buffer = _sample_buffer()
        path = tmp_path / "trace.json"
        obs_export.write_trace_event(str(path), buffer)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        metas = [ev for ev in events if ev["ph"] == "M"]
        slices = [ev for ev in events if ev["ph"] == "X"]
        assert metas and metas[0]["args"]["name"] == "coordinator"
        assert {ev["name"] for ev in slices} == {
            "run.demo", "vereval.problem", "eval.candidate"
        }
        for ev in slices:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["pid"], int)

    def test_telemetry_summary(self):
        buffer = _sample_buffer()
        telemetry = obs_export.telemetry_from_buffer(
            "demo", "trace", buffer
        )
        assert telemetry.wall_seconds > 0
        assert telemetry.counters["sim.cache.hit"] == 2
        assert telemetry.histograms["lockstep.group_lanes"]["mean"] == 3
        text = telemetry.to_text()
        assert "vereval.problem" in text and "sim.cache.hit" in text

    def test_run_capture_exports_artifacts(self, tmp_path):
        obs.configure(obs.MODE_TRACE, str(tmp_path))
        with obs.run_capture("demo", kind="test") as capture:
            with obs.span("vereval.problem", problem="p0", candidates=1):
                pass
        assert capture.export_dir is not None
        names = sorted(os.listdir(capture.export_dir))
        assert names == ["events.jsonl", "telemetry.json", "trace.json"]
        assert capture.telemetry.spans["run.demo"]["count"] == 1

    def test_trace_report_cli(self, tmp_path):
        obs.configure(obs.MODE_TRACE, str(tmp_path))
        with obs.run_capture("demo"):
            with obs.span("vereval.problem", problem="p7", candidates=4):
                pass
            obs.count("sim.cache.miss", 3)
        result = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "trace_report.py"),
             str(tmp_path), "--top", "3"],
            capture_output=True, text=True, check=True,
        )
        assert "vereval.problem" in result.stdout
        assert "sim.cache.miss" in result.stdout
        assert "p7" in result.stdout

    def test_trace_report_cli_empty_dir(self, tmp_path):
        result = subprocess.run(
            [sys.executable,
             os.path.join(TOOLS_DIR, "trace_report.py"), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert result.returncode == 1
        assert "no events.jsonl" in result.stderr


# -- typed stage stats -------------------------------------------------------


class TestStageStat:
    def test_tuple_compat(self):
        stat = StageStat("dedup", 10, 7, 0.5)
        name, n_in, n_out, seconds = stat
        assert (name, n_in, n_out, seconds) == ("dedup", 10, 7, 0.5)
        assert stat.as_tuple == ("dedup", 10, 7, 0.5)
        assert stat[0] == "dedup" and stat[3] == 0.5
        assert stat.removed == 3

    def test_chunk_trace_iterates_stats(self):
        trace = ChunkTrace(stats=[StageStat("s", 1, 1, 0.0)])
        (stat,) = list(trace)
        assert stat.stage == "s"


# -- cache metrics -----------------------------------------------------------


class TestCacheMetrics:
    def test_hit_miss_store_counted(self, tmp_path):
        previous = sim_cache.configure(str(tmp_path))
        try:
            assert sim_cache.load("blob", "k") is None
            assert sim_cache.store("blob", [1], "k")
            assert sim_cache.load("blob", "k") == [1]
        finally:
            sim_cache.configure(previous)
        assert sim_cache.stats() == {"miss": 1, "store": 1, "hit": 1}

    def test_corrupt_entry_counted_and_warned_once(
        self, tmp_path, caplog, monkeypatch
    ):
        monkeypatch.setattr(sim_cache, "_warned_corrupt", False)
        previous = sim_cache.configure(str(tmp_path))
        try:
            assert sim_cache.store("blob", [1], "k")
            assert sim_cache.store("blob", [2], "k2")
            for pkl in tmp_path.rglob("*.pkl"):
                pkl.write_bytes(b"not a pickle")
            with caplog.at_level("WARNING", logger="repro.sim.cache"):
                assert sim_cache.load("blob", "k") is None
                assert sim_cache.load("blob", "k2") is None
        finally:
            sim_cache.configure(previous)
        stats = sim_cache.stats()
        assert stats["corrupt"] == 2
        assert stats["evict"] == 2
        assert stats["miss"] == 2
        warnings = [r for r in caplog.records
                    if "corrupt sim-cache entry" in r.message]
        assert len(warnings) == 1  # once per process, not per entry

    def test_version_mismatch_counted_and_evicted(
        self, tmp_path, monkeypatch
    ):
        previous = sim_cache.configure(str(tmp_path))
        try:
            assert sim_cache.store("blob", [1], "k")
            monkeypatch.setattr(
                sim_cache, "BACKEND_VERSION", sim_cache.BACKEND_VERSION + 1
            )
            assert sim_cache.load("blob", "k") is None
            assert not list(tmp_path.rglob("*.pkl"))  # evicted on disk
        finally:
            sim_cache.configure(previous)
        stats = sim_cache.stats()
        assert stats["version_mismatch"] == 1
        assert stats["evict"] == 1


# -- checkpoint resume -------------------------------------------------------


class TestCheckpointMetrics:
    def test_resume_skipped_counter(self, tmp_path):
        from repro.engine import CheckpointStore

        def plan():
            return _tiny_plan(SerialExecutor())

        store = CheckpointStore(tmp_path)
        plan().run(store=store, tag="obs", checkpoint_every=4)
        assert obs.counter_value("checkpoint.resume_skipped") == 0
        run = plan().run(store=store, tag="obs", checkpoint_every=4)
        # The replayed run resumed from the completed snapshot: every
        # spec was skipped, none re-executed.
        total = plan().total_specs()
        assert obs.counter_value("checkpoint.resume_skipped") == total
        assert len(run.records) == total


# -- overhead guard ----------------------------------------------------------


def _sim_workload():
    problems = build_problem_set(n_problems=1)
    problem = problems[0]
    golden = problem.module.source
    check_candidates_lockstep(problem, [golden] * 4)


class TestOffModeOverhead:
    def test_off_mode_overhead_under_three_percent(self, monkeypatch):
        assert obs.mode() == obs.MODE_OFF
        _sim_workload()  # warm parse/elaborate caches out of the timing

        start = time.perf_counter()
        _sim_workload()
        workload_seconds = time.perf_counter() - start

        calls = {"n": 0}
        for name in ("span", "event", "count", "gauge", "observe"):
            real = getattr(obs, name)

            def wrapper(*args, _real=real, **kwargs):
                calls["n"] += 1
                return _real(*args, **kwargs)

            monkeypatch.setattr(obs, name, wrapper)
        _sim_workload()
        monkeypatch.undo()
        assert calls["n"] > 0  # the workload is instrumented

        # Off-mode unit cost, measured on the most expensive call kinds
        # the workload uses: a no-op span with kwargs and a counter tick.
        reps = 20000
        start = time.perf_counter()
        for _ in range(reps):
            with obs.span("overhead.probe", a=1, b=2):
                pass
            obs.count("overhead.probe")
        per_call = (time.perf_counter() - start) / (2 * reps)

        overhead = calls["n"] * per_call
        assert overhead < 0.03 * workload_seconds, (
            f"{calls['n']} obs calls x {per_call * 1e9:.0f}ns = "
            f"{overhead * 1e3:.3f}ms >= 3% of "
            f"{workload_seconds * 1e3:.1f}ms workload"
        )
