"""Tests for the streaming, parallel, checkpointable execution engine."""

import pytest

from repro.curation import (
    CopyrightFilter,
    CurationConfig,
    CurationPipeline,
    IncrementalCurator,
    LicenseFilter,
)
from repro.curation.report import FunnelReport
from repro.dedup import MinHasher, StreamingDeduplicator, deduplicate
from repro.engine import (
    CheckpointStore,
    DedupStage,
    FunctionFilterStage,
    ParallelExecutor,
    SerialExecutor,
    StageGraph,
    StageMetrics,
    build_stages,
    create_stage,
    iter_chunks,
    registered_stages,
)
from repro.verilog import check_syntax


def _is_even(n):
    return n % 2 == 0


def _under_100(n):
    return n < 100


class TestChunking:
    def test_iter_chunks_sizes(self):
        chunks = list(iter_chunks(range(10), 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_iter_chunks_empty(self):
        assert list(iter_chunks([], 4)) == []

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            StageGraph([], chunk_size=0)


class TestRegistry:
    def test_curation_stages_registered(self):
        names = registered_stages()
        for expected in (
            "license_filter", "length_cap", "dedup",
            "copyright_filter", "syntax_check",
        ):
            assert expected in names

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            create_stage("no_such_stage")

    def test_build_stages_specs(self):
        stages = build_stages(
            ["copyright_filter", ("length_cap", {"max_chars": 10})]
        )
        assert [s.name for s in stages] == ["copyright_filter", "length_cap"]
        assert stages[1].max_chars == 10


class TestStageGraph:
    def test_metrics_accounting(self):
        graph = StageGraph(
            [
                FunctionFilterStage("evens", _is_even),
                FunctionFilterStage("small", _under_100),
            ],
            chunk_size=16,
        )
        out = graph.run(range(250))
        assert out == [n for n in range(250) if n % 2 == 0 and n < 100]
        evens, small = graph.metrics
        assert (evens.in_count, evens.out_count) == (250, 125)
        assert (small.in_count, small.out_count) == (125, 50)
        assert evens.chunks == 16  # ceil(250 / 16)
        assert evens.removal_fraction == 0.5
        assert graph.items_in == 250

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            StageGraph(
                [FunctionFilterStage("x", _is_even), FunctionFilterStage("x", _is_even)]
            )

    def test_run_resets_between_runs(self):
        graph = StageGraph([FunctionFilterStage("evens", _is_even)], chunk_size=8)
        graph.run(range(20))
        graph.run(range(20))
        assert graph.metrics[0].in_count == 20
        assert graph.items_in == 20

    def test_ingest_accumulates(self):
        graph = StageGraph([FunctionFilterStage("evens", _is_even)], chunk_size=8)
        first = graph.ingest(range(10))
        second = graph.ingest(range(10, 20))
        assert first + second == [n for n in range(20) if n % 2 == 0]
        assert graph.metrics[0].in_count == 20

    def test_to_text_mentions_stages(self):
        graph = StageGraph([FunctionFilterStage("evens", _is_even)])
        graph.run(range(10))
        assert "evens" in graph.to_text()


class TestParallelExecutor:
    def test_order_preserving_merge(self):
        stages = [FunctionFilterStage("evens", _is_even)]
        chunks = [list(range(i * 10, i * 10 + 10)) for i in range(12)]
        with ParallelExecutor(workers=2) as executor:
            results = [out for out, _ in executor.map_chunks(stages, iter(chunks))]
        serial = [out for out, _ in SerialExecutor().map_chunks(stages, chunks)]
        assert results == serial

    def test_graph_parallel_matches_serial(self):
        stages_fn = lambda: [
            FunctionFilterStage("evens", _is_even),
            FunctionFilterStage("small", _under_100),
        ]
        serial_out = StageGraph(stages_fn(), chunk_size=16).run(range(300))
        with ParallelExecutor(workers=2) as executor:
            parallel_graph = StageGraph(
                stages_fn(), chunk_size=16, executor=executor
            )
            parallel_out = parallel_graph.run(range(300))
        assert parallel_out == serial_out
        assert parallel_graph.metrics[0].in_count == 300

    def test_pipeline_parallel_output_identical(self, raw_files):
        sample = raw_files[:400]
        serial = CurationPipeline().run(sample)
        with ParallelExecutor(workers=2) as executor:
            parallel = CurationPipeline(chunk_size=64, executor=executor).run(sample)
        assert [f.file_id for f in serial.files] == [
            f.file_id for f in parallel.files
        ]


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("alpha", {"x": 1})
        assert store.load("alpha") == {"x": 1}
        assert "alpha" in store
        assert store.keys() == ["alpha"]

    def test_missing_returns_default(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("nope") is None
        assert store.load("nope", default=7) == 7

    def test_delete_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", 1)
        store.save("b", 2)
        assert store.delete("a")
        assert not store.delete("a")
        store.clear()
        assert store.keys() == []

    def test_invalid_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.save(bad, 1)

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", "old")
        store.save("k", "new")
        assert store.load("k") == "new"
        assert store.keys() == ["k"]


class TestGraphCheckpoint:
    def test_save_load_resume_equals_uninterrupted(self, raw_files, tmp_path):
        store = CheckpointStore(tmp_path)
        split = len(raw_files) // 2

        first = CurationPipeline().compile()
        first_out = first.ingest(raw_files[:split])
        first.save_checkpoint(store)

        resumed = CurationPipeline().compile()
        assert resumed.load_checkpoint(store)
        resumed_out = resumed.ingest(raw_files[split:])

        uninterrupted = CurationPipeline().compile()
        full_out = uninterrupted.run(raw_files)
        assert [f.file_id for f in first_out + resumed_out] == [
            f.file_id for f in full_out
        ]
        assert resumed.items_in == uninterrupted.items_in
        assert [
            (m.name, m.in_count, m.out_count) for m in resumed.metrics
        ] == [(m.name, m.in_count, m.out_count) for m in uninterrupted.metrics]

    def test_load_checkpoint_missing_is_noop(self, tmp_path):
        graph = CurationPipeline().compile()
        assert not graph.load_checkpoint(CheckpointStore(tmp_path))

    def test_in_memory_snapshot_supports_rollback(self, raw_files):
        graph = CurationPipeline().compile()
        first_out = graph.ingest(raw_files[:200])
        snapshot = graph.checkpoint_state()
        graph.ingest(raw_files[200:400])
        graph.restore_state(snapshot)
        # replaying the second batch after rollback matches a straight run
        replay_out = graph.ingest(raw_files[200:400])
        straight = CurationPipeline().compile()
        straight_out = straight.run(raw_files[:400])
        assert [f.file_id for f in first_out + replay_out] == [
            f.file_id for f in straight_out
        ]
        assert graph.items_in == straight.items_in

    def test_restore_rejects_mismatched_stage_set(self, raw_files, tmp_path):
        store = CheckpointStore(tmp_path)
        full = CurationPipeline().compile()
        full.ingest(raw_files[:50])
        full.save_checkpoint(store)
        slim = CurationPipeline(CurationConfig(dedup=False)).compile()
        with pytest.raises(ValueError):
            slim.load_checkpoint(store)

    def test_restored_dedup_stage_adopts_snapshot_params(self, raw_files):
        from repro.curation import CurationConfig as _Config

        source = CurationPipeline(
            _Config(dedup_threshold=0.7)
        ).compile()
        source.ingest(raw_files[:50])
        target = CurationPipeline(_Config(dedup_threshold=0.95)).compile()
        target.restore_state(source.checkpoint_state())
        dedup_stage = next(s for s in target.stages if s.name == "dedup")
        assert dedup_stage.threshold == 0.7
        assert dedup_stage.dedup.threshold == 0.7


class TestDedupStage:
    def test_batch_signatures_bit_identical(self, tiny_verilog_corpus):
        hasher = MinHasher()
        texts = tiny_verilog_corpus[:40] + ["", "   "]
        batched = hasher.signatures(texts)
        for text, signature in zip(texts, batched):
            assert (signature.values == hasher.signature(text).values).all()

    def test_stage_matches_deduplicate(self, raw_files):
        sample = raw_files[:500]
        reference = deduplicate([(f.file_id, f.content) for f in sample])
        stage = DedupStage()
        kept = []
        for start in range(0, len(sample), 128):
            kept.extend(stage.process(sample[start:start + 128]))
        assert [f.file_id for f in kept] == reference.kept_keys
        assert stage.dedup.result.removed == reference.removed

    def test_reset_clears_index(self, raw_files):
        stage = DedupStage()
        first = stage.process(raw_files[:50])
        stage.reset()
        again = stage.process(raw_files[:50])
        assert [f.file_id for f in first] == [f.file_id for f in again]

    def test_offer_batch_matches_sequential(self, tiny_verilog_corpus):
        items = [(i, t) for i, t in enumerate(tiny_verilog_corpus[:60])]
        batched = StreamingDeduplicator()
        sequential = StreamingDeduplicator()
        kept_batch = batched.offer_batch(items)
        kept_seq = [k for k, t in items if sequential.offer(k, t)]
        assert kept_batch == kept_seq
        assert batched.result.removed == sequential.result.removed


class TestEnginePipelineEquivalence:
    """The facade must reproduce the seed loop bit-for-bit."""

    def _seed_serial(self, files, config):
        funnel = FunnelReport()
        current = list(files)
        funnel.record("extracted", len(current), len(current))
        if config.license_check:
            before = len(current)
            current = LicenseFilter(
                allow_unlicensed=config.allow_unlicensed
            ).apply(current)
            funnel.record("license_filter", before, len(current))
        if config.max_file_chars is not None:
            before = len(current)
            current = [
                f for f in current if len(f.content) <= config.max_file_chars
            ]
            funnel.record("length_cap", before, len(current))
        if config.dedup:
            before = len(current)
            result = deduplicate(
                [(f.file_id, f.content) for f in current],
                threshold=config.dedup_threshold,
                seed=config.seed,
            )
            kept = set(result.kept_keys)
            current = [f for f in current if f.file_id in kept]
            funnel.record("dedup", before, len(current))
        if config.copyright_check:
            before = len(current)
            current = CopyrightFilter().apply(current)
            funnel.record("copyright_filter", before, len(current))
        if config.syntax_check:
            before = len(current)
            current = [f for f in current if check_syntax(f.content).ok]
            funnel.record("syntax_check", before, len(current))
        return current, funnel

    @pytest.mark.parametrize(
        "config",
        [
            CurationConfig(),
            CurationConfig(max_file_chars=1500),
            CurationConfig(dedup=False, syntax_check=False),
            CurationConfig(license_check=False, allow_unlicensed=True),
        ],
        ids=["default", "length-cap", "no-dedup", "no-license"],
    )
    def test_identical_to_seed_loop(self, raw_files, config):
        expected_files, expected_funnel = self._seed_serial(raw_files, config)
        dataset = CurationPipeline(config, chunk_size=200).run(raw_files)
        assert [f.file_id for f in expected_files] == [
            f.file_id for f in dataset.files
        ]
        assert [f.content for f in expected_files] == [
            f.content for f in dataset.files
        ]
        assert [
            (s.name, s.in_count, s.out_count) for s in expected_funnel.stages
        ] == [(s.name, s.in_count, s.out_count) for s in dataset.funnel.stages]

    def test_accepts_plain_iterators(self, raw_files):
        sample = raw_files[:200]
        from_iter = CurationPipeline().run(iter(sample))
        from_list = CurationPipeline().run(sample)
        assert [f.file_id for f in from_iter.files] == [
            f.file_id for f in from_list.files
        ]
        assert from_iter.funnel.initial_count == len(sample)

    def test_zero_length_cap_keeps_only_empty_files(self, raw_files):
        config = CurationConfig(
            max_file_chars=0, dedup=False, syntax_check=False,
            copyright_check=False,
        )
        dataset = CurationPipeline(config).run(raw_files[:100])
        assert dataset.files == []
        assert dataset.funnel.stage("length_cap").out_count == 0

    def test_chunk_size_invariance(self, raw_files):
        small = CurationPipeline(chunk_size=64).run(raw_files)
        large = CurationPipeline(chunk_size=100_000).run(raw_files)
        assert [f.file_id for f in small.files] == [
            f.file_id for f in large.files
        ]
        assert [
            (s.name, s.in_count, s.out_count) for s in small.funnel.stages
        ] == [(s.name, s.in_count, s.out_count) for s in large.funnel.stages]


class TestIncrementalCurator:
    def test_batches_equal_full_run(self, raw_files):
        curator = IncrementalCurator()
        third = len(raw_files) // 3
        for start in range(0, len(raw_files), third):
            curator.ingest(raw_files[start:start + third])
        full = CurationPipeline().run(raw_files)
        assert [f.file_id for f in curator.kept_files] == [
            f.file_id for f in full.files
        ]
        assert [
            (s.name, s.in_count, s.out_count) for s in curator.funnel.stages
        ] == [(s.name, s.in_count, s.out_count) for s in full.funnel.stages]

    def test_dataset_snapshot(self, raw_files):
        curator = IncrementalCurator()
        curator.ingest(raw_files[:300])
        dataset = curator.dataset(name="inc")
        assert dataset.name == "inc"
        assert dataset.rows == len(curator.kept_files)
        assert dataset.funnel.initial_count == 300

    def test_save_and_resume(self, raw_files, tmp_path):
        store = CheckpointStore(tmp_path)
        split = len(raw_files) // 2

        original = IncrementalCurator()
        original.ingest(raw_files[:split])
        original.save(store)

        resumed = IncrementalCurator()
        assert resumed.load(store)
        resumed.ingest(raw_files[split:])

        full = CurationPipeline().run(raw_files)
        assert [f.file_id for f in resumed.kept_files] == [
            f.file_id for f in full.files
        ]
        assert resumed.batches_ingested == 2

    def test_load_missing_returns_false(self, tmp_path):
        assert not IncrementalCurator().load(CheckpointStore(tmp_path))

    def test_freeset_builder_incremental_curator(self, world):
        from repro.core.freeset import FreeSetBuilder

        builder = FreeSetBuilder(world=world)
        files, _ = builder.scrape()
        curator = builder.incremental_curator()
        curator.ingest(files)
        assert [f.file_id for f in curator.kept_files] == [
            f.file_id for f in builder.build().dataset.files
        ]


class TestStageMetrics:
    def test_throughput_and_reset(self):
        metric = StageMetrics("x")
        metric.record_chunk(100, 60, 0.5)
        metric.record_chunk(50, 40, 0.5)
        assert metric.in_count == 150
        assert metric.out_count == 100
        assert metric.removed == 50
        assert metric.items_per_second == pytest.approx(150.0)
        metric.reset()
        assert metric.in_count == 0
        assert metric.items_per_second == 0.0
