"""Equivalence tests: the regex lexer must match the reference lexer.

``lex_fast`` underpins the engine's syntax stage, whose output must be
byte-identical to the seed pipeline's — so these tests assert *exact*
token equality (kind, text, line, column) on corpus files and verdict
equality on a gallery of adversarial inputs.
"""

import pytest

from repro.errors import LexError
from repro.verilog import check_syntax, check_syntax_fast, lex, lex_fast

#: Inputs covering every token class and every reference-lexer error path.
ADVERSARIAL = [
    "",
    "   \t\r\n  ",
    "// line comment only",
    "/* block */",
    "/* unterminated",
    "a /* nested /* still one */ tail",
    "module m; endmodule",
    "`timescale 1ns/1ps\nmodule m; endmodule",
    "`define FOO \\\n  multi \\\n  line\nmodule m; endmodule",
    "`",
    "`\\\n",
    "wire [7:0] x = 8'hFF;",
    "x = 'b1010; y = 'd_; z = 12'sb01_zx?;",
    "v = 1_000.5; w = 1.; u = 16'hDEAD_beef;",
    "1'b0 2'o7 3'd9 4'hA 5'sHff",
    "12'",
    "12'q",
    "'sb1",
    "9'",
    "12.34.56",
    "$display(\"esc \\n \\t \\\\ \\\" \\q done\")",
    "$",
    "a $ b",
    "\"unterminated",
    "\"newline\nin string\"",
    "\"trailing backslash \\",
    '"escaped \\\n newline" wire w;',
    '"two \\\n escaped \\\n newlines" x; // and\ny',
    "x <= y; a <<< b; c >>> d; e === f; g !== h;",
    "i -> j; k +: l; m -: n; o ** p;",
    "~& ~| ~^ ^~ && || == != < > <= >=",
    "\\escaped_ident_unsupported",
    "x\x0cy",
    "_leading $sys0 trailing$",
    "{a, b[3:0], {2{c}}} @ # ;",
]


class TestTokenEquivalence:
    @pytest.mark.parametrize("source", ADVERSARIAL)
    def test_adversarial_inputs(self, source):
        try:
            reference = lex(source)
        except LexError:
            with pytest.raises(LexError):
                lex_fast(source)
            return
        assert lex_fast(source) == reference

    def test_generated_corpus_identical(self, tiny_verilog_corpus):
        for source in tiny_verilog_corpus:
            assert lex_fast(source) == lex(source)

    def test_world_corpus_identical(self, raw_files):
        for record in raw_files[:400]:
            try:
                reference = lex(record.content)
            except LexError:
                with pytest.raises(LexError):
                    lex_fast(record.content)
                continue
            assert lex_fast(record.content) == reference

    def test_positions_track_lines_and_columns(self):
        tokens = lex_fast("module m;\n  wire x;\nendmodule\n")
        reference = lex("module m;\n  wire x;\nendmodule\n")
        assert [(t.line, t.col) for t in tokens] == [
            (t.line, t.col) for t in reference
        ]


class TestVerdictEquivalence:
    def test_corpus_verdicts(self, raw_files):
        for record in raw_files[:300]:
            fast = check_syntax_fast(record.content)
            slow = check_syntax(record.content)
            assert fast.ok == slow.ok
            assert fast.module_names == slow.module_names

    @pytest.mark.parametrize(
        "source",
        [
            "module m; endmodule",
            "module m(input a; endmodule",   # parse error
            "module m; /* unterminated",     # lex error
            "module m; endmodule module m; endmodule",  # lint: duplicate
            "not verilog at all",
        ],
    )
    def test_error_paths(self, source):
        assert check_syntax_fast(source).ok == check_syntax(source).ok
