"""Tests and properties for bit-vector helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.values import (
    bit_length_for,
    concat,
    from_signed,
    mask,
    reduce_and,
    reduce_or,
    reduce_xor,
    replicate,
    to_signed,
)


class TestMask:
    def test_basic(self):
        assert mask(0x1FF, 8) == 0xFF

    def test_zero_width(self):
        assert mask(123, 0) == 0

    def test_negative_wraps(self):
        assert mask(-1, 4) == 0xF
        assert mask(-2, 8) == 0xFE


class TestSigned:
    def test_positive(self):
        assert to_signed(5, 8) == 5

    def test_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    @given(st.integers(-128, 127))
    def test_roundtrip_8bit(self, value):
        assert to_signed(from_signed(value, 8), 8) == value

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**64))
    def test_to_signed_in_range(self, width, value):
        signed = to_signed(value, width)
        assert -(1 << (width - 1)) <= signed < (1 << (width - 1))


class TestClog2:
    def test_values(self):
        assert bit_length_for(0) == 0
        assert bit_length_for(1) == 0
        assert bit_length_for(2) == 1
        assert bit_length_for(8) == 3
        assert bit_length_for(9) == 4

    @given(st.integers(2, 1 << 20))
    def test_covers_count(self, count):
        width = bit_length_for(count)
        assert (1 << width) >= count
        assert (1 << (width - 1)) < count


class TestReplicateConcat:
    def test_replicate(self):
        assert replicate(0b10, 2, 3) == 0b101010

    def test_replicate_zero_times(self):
        assert replicate(3, 2, 0) == 0

    def test_concat_msb_first(self):
        assert concat([(0b1, 1), (0b00, 2), (0b11, 2)]) == 0b10011

    @given(st.integers(0, 255), st.integers(1, 6))
    def test_replicate_equals_concat(self, value, times):
        parts = [(value, 8)] * times
        assert replicate(value, 8, times) == concat(parts)


class TestReductions:
    def test_reduce_and(self):
        assert reduce_and(0xFF, 8) == 1
        assert reduce_and(0xFE, 8) == 0

    def test_reduce_or(self):
        assert reduce_or(0, 8) == 0
        assert reduce_or(1, 8) == 1

    def test_reduce_xor(self):
        assert reduce_xor(0b1011, 4) == 1
        assert reduce_xor(0b1010, 4) == 0

    @given(st.integers(0, 2**16 - 1))
    def test_xor_is_parity(self, value):
        assert reduce_xor(value, 16) == bin(value).count("1") % 2
