"""Fault-injection suite for the cluster coordinator/worker subsystem.

Every recovery path the coordinator promises is driven deterministically
through the worker fault hooks (``die_on_lease``, ``hang_on_lease``,
``backend_version``): worker death mid-chunk, heartbeat-timeout
requeue, stale-fingerprint rejection at handshake, coordinator loss
resumed from checkpoint, and sticky lockstep-group routing — each
asserting the cluster run stays verdict-identical to a serial one,
candidate for candidate.  The local-pool analogue (``WorkerDiedError``
plus one requeue in :class:`ParallelExecutor`) is covered at the end;
hard worker/coordinator deaths are armed through
:mod:`repro.testing.faults` (``pool.chunk``, ``checkpoint.save``)
rather than bespoke ``os._exit`` stages.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass

import pytest

from repro.engine import (
    CheckpointStore,
    ClusterExecutor,
    MapStage,
    ParallelExecutor,
    SerialExecutor,
    StaleWorkerError,
    WorkerDiedError,
    iter_chunks,
    make_executor,
)
from repro.engine.cluster import (
    PROTOCOL_VERSION,
    ChunkLease,
    Heartbeat,
    Hello,
    PlanHandshake,
    ProtocolError,
    Shutdown,
    decode,
    default_route_key,
    encode,
    plan_fingerprint,
)
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm import LanguageModel
from repro.testing import faults
from repro.vereval import EvalConfig, build_problem_set


class _DoubleStage(MapStage):
    name = "double"
    parallel_safe = True

    def map_item(self, item):
        return item * 2


@dataclass
class _Unit:
    model_name: str
    task_id: str
    unit_id: str
    value: int


class _UnitStage(MapStage):
    name = "unit"
    parallel_safe = True

    def map_item(self, item):
        return _Unit(item.model_name, item.task_id, item.unit_id,
                     item.value * 2)


def _make_plan(n_problems=4, n_samples=4, chunk_size=4):
    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=n_problems),
        EvalConfig(n_samples=n_samples, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )
    return EvalPlan([model], [task], chunk_size=chunk_size)


def _verdicts(run):
    return [
        (r.model_name, r.task_id, r.unit_id, r.sample_index, r.passed,
         r.completion)
        for r in run.records
    ]


@pytest.fixture(scope="module")
def plan():
    return _make_plan()


@pytest.fixture(scope="module")
def serial_run(plan):
    return plan.run()


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_roundtrip_every_message(self):
        messages = [
            Hello(worker_id=3, pid=77),
            PlanHandshake(plan_id=1, fingerprint="abc",
                          stage_blob=b"blob", obs_mode="trace",
                          obs_dir="/tmp/x"),
            ChunkLease(lease_id=9, plan_id=1, chunk_index=4,
                       items=[1, 2, 3]),
            Heartbeat(worker_id=3),
            Shutdown(reason="done"),
        ]
        for message in messages:
            assert decode(encode(message)) == message

    def test_version_mismatch_rejected(self):
        wire = pickle.loads(encode(Heartbeat(worker_id=0)))
        stale = pickle.dumps((PROTOCOL_VERSION + 1, wire[1], wire[2]))
        with pytest.raises(ProtocolError, match="version"):
            decode(stale)

    def test_unknown_type_rejected(self):
        bogus = pickle.dumps((PROTOCOL_VERSION, "not_a_message", {}))
        with pytest.raises(ProtocolError, match="unknown"):
            decode(bogus)

    def test_unknown_fields_rejected(self):
        bogus = pickle.dumps(
            (PROTOCOL_VERSION, "heartbeat",
             {"worker_id": 0, "extra": True})
        )
        with pytest.raises(ProtocolError, match="bad fields"):
            decode(bogus)

    def test_encode_rejects_non_messages(self):
        with pytest.raises(ProtocolError):
            encode({"type": "hello"})

    def test_fingerprint_covers_backend_version(self):
        stages = [_DoubleStage()]
        blob = pickle.dumps(stages)
        assert plan_fingerprint(stages, blob) == plan_fingerprint(
            stages, blob
        )
        assert plan_fingerprint(
            stages, blob, backend_version=-1
        ) != plan_fingerprint(stages, blob)
        assert plan_fingerprint(stages, b"other") != plan_fingerprint(
            stages, blob
        )


# -- routing ----------------------------------------------------------------


class TestRouting:
    def test_default_route_key(self):
        same = [_Unit("m", "t", "u0", i) for i in range(3)]
        mixed = same + [_Unit("m", "t", "u1", 9)]
        assert default_route_key(same) == ("m", "t", "u0")
        assert default_route_key(mixed) is None
        assert default_route_key([1, 2, 3]) is None
        assert default_route_key([]) is None

    def test_lockstep_groups_land_on_one_worker(self):
        # Two chunks per unit: every chunk of a unit must reuse the
        # worker its first chunk landed on (hot sim cache).
        items = [
            _Unit("m", "t", f"u{unit}", sample)
            for unit in range(6)
            for sample in range(8)
        ]
        chunks = list(iter_chunks(items, 4))
        serial = [
            out for out, _ in SerialExecutor().map_chunks(
                [_UnitStage()], chunks
            )
        ]
        with ClusterExecutor(workers=3, heartbeat_s=0.2) as executor:
            clustered = [
                out for out, _ in executor.map_chunks(
                    [_UnitStage()], chunks
                )
            ]
            log = list(executor.lease_log)
        assert clustered == serial
        workers_by_key = {}
        for _index, key, worker_id in log:
            assert key is not None
            workers_by_key.setdefault(key, set()).add(worker_id)
        assert len(workers_by_key) == 6
        for key, workers in workers_by_key.items():
            assert len(workers) == 1, (key, workers)
        # and the groups really spanned several leases each
        assert len(log) == len(chunks) == 12


# -- fault injection --------------------------------------------------------


class TestClusterFaults:
    def test_two_worker_run_matches_serial(self, plan, serial_run):
        with ClusterExecutor(workers=2, heartbeat_s=0.2) as executor:
            clustered = plan.run(executor=executor)
        assert _verdicts(clustered) == _verdicts(serial_run)
        counters = clustered.telemetry.counters
        assert counters.get("cluster.leases", 0) >= 2
        assert counters.get("cluster.chunks_done") == 4
        assert counters.get("cluster.items_out") == len(serial_run.records)

    def test_worker_killed_mid_chunk_requeues(self, plan, serial_run):
        executor = ClusterExecutor(
            workers=2, heartbeat_s=0.2, timeout_s=2.0,
            worker_faults={1: {"die_on_lease": 2}},
        )
        with executor:
            clustered = plan.run(executor=executor)
            progress = executor.progress()
        assert _verdicts(clustered) == _verdicts(serial_run)
        assert progress.worker_deaths == 1
        assert progress.requeues >= 1
        assert progress.workers_alive == 1

    def test_heartbeat_timeout_requeues(self, plan, serial_run):
        # The hung worker stops heartbeating but keeps its socket open:
        # only the timeout sweep can reclaim its leases.
        executor = ClusterExecutor(
            workers=2, heartbeat_s=0.1, timeout_s=0.5,
            worker_faults={0: {"hang_on_lease": 1}},
        )
        with executor:
            clustered = plan.run(executor=executor)
            progress = executor.progress()
        assert _verdicts(clustered) == _verdicts(serial_run)
        assert progress.heartbeat_timeouts == 1
        assert progress.requeues >= 1

    def test_stale_worker_rejected_at_handshake(self, plan, serial_run):
        executor = ClusterExecutor(
            workers=2, heartbeat_s=0.2,
            worker_faults={0: {"backend_version": -1}},
        )
        with executor:
            clustered = plan.run(executor=executor)
            progress = executor.progress()
        assert _verdicts(clustered) == _verdicts(serial_run)
        assert progress.workers_rejected == 1
        assert progress.worker_deaths == 0

    def test_all_workers_stale_raises(self):
        chunks = list(iter_chunks(range(8), 4))
        with pytest.raises(StaleWorkerError):
            with ClusterExecutor(
                workers=2, heartbeat_s=0.2,
                worker_faults={
                    0: {"backend_version": -1},
                    1: {"backend_version": -1},
                },
            ) as executor:
                list(executor.map_chunks([_DoubleStage()], chunks))

    def test_requeue_budget_exhausted_raises(self):
        # Both workers die on their first lease and the budget is zero:
        # the failure must name the chunk and the stage run, typed.
        chunks = list(iter_chunks(range(8), 4))
        with pytest.raises(WorkerDiedError, match=r"\[double\]"):
            with ClusterExecutor(
                workers=2, heartbeat_s=0.2, timeout_s=2.0,
                max_requeues=0,
                worker_faults={
                    0: {"die_on_lease": 1},
                    1: {"die_on_lease": 1},
                },
            ) as executor:
                list(executor.map_chunks([_DoubleStage()], chunks))


# -- coordinator loss + resume ----------------------------------------------


_RESUME_TAG = "cluster-resume"


def _resume_child_main(root: str) -> None:
    """Run the plan on a cluster, dying hard mid-run like a lost host.

    The death is an armed ``checkpoint.save`` fault, not a monkeypatched
    store: the 5th save (the third block's segment) hard-exits with
    :data:`faults.EXIT_CODE` *before* any bytes move, leaving saves 1-4
    (two complete segment+head pairs) on disk for the parent to resume.
    """
    os.environ["REPRO_CLUSTER_WORKERS"] = "2"
    os.environ[faults.ENV_VAR] = "checkpoint.save:exit:5"
    _make_plan().run(
        store=CheckpointStore(root), tag=_RESUME_TAG, checkpoint_every=4,
        executor="cluster",
    )
    os._exit(1)  # finishing means the kill never fired


class TestCoordinatorLossResume:
    def test_killed_coordinator_resumes_from_checkpoint(
        self, plan, serial_run, tmp_path, monkeypatch
    ):
        root = str(tmp_path / "ckpt")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_resume_child_main, args=(root,))
        child.start()
        child.join(120)
        assert child.exitcode == faults.EXIT_CODE

        store = CheckpointStore(root)
        head = store.load(_RESUME_TAG)
        assert head is not None
        # 16 specs / checkpoint_every=4 would be 4 segments; the child
        # died mid-run, so the head references only a prefix.
        assert 0 < head["segments"] < 4

        monkeypatch.setenv("REPRO_CLUSTER_WORKERS", "2")
        resumed = plan.run(
            store=store, tag=_RESUME_TAG, checkpoint_every=4,
            executor="cluster",
        )
        assert _verdicts(resumed) == _verdicts(serial_run)
        assert store.load(_RESUME_TAG)["segments"] == 4

    def test_progress_streams_during_run(self, plan, serial_run):
        events = []
        result = plan.run(on_progress=events.append)
        assert _verdicts(result) == _verdicts(serial_run)
        assert [e.done for e in events] == [4, 8, 12, 16]
        assert all(e.total == 16 for e in events)
        assert events[-1].passed == sum(
            1 for r in serial_run.records if r.passed
        )
        assert events[-1].frac == 1.0


# -- the local-pool analogue ------------------------------------------------


class TestPoolWorkerDied:
    """Pool-worker death driven through the ``pool.chunk`` fault point.

    These used to ride on a stage that ``os._exit``-ed when it saw item
    13 — a crash wired to incidental data, racing over which worker drew
    which chunk.  The armed fault is explicit instead: forked pool
    workers inherit ``REPRO_FAULTS`` and count their own activations, so
    "one worker dies once" is the once-marker, and "every worker always
    dies" is ``nth=0``.
    """

    def test_transient_death_requeues_once(self, tmp_path, monkeypatch):
        marker = str(tmp_path / "died-once")
        monkeypatch.setenv(faults.ENV_VAR, f"pool.chunk:exit:1:{marker}")
        chunks = list(iter_chunks(range(20), 5))
        serial = [
            out for out, _ in SerialExecutor().map_chunks(
                [_DoubleStage()], chunks
            )
        ]
        with ParallelExecutor(workers=2) as executor:
            outputs = [
                out
                for out, _ in executor.map_chunks([_DoubleStage()], chunks)
            ]
        assert outputs == serial
        # the marker proves the injected death actually fired
        assert os.path.exists(marker)

    def test_persistent_death_raises_typed_error(self, monkeypatch):
        # nth=0, no marker: every worker dies on every chunk it touches,
        # so the retry budget (one requeue) runs dry on the first chunk.
        monkeypatch.setenv(faults.ENV_VAR, "pool.chunk:exit:0")
        chunks = list(iter_chunks(range(20), 5))
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(WorkerDiedError) as info:
                list(executor.map_chunks([_DoubleStage()], chunks))
        assert info.value.chunk_index == 0
        assert "double" in info.value.stage
        assert info.value.attempts == 2


# -- satellites -------------------------------------------------------------


class TestMakeExecutor:
    def test_specs_resolve(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor("pool", workers=2)
        assert isinstance(pool, ParallelExecutor) and pool.workers == 2
        cluster = make_executor("cluster", workers=2)
        assert isinstance(cluster, ClusterExecutor)
        assert cluster.workers == 2  # not started: no processes yet

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("hyperdrive")


class TestCheckpointDurability:
    def test_save_leaves_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        store.save("alpha", {"x": 1})
        assert store.load("alpha") == {"x": 1}
        leftovers = [
            name for name in os.listdir(store.root)
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_failed_pickle_preserves_old_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        store.save("alpha", {"x": 1})
        with pytest.raises(Exception):
            store.save("alpha", lambda: None)  # unpicklable
        assert store.load("alpha") == {"x": 1}
