"""The documentation executes: README/docs code blocks and API doctests.

Runs :mod:`tools.check_docs` (the same entry point CI uses) so the
quickstart, the architecture examples, and the simulation-API docstring
examples fail tier-1 the moment they stop matching the code.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_readme_and_docs_code_blocks_execute():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    blocks = check_docs.extract_blocks(REPO_ROOT / "README.md")
    assert blocks, "README.md has no python code blocks"
    # The full check runs in a subprocess so doc blocks cannot leak
    # state (default-backend switches, caches) into the test session.
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        timeout=600,
    )
    assert result.returncode == 0, (
        f"docs check failed:\n{result.stdout}\n{result.stderr}"
    )


def test_extractor_sees_fences_and_languages(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    doc = tmp_path / "doc.md"
    doc.write_text(
        "intro\n```python\nx = 1\n```\n"
        "```bash\nexit 1\n```\n"
        "```python\ny = 2\n```\n"
    )
    blocks = check_docs.extract_blocks(doc)
    assert [code.strip() for _, code in blocks] == ["x = 1", "y = 2"]
    assert [lineno for lineno, _ in blocks] == [3, 9]
