"""Every generator family must parse, elaborate, simulate, and (for a
sample of families) match an independent Python reference model."""

import pytest

from repro.sim import Testbench, elaborate, random_stimulus
from repro.utils.rng import DeterministicRNG
from repro.vgen import FAMILIES, generate_family, random_style
from repro.vgen.base import Style
from repro.verilog import check_syntax, parse_source

ALL_FAMILIES = sorted(FAMILIES)


def make(family, seed=0, style=None):
    return generate_family(family, DeterministicRNG(seed).fork(family), style)


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestEveryFamily:
    def test_syntax_valid(self, family):
        for seed in range(4):
            module = make(family, seed)
            report = check_syntax(module.source)
            assert report.ok, (family, seed, report.errors)

    def test_interface_matches_elaboration(self, family):
        module = make(family, seed=1)
        design = elaborate(parse_source(module.source), module.name)
        declared_inputs = {s.name: s.width for s in design.inputs}
        declared_outputs = {s.name: s.width for s in design.outputs}
        iface = module.interface
        for name, width in iface.inputs:
            assert declared_inputs.get(name) == width, (family, name)
        for name, width in iface.outputs:
            assert declared_outputs.get(name) == width, (family, name)
        if iface.clock:
            assert iface.clock in declared_inputs
        if iface.reset:
            assert iface.reset in declared_inputs

    def test_simulates_under_random_stimulus(self, family):
        module = make(family, seed=2)
        design = elaborate(parse_source(module.source), module.name)
        bench = Testbench(
            design,
            clock=module.interface.clock,
            reset=module.interface.reset,
            reset_active_high=module.interface.reset_active_high,
        )
        bench.apply_reset()
        for vector in random_stimulus(design, 16, seed=3):
            outputs = bench.step(vector)
            for name, value in outputs.items():
                assert value >= 0

    def test_description_is_prose(self, family):
        module = make(family, seed=3)
        assert module.description.endswith(".")
        assert len(module.description.split()) >= 8

    def test_header_prompt_is_prefix(self, family):
        module = make(family, seed=4)
        header = module.header_prompt()
        assert module.source.startswith(header.rstrip("\n"))
        assert header.rstrip().endswith(");")

    def test_deterministic_for_same_seed(self, family):
        assert make(family, seed=5).source == make(family, seed=5).source

    def test_styles_vary_surface_not_validity(self, family):
        rng = DeterministicRNG(77).fork(family)
        a = generate_family(family, rng.fork(0), Style(indent="  ", comment="none", signal_flavor=0))
        b = generate_family(family, rng.fork(0), Style(indent="    ", comment="banner", signal_flavor=2))
        assert check_syntax(a.source).ok
        assert check_syntax(b.source).ok


class TestGoldenBehaviour:
    """Spot-check selected families against Python reference models."""

    def _bench(self, module):
        design = elaborate(parse_source(module.source), module.name)
        bench = Testbench(
            design,
            clock=module.interface.clock,
            reset=module.interface.reset,
            reset_active_high=module.interface.reset_active_high,
        )
        bench.apply_reset()
        return design, bench

    def test_adder(self):
        module = make("adder", seed=11)
        width = module.params["width"]
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 30, seed=4):
            out = bench.step(vector)
            total = vector["a"] + vector["b"] + vector.get("cin", 0)
            assert out["sum"] == total % (1 << width)
            if module.params["has_cout"]:
                assert out["cout"] == total >> width

    def test_comparator(self):
        module = make("comparator", seed=12)
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 30, seed=5):
            out = bench.step(vector)
            assert out["lt"] == int(vector["a"] < vector["b"])
            assert out["eq"] == int(vector["a"] == vector["b"])
            assert out["gt"] == int(vector["a"] > vector["b"])

    def test_parity(self):
        module = make("parity", seed=13)
        even = module.params["even"]
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 30, seed=6):
            out = bench.step(vector)
            ones = bin(vector["data"]).count("1")
            expected = (ones + 1) % 2 if even else ones % 2
            assert out["parity"] == expected

    def test_gray(self):
        module = make("gray", seed=14)
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 30, seed=7):
            out = bench.step(vector)
            assert out["gray"] == vector["bin"] ^ (vector["bin"] >> 1)

    def test_popcount(self):
        module = make("popcount", seed=15)
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 30, seed=8):
            out = bench.step(vector)
            assert out["count"] == bin(vector["data"]).count("1")

    def test_priority_encoder(self):
        module = make("priority_encoder", seed=16)
        design, bench = self._bench(module)
        for vector in random_stimulus(design, 40, seed=9):
            out = bench.step(vector)
            value = vector["in"]
            if value == 0:
                assert out["valid"] == 0
                assert out["y"] == 0
            else:
                assert out["valid"] == 1
                assert out["y"] == value.bit_length() - 1

    def test_counter_reference(self):
        module = make("counter", seed=17)
        width = module.params["width"]
        direction = module.params["direction"]
        design, bench = self._bench(module)
        expected = 0
        for vector in random_stimulus(design, 40, seed=10):
            out = bench.step(vector)
            if module.params["has_load"] and vector.get("load"):
                expected = vector["din"]
            elif vector["en"]:
                if direction == 0:
                    expected = (expected + 1) % (1 << width)
                elif direction == 1:
                    expected = (expected - 1) % (1 << width)
                else:
                    delta = 1 if vector.get("up") else -1
                    expected = (expected + delta) % (1 << width)
            assert out["count"] == expected

    def test_mod_counter_wraps_and_flags(self):
        module = make("mod_counter", seed=18)
        modulo = module.params["modulo"]
        design, bench = self._bench(module)
        expected = 0
        for _ in range(2 * modulo + 3):
            out = bench.step({"en": 1})
            expected = (expected + 1) % modulo
            assert out["count"] == expected
            assert out["tc"] == int(expected == modulo - 1)

    def test_shift_register(self):
        module = make("shift_register", seed=19)
        width = module.params["width"]
        msb_first = module.params["msb_first"]
        design, bench = self._bench(module)
        state = 0
        for vector in random_stimulus(design, 40, seed=11):
            out = bench.step(vector)
            if vector["en"]:
                if msb_first:
                    state = ((state << 1) | vector["sin"]) & ((1 << width) - 1)
                else:
                    state = (state >> 1) | (vector["sin"] << (width - 1))
            assert out["q"] == state

    def test_sequence_detector(self):
        module = make("sequence_detector", seed=20)
        length = module.params["length"]
        pattern = module.params["pattern"]
        design, bench = self._bench(module)
        history = 0
        for vector in random_stimulus(design, 60, seed=12):
            out = bench.step(vector)
            history = ((history << 1) | vector["din"]) & ((1 << length) - 1)
            assert out["found"] == int(history == pattern)

    def test_accumulator(self):
        module = make("accumulator", seed=21)
        width = module.params["width"]
        design, bench = self._bench(module)
        acc = 0
        for vector in random_stimulus(design, 30, seed=13):
            out = bench.step(vector)
            if vector["en"]:
                acc = (acc + vector["din"]) % (1 << width)
            assert out["acc_out"] == acc

    def test_saturating_counter(self):
        module = make("saturating_counter", seed=22)
        width = module.params["width"]
        top = (1 << width) - 1
        design, bench = self._bench(module)
        level = 0
        for vector in random_stimulus(design, 50, seed=14):
            out = bench.step(vector)
            if vector["inc"] and not vector["dec"]:
                level = min(level + 1, top)
            elif vector["dec"] and not vector["inc"]:
                level = max(level - 1, 0)
            assert out["level"] == level

    def test_fifo_order_and_flags(self):
        module = make("fifo", seed=23)
        depth = module.params["depth"]
        design, bench = self._bench(module)
        model = []
        for vector in random_stimulus(design, 80, seed=15):
            push, pop = vector["push"], vector["pop"]
            pre_full = len(model) == depth
            pre_empty = not model
            out = bench.step(vector)
            if push and not pre_full:
                model.append(vector["din"])
            if pop and not pre_empty:
                model.pop(0)
            assert out["count"] == len(model)
            assert out["full"] == int(len(model) == depth)
            assert out["empty"] == int(not model)
            if model:
                assert out["dout"] == model[0]

    def test_register_file(self):
        module = make("register_file", seed=24)
        depth = module.params["depth"]
        design, bench = self._bench(module)
        model = [0] * depth
        for vector in random_stimulus(design, 40, seed=16):
            out = bench.step(vector)
            if vector["we"]:
                model[vector["waddr"]] = vector["wdata"]
            assert out["rdata"] == model[vector["raddr"]]

    def test_traffic_fsm_cycle(self):
        module = make("traffic_fsm", seed=25)
        g = module.params["green"]
        y = module.params["yellow"]
        r = module.params["red"]
        design, bench = self._bench(module)
        schedule = [0b001] * g + [0b010] * y + [0b100] * r
        # after reset the FSM is at the start of green
        for cycle in range(2 * len(schedule)):
            lights = bench.sample()["lights"]
            assert lights == schedule[cycle % len(schedule)], cycle
            bench.step({})

    def test_lfsr_is_maximal_length(self):
        module = make("lfsr", seed=26)
        width = module.params["width"]
        design, bench = self._bench(module)
        seen = set()
        for _ in range(min((1 << width) - 1, 300)):
            out = bench.step({"en": 1})
            assert out["value"] != 0  # all-zero state is unreachable
            seen.add(out["value"])
        expected = min((1 << width) - 1, 300)
        assert len(seen) == expected  # no early repetition

    def test_ring_counter_one_hot(self):
        module = make("onehot_rotator", seed=27)
        design, bench = self._bench(module)
        for _ in range(20):
            out = bench.step({"en": 1})
            assert bin(out["q"]).count("1") == 1


class TestRandomStyle:
    def test_random_style_fields(self):
        style = random_style(DeterministicRNG(1))
        assert style.comment in ("none", "short", "banner")
        assert style.indent in ("  ", "    ", "   ")
