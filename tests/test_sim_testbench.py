"""Tests for the testbench and equivalence-check harness."""

import pytest

from repro.sim import (
    Testbench,
    elaborate,
    equivalence_check,
    random_stimulus,
    set_default_backend,
)
from repro.verilog import parse_source


@pytest.fixture(
    scope="module", params=["compiled", "interp", "batch"], autouse=True
)
def sim_backend(request):
    """Run the harness tests against all three execution backends."""
    previous = set_default_backend(request.param)
    yield request.param
    set_default_backend(previous)

ALU = """
module alu(input [7:0] a, input [7:0] b, input [1:0] op,
           output reg [7:0] y);
    always @(*) begin
        case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a & b;
            default: y = a | b;
        endcase
    end
endmodule
"""

COUNTER = """
module counter(input clk, input rst, input en, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (en) q <= q + 1'b1;
    end
endmodule
"""


def design(source, top):
    return elaborate(parse_source(source), top)


class TestRandomStimulus:
    def test_respects_widths(self):
        d = design(ALU, "alu")
        vectors = random_stimulus(d, 50, seed=1)
        assert len(vectors) == 50
        for vector in vectors:
            assert set(vector) == {"a", "b", "op"}
            assert 0 <= vector["a"] < 256
            assert 0 <= vector["op"] < 4

    def test_deterministic_per_seed(self):
        d = design(ALU, "alu")
        assert random_stimulus(d, 10, seed=3) == random_stimulus(d, 10, seed=3)
        assert random_stimulus(d, 10, seed=3) != random_stimulus(d, 10, seed=4)

    def test_excludes_control_signals(self):
        d = design(COUNTER, "counter")
        vectors = random_stimulus(d, 5, seed=0)
        assert all(set(v) == {"en"} for v in vectors)


class TestEquivalence:
    def test_identical_designs_equivalent(self):
        g = design(ALU, "alu")
        c = design(ALU, "alu")
        stim = random_stimulus(g, 40, seed=9)
        assert equivalence_check(g, c, stim, clock=None).equivalent

    def test_functional_bug_detected(self):
        g = design(ALU, "alu")
        c = design(ALU.replace("a + b", "a + b + 1"), "alu")
        stim = random_stimulus(g, 40, seed=9)
        verdict = equivalence_check(g, c, stim, clock=None)
        assert not verdict.equivalent
        assert verdict.mismatched_output == "y"
        assert verdict.first_mismatch_cycle is not None

    def test_interface_mismatch_fails_fast(self):
        g = design(ALU, "alu")
        c = design(ALU.replace("[7:0] y", "[6:0] y"), "alu")
        verdict = equivalence_check(g, c, [], clock=None)
        assert not verdict.equivalent
        assert verdict.error == "interface mismatch"

    def test_sequential_equivalence(self):
        g = design(COUNTER, "counter")
        c = design(COUNTER.replace("q + 1'b1", "q + 4'd1"), "counter")
        stim = random_stimulus(g, 30, seed=2)
        assert equivalence_check(
            g, c, stim, clock="clk", reset="rst"
        ).equivalent

    def test_sequential_bug_detected(self):
        g = design(COUNTER, "counter")
        c = design(COUNTER.replace("q + 1'b1", "q + 4'd2"), "counter")
        stim = [{"en": 1}] * 5
        verdict = equivalence_check(g, c, stim, clock="clk", reset="rst")
        assert not verdict.equivalent

    def test_reset_behaviour_compared(self):
        # Candidate missing the reset branch differs right after reset
        # because the register holds whatever it counted to.
        g = design(COUNTER, "counter")
        bad = COUNTER.replace("if (rst) q <= 4'd0;\n        else ", "")
        c = design(bad, "counter")
        stim = [{"en": 1}] * 3
        verdict = equivalence_check(g, c, stim, clock="clk", reset="rst")
        assert verdict.equivalent  # both start at 0, same increments
        # ... but after a mid-run reset they diverge:
        tb_g = Testbench(g, "clk", "rst")
        tb_c = Testbench(c, "clk", "rst")
        for tb in (tb_g, tb_c):
            tb.apply_reset()
            tb.step({"en": 1})
            tb.apply_reset(cycles=1)
        assert tb_g.sim.peek("q") == 0
        assert tb_c.sim.peek("q") != 0


class TestTestbench:
    def test_missing_clock_tolerated(self):
        tb = Testbench(design(ALU, "alu"), clock="clk")
        assert tb.clock is None
        out = tb.step({"a": 3, "b": 4, "op": 0})
        assert out["y"] == 7

    def test_input_names_exclude_clock_and_reset(self):
        tb = Testbench(design(COUNTER, "counter"), "clk", "rst")
        assert tb.input_names == ["en"]
        assert tb.output_names == ["q"]

    def test_name_lists_resolved_once(self):
        tb = Testbench(design(COUNTER, "counter"), "clk", "rst")
        assert tb.output_names is tb.output_names
        assert tb.input_names is tb.input_names

    def test_drive_applies_whole_vector(self):
        tb = Testbench(design(ALU, "alu"), clock=None)
        tb.drive({"a": 9, "b": 3, "op": 1})
        assert tb.sample()["y"] == 6

    def test_active_low_reset(self):
        source = COUNTER.replace("input rst", "input rst_n").replace(
            "if (rst)", "if (!rst_n)"
        )
        tb = Testbench(
            design(source, "counter"), "clk", "rst_n", reset_active_high=False
        )
        tb.apply_reset()
        assert tb.sim.peek("rst_n") == 1
        out = tb.step({"en": 1})
        assert out["q"] == 1
