"""Tests for the license filter, copyright filter, and full pipeline."""

import datetime

import pytest

from repro.curation import (
    CopyrightFilter,
    CurationConfig,
    CurationPipeline,
    FunnelReport,
    LicenseFilter,
)
from repro.curation.copyright_filter import extract_comment_text
from repro.github.scraper import ScrapedFile


def scraped(content, license_key="mit", file_id="r/x:src/a.v",
            header_kind="none"):
    repo, _, path = file_id.partition(":")
    return ScrapedFile(
        repo_full_name=repo,
        author="owner",
        path=path,
        content=content,
        license_key=license_key,
        created_at=datetime.date(2020, 1, 1),
        header_kind=header_kind,
    )


class TestLicenseFilter:
    def test_accepts_known_license(self):
        assert LicenseFilter().accepts(scraped("x", "mit"))
        assert LicenseFilter().accepts(scraped("x", "gpl-3.0"))

    def test_rejects_unlicensed(self):
        assert not LicenseFilter().accepts(scraped("x", None))

    def test_allow_unlicensed_mode(self):
        assert LicenseFilter(allow_unlicensed=True).accepts(scraped("x", None))

    def test_restricted_allowlist(self):
        f = LicenseFilter(allowed=["mit"])
        assert f.accepts(scraped("x", "mit"))
        assert not f.accepts(scraped("x", "apache-2.0"))


class TestCommentExtraction:
    def test_line_and_block_comments(self):
        text = "// top\nmodule m; /* inner */ endmodule\n"
        comments = extract_comment_text(text)
        assert "top" in comments and "inner" in comments

    def test_code_not_included(self):
        comments = extract_comment_text("module proprietary_name; endmodule")
        assert "proprietary" not in comments

    def test_header_lines_limit(self):
        text = "\n" * 50 + "// late proprietary comment\n"
        assert "proprietary" not in extract_comment_text(text, header_lines=40)
        assert "proprietary" in extract_comment_text(text, header_lines=0)

    def test_unterminated_block_comment_scanned(self):
        text = "/* CONFIDENTIAL header that never closes\nmodule m;"
        assert "CONFIDENTIAL" in extract_comment_text(text)


class TestCopyrightFilter:
    @pytest.mark.parametrize(
        "header",
        [
            "// This file is PROPRIETARY to Acme.\n",
            "// Acme CONFIDENTIAL\n",
            "// Copyright (c) 2020 Acme. All rights reserved.\n",
            "/* Unauthorized copying of this file is prohibited */\n",
            "// Copyright 2019 Acme. This is the property of Acme and may\n"
            "// not be used without express written consent.\n",
        ],
    )
    def test_flags_protected_headers(self, header):
        source = header + "module m(input a); endmodule\n"
        assert not CopyrightFilter().is_clean(source)

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "// SPDX-License-Identifier: MIT\n// Copyright (c) 2020 dev\n"
            "// Permission is hereby granted, free of charge\n",
            "// just a normal design note\n",
            "// Copyright (c) 2021 dev\n",  # bare copyright w/o restrictions
        ],
    )
    def test_passes_open_headers(self, header):
        source = header + "module m(input a); endmodule\n"
        assert CopyrightFilter().is_clean(source)

    def test_identifier_names_do_not_flag(self):
        source = "module confidential_unit(input proprietary_sig); endmodule"
        assert CopyrightFilter().is_clean(source)

    def test_case_insensitive(self):
        assert not CopyrightFilter().is_clean("// ALL RIGHTS RESERVED\n")

    def test_verdict_reports_keywords(self):
        verdict = CopyrightFilter().inspect("// proprietary and confidential\n")
        assert verdict.flagged
        assert "proprietary" in verdict.matched_keywords

    def test_ground_truth_recall(self, world):
        """Every injected proprietary file must be caught (the paper found
        >2k such files with this style of filter)."""
        detector = CopyrightFilter()
        files = world.proprietary_files()
        assert files
        assert all(not detector.is_clean(f.content) for f in files)

    def test_ground_truth_precision_on_license_headers(self, world):
        detector = CopyrightFilter()
        false_positives = 0
        checked = 0
        for repo in world.repos:
            for record in repo.verilog_files:
                if record.header_kind == "license":
                    checked += 1
                    if not detector.is_clean(record.content):
                        false_positives += 1
        assert checked > 0
        assert false_positives == 0


class TestFunnelReportEdges:
    def test_negative_in_count_rejected(self):
        with pytest.raises(ValueError):
            FunnelReport().record("weird", -1, -2)

    def test_negative_out_count_rejected(self):
        with pytest.raises(ValueError):
            FunnelReport().record("weird", 5, -1)

    def test_growth_rejected(self):
        with pytest.raises(ValueError):
            FunnelReport().record("grew", 3, 4)

    def test_zero_counts_allowed(self):
        report = FunnelReport()
        stage = report.record("empty", 0, 0)
        assert stage.removal_fraction == 0.0
        assert report.final_count == 0

    def test_to_text_long_stage_names_stay_aligned(self):
        report = FunnelReport()
        report.record("short", 10, 5)
        long_name = "extremely_long_experimental_stage_name"
        report.record(long_name, 5, 5)
        lines = report.to_text().splitlines()
        # all rows share one width and columns still parse as numbers
        assert len({len(line) for line in lines}) == 1
        assert lines[2].startswith(long_name)
        assert lines[2].split()[1:] == ["5", "5", "0", "0.000"]

    def test_to_text_default_layout_unchanged(self):
        report = FunnelReport()
        report.record("extracted", 100, 100)
        report.record("license_filter", 100, 50)
        header = report.to_text().splitlines()[0]
        assert header.startswith("stage")
        assert header.index("in") == 30  # the seed's 22 + 10-wide layout

    def test_empty_report(self):
        report = FunnelReport()
        assert report.initial_count == 0
        assert report.final_count == 0
        assert report.stage("anything") is None


class TestPipeline:
    def test_full_funnel_order_and_monotonicity(self, raw_files):
        dataset = CurationPipeline().run(raw_files)
        names = [s.name for s in dataset.funnel.stages]
        assert names == [
            "extracted", "license_filter", "dedup",
            "copyright_filter", "syntax_check",
        ]
        counts = [s.out_count for s in dataset.funnel.stages]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert dataset.rows == dataset.funnel.final_count

    def test_output_is_clean(self, raw_files):
        from repro.verilog import check_syntax

        dataset = CurationPipeline().run(raw_files)
        detector = CopyrightFilter()
        for record in dataset.files:
            assert record.license_key is not None
            assert detector.is_clean(record.content)
        # spot-check syntax on a sample
        for record in dataset.files[:25]:
            assert check_syntax(record.content).ok

    def test_stages_can_be_disabled(self, raw_files):
        config = CurationConfig(
            license_check=False,
            allow_unlicensed=True,
            dedup=False,
            copyright_check=False,
            syntax_check=False,
        )
        dataset = CurationPipeline(config).run(raw_files, name="raw")
        assert dataset.rows == len(raw_files)
        assert [s.name for s in dataset.funnel.stages] == ["extracted"]

    def test_length_cap(self, raw_files):
        config = CurationConfig(max_file_chars=1500, dedup=False)
        dataset = CurationPipeline(config).run(raw_files)
        assert all(len(f.content) <= 1500 for f in dataset.files)
        assert dataset.funnel.stage("length_cap") is not None

    def test_dataset_metadata(self, raw_files):
        dataset = CurationPipeline().run(raw_files, name="FreeSet")
        assert dataset.name == "FreeSet"
        assert dataset.license_check and dataset.copyright_check
        assert dataset.size_bytes == sum(
            len(f.content.encode()) for f in dataset.files
        )

    def test_funnel_text_render(self, freeset_result):
        text = freeset_result.dataset.funnel.to_text()
        assert "license_filter" in text
        assert "dedup" in text
