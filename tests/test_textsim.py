"""Tests for the cosine-similarity subsystem."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textsim import (
    NgramVectorizer,
    SimilarityIndex,
    cosine_similarity,
)


class TestVectorizer:
    def test_normalization_strips_comments_and_case(self):
        v = NgramVectorizer()
        a = v.vectorize("// header\nASSIGN Y = A;")
        b = v.vectorize("assign y = a;")
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_short_text(self):
        v = NgramVectorizer(n=4)
        vec = v.vectorize("ab")
        assert len(vec) == 1

    def test_empty_text(self):
        v = NgramVectorizer()
        assert v.vectorize("").norm == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NgramVectorizer(n=0)


class TestCosine:
    def test_identical(self):
        v = NgramVectorizer()
        vec = v.vectorize("module m; endmodule")
        assert cosine_similarity(vec, vec) == pytest.approx(1.0)

    def test_disjoint(self):
        v = NgramVectorizer()
        assert cosine_similarity(
            v.vectorize("aaaaaaaa"), v.vectorize("bbbbbbbb")
        ) == 0.0

    def test_empty_vs_anything_is_zero(self):
        v = NgramVectorizer()
        assert cosine_similarity(v.vectorize(""), v.vectorize("abcd")) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcmodule ;=", min_size=8, max_size=60),
           st.text(alphabet="abcmodule ;=", min_size=8, max_size=60))
    def test_symmetry_and_range(self, t1, t2):
        v = NgramVectorizer()
        a, b = v.vectorize(t1), v.vectorize(t2)
        s1, s2 = cosine_similarity(a, b), cosine_similarity(b, a)
        assert s1 == pytest.approx(s2)
        assert -1e-9 <= s1 <= 1.0 + 1e-9


class TestSimilarityIndex:
    def _corpus_index(self, texts):
        index = SimilarityIndex()
        for i, text in enumerate(texts):
            index.add(f"doc{i}", text)
        return index

    def test_exact_match_found(self, tiny_verilog_corpus):
        texts = tiny_verilog_corpus[:20]
        index = self._corpus_index(texts)
        match = index.best_match(texts[7])
        assert match.key == "doc7"
        assert match.score == pytest.approx(1.0)

    def test_best_match_is_true_maximum(self, tiny_verilog_corpus):
        texts = tiny_verilog_corpus[:15]
        index = self._corpus_index(texts)
        v = index.vectorizer
        query = texts[3][: len(texts[3]) // 2]
        best = index.best_match(query)
        brute = max(
            (cosine_similarity(v.vectorize(query), v.vectorize(t)), f"doc{i}")
            for i, t in enumerate(texts)
        )
        assert best.score == pytest.approx(brute[0])

    def test_no_shared_ngrams_returns_none_or_zero(self):
        index = self._corpus_index(["module m; endmodule"])
        match = index.best_match("@@@@ %%%% ^^^^")
        assert match is None or match.score == 0.0

    def test_empty_index(self):
        index = SimilarityIndex()
        assert index.best_match("anything") is None

    def test_duplicate_key_rejected(self):
        index = SimilarityIndex()
        index.add("k", "text one")
        with pytest.raises(KeyError):
            index.add("k", "text two")

    def test_score_against_specific_doc(self):
        index = self._corpus_index(["assign y = a & b;"])
        assert index.score_against("doc0", "assign y = a & b;") == pytest.approx(1.0)
