"""Tests for shared utilities: RNG, text normalization, statistics."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    DeterministicRNG,
    Histogram,
    derive_seed,
    log_bins,
    normalize_whitespace,
    strip_comments,
    summarize,
    truncate_words,
    word_count,
)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_multi_label_not_concatenation_ambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestRNG:
    def test_fork_independence(self):
        rng = DeterministicRNG(7)
        a = rng.fork("x")
        b = rng.fork("x")
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)
        ]
        assert rng.fork("x").randint(0, 10**9) != rng.fork("y").randint(0, 10**9)

    def test_weighted_choice_distribution(self):
        rng = DeterministicRNG(3)
        picks = [rng.weighted_choice({"a": 9, "b": 1}) for _ in range(500)]
        assert picks.count("a") > 350

    def test_weighted_choice_validation(self):
        rng = DeterministicRNG(0)
        with pytest.raises(ValueError):
            rng.weighted_choice({})
        with pytest.raises(ValueError):
            rng.weighted_choice({"a": 0})

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).choice([])

    def test_lognormal_bounds(self):
        rng = DeterministicRNG(5)
        for _ in range(100):
            value = rng.lognormal_int(100, 1.0, lo=10, hi=5000)
            assert 10 <= value <= 5000

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRNG(9)
        items = list(range(30))
        assert sorted(rng.shuffled(items)) == items


class TestStripComments:
    def test_line_comment(self):
        assert strip_comments("a; // note\nb;") == "a; \nb;"

    def test_block_comment_replaced_with_space(self):
        assert strip_comments("a/*x*/b") == "a b"

    def test_string_literals_preserved(self):
        text = 'x = "// not a comment";'
        assert strip_comments(text) == text

    def test_block_in_string_preserved(self):
        text = 'x = "/* keep */";'
        assert strip_comments(text) == text

    def test_unterminated_block_runs_to_end(self):
        assert strip_comments("a /* open").strip() == "a"

    def test_escaped_quote_in_string(self):
        text = 'x = "a\\"b // keep";'
        assert strip_comments(text) == text

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab /*\n\"\\", max_size=60))
    def test_never_longer_and_idempotent(self, text):
        stripped = strip_comments(text)
        assert len(stripped) <= len(text) + 1  # block -> " " can pad by one
        assert strip_comments(stripped) == stripped or '"' in text


class TestWordHelpers:
    def test_normalize(self):
        assert normalize_whitespace("  a\t b\nc ") == "a b c"

    def test_word_count(self):
        assert word_count("a b  c\nd") == 4

    def test_truncate(self):
        assert truncate_words("a b c d", 2) == "a b"
        assert truncate_words("a b", 5) == "a b"
        assert truncate_words("a b", 0) == ""


class TestHistogram:
    def test_log_bins(self):
        edges = log_bins(1, 3)
        assert edges == pytest.approx([10.0, 100.0, 1000.0])
        with pytest.raises(ValueError):
            log_bins(3, 1)

    def test_binning(self):
        hist = Histogram(edges=[0, 10, 100])
        hist.add_all([5, 50, 500, -1])
        assert hist.counts == [1, 1]
        assert hist.overflow == 1
        assert hist.underflow == 1
        assert hist.total == 4

    def test_boundary_goes_to_upper_bin(self):
        hist = Histogram(edges=[0, 10, 100])
        hist.add(10)
        assert hist.counts == [0, 1]

    def test_series_shape(self):
        hist = Histogram(edges=log_bins(1, 4))
        hist.add_all([20, 200, 2000, 30])
        series = hist.series()
        assert len(series) == 3
        assert sum(count for _, count in series) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1])
        with pytest.raises(ValueError):
            Histogram(edges=[2, 1])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.5, max_value=1e6), max_size=50))
    def test_total_conserved(self, values):
        hist = Histogram(edges=log_bins(1, 5))
        hist.add_all(values)
        assert hist.total == len(values)


class TestSummarize:
    def test_values(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats["min"] == 1
        assert stats["max"] == 5
        assert stats["mean"] == 3
        assert stats["median"] == 3

    def test_single_value(self):
        stats = summarize([7])
        assert stats["median"] == 7
        assert stats["p90"] == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
