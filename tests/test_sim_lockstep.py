"""Differential tests: lockstep candidate checking vs the scalar path.

``check_candidates_lockstep`` — and the whole machinery under it
(:func:`repro.sim.batch.lockstep_shape_digest` grouping,
:func:`repro.sim.batch.build_lockstep_group`,
:class:`repro.sim.batch.LockstepSimulator` with lane retirement and
dirty-level skipping) — must be *verdict-identical, candidate for
candidate*, to checking every source through
:func:`check_candidate_source`: the same pass/fail bits, the same
failure-reason classification (``syntax`` / ``missing_module`` /
``elaboration`` / mismatch detail / ``SimulationError`` strings), and
the same first-mismatch bookkeeping, across vgen families, the vereval
problem set, engineered error scenarios (comb latches, division by
zero, ``BatchDivergence``, unlevelizable and over-wide designs), and
hypothesis draws.
"""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.sim import (
    BatchSimulator,
    LockstepSimulator,
    LockstepTestbench,
    Simulator,
    Testbench,
    UnbatchableDesign,
    batch_design,
    build_lockstep_group,
    elaborate,
    lockstep_shape_digest,
    random_stimulus,
    sweep_random_stimulus,
)
from repro.sim import cache as sim_cache
from repro.utils.rng import DeterministicRNG
from repro.vereval import build_problem_set, check_candidates_lockstep
from repro.vereval.problems import EvalProblem
from repro.vgen import FAMILIES, generate_family
from repro.vgen.base import GeneratedModule, ModuleInterface
from repro.verilog import parse_source

import repro.vereval.harness as harness

ALL_FAMILIES = sorted(FAMILIES)

SEQUENTIAL_FAMILIES = ["fifo", "traffic_fsm", "lfsr", "shift_register"]


def build(source, top):
    return elaborate(parse_source(source), top)


def _mutate(source: str, index: int) -> str:
    """A cheap, usually-still-parseable candidate variant per index."""
    replacements = [("+", "-"), ("&", "|"), ("<", ">="), ("^", "&")]
    for old, new in replacements[index % len(replacements):]:
        if old in source:
            return source.replace(old, new, 1)
    return source


def _problem_for(module, cycles=24, seed=5, problem_id="lockstep"):
    return EvalProblem(
        problem_id=problem_id, module=module,
        stimulus_cycles=cycles, stimulus_seed=seed,
    )


def assert_lockstep_identical(problem, sources):
    batch = check_candidates_lockstep(problem, sources)
    reference = [
        harness.check_candidate_source(problem, source) for source in sources
    ]
    assert batch == reference
    return batch


# ---------------------------------------------------------------------------
# the custom sequential DUT used by the engineered scenarios
# ---------------------------------------------------------------------------

_DUT = """module dut(
  input clk,
  input rst,
  input en,
  input [7:0] a,
  input [7:0] b,
  output reg [15:0] acc,
  output [7:0] mix
);
  reg [7:0] stage;
  wire [8:0] sum;
  assign sum = {OP_SUM};
  assign mix = stage ^ ({OP_MIX});
  always @(posedge clk) begin
    if (rst) begin
      acc <= 16'd0;
      stage <= 8'd0;
    end else if (en) begin
      stage <= {OP_STAGE};
      acc <= acc + {7'b0, sum};
    end
  end
endmodule
"""


def _dut(op_sum="a + b", op_mix="a & b", op_stage="a ^ b"):
    return (
        _DUT.replace("{OP_SUM}", op_sum)
        .replace("{OP_MIX}", op_mix)
        .replace("{OP_STAGE}", op_stage)
    )


def _dut_problem(cycles=24, seed=3, problem_id="dut"):
    module = GeneratedModule(
        family="bench",
        source=_dut(),
        interface=ModuleInterface(
            module_name="dut", clock="clk", reset="rst",
            reset_active_high=True,
            inputs=[("en", 1), ("a", 8), ("b", 8)],
            outputs=[("acc", 16), ("mix", 8)],
        ),
        description="lockstep differential DUT",
    )
    return _problem_for(module, cycles, seed, problem_id)


# ---------------------------------------------------------------------------
# verdict identity across families and the problem set
# ---------------------------------------------------------------------------


class TestEveryFamilyVerdictIdentity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_candidates_identical(self, family):
        module = generate_family(
            family, DeterministicRNG(11).fork("lockdiff", family)
        )
        problem = _problem_for(module, problem_id=f"lk_{family}")
        golden = problem.golden_source
        sources = [
            golden,
            golden + "\n// comment-only variant\n",  # same AST, new text
            _mutate(golden, 0),
            _mutate(golden, 1),
            golden,  # duplicate of the first source
        ]
        assert_lockstep_identical(problem, sources)


class TestProblemSetVerdictIdentity:
    def test_vereval_problems_identical(self):
        problems = build_problem_set(n_problems=10)
        for index, problem in enumerate(problems):
            golden = problem.golden_source
            sources = [
                golden,
                golden + "\n// variant\n",
                _mutate(golden, index),
            ]
            assert_lockstep_identical(problem, sources)


@settings(max_examples=10, deadline=None)
@given(
    family=st.sampled_from(SEQUENTIAL_FAMILIES),
    seed=st.integers(0, 2**20),
    mutation=st.integers(0, 3),
)
def test_fuzz_verdict_identity(family, seed, mutation):
    module = generate_family(
        family, DeterministicRNG(seed).fork("lockfuzz", family)
    )
    problem = _problem_for(module, cycles=12, problem_id=f"lf_{family}")
    golden = problem.golden_source
    sources = [golden, golden + "\n// v\n", _mutate(golden, mutation)]
    assert_lockstep_identical(problem, sources)


# ---------------------------------------------------------------------------
# engineered error scenarios: one lane fails while siblings pass
# ---------------------------------------------------------------------------


class TestErrorClassificationPerCandidate:
    def test_division_by_zero_sibling(self):
        # Same reads/writes as the golden node, so it groups and runs in
        # lockstep; division by zero yields the two-state 0 in every
        # backend and surfaces as a plain mismatch, identically.
        problem = _dut_problem()
        sources = [
            _dut(),
            _dut(op_sum="b + a"),
            _dut(op_sum="{1'b0, b / (a - a)}"),
        ]
        outcomes = assert_lockstep_identical(problem, sources)
        assert outcomes[0] == (True, "")
        assert outcomes[1] == (True, "")
        assert outcomes[2][0] is False

    def test_comb_latch_sibling_takes_its_own_path(self):
        # `always @* if (en) ...` levelizes but its schedule shape
        # differs from the golden's, so it is a straggler: the siblings
        # run in lockstep, the latch replays scalar — verdicts identical.
        problem = _dut_problem()
        latch = _dut().replace(
            "assign mix = stage ^ (a & b);",
            "reg [7:0] mix; always @(*) if (en) mix = stage ^ (a & b);",
        )
        assert "always @(*) if (en)" in latch
        sources = [_dut(), _dut(op_sum="b + a"), latch]
        assert_lockstep_identical(problem, sources)

    def test_batch_divergence_lane_replays_scalar(self):
        # Two candidates share a shape; one performs a dynamic field
        # write that lands above bit 62 (BatchDivergence at runtime in
        # lane form, raw-state bits in scalar form).  The lockstep run
        # aborts and both replay scalar, so verdicts stay identical.
        wide = """module dut(
  input clk, input rst, input [3:0] a, input [7:0] b,
  output reg [62:0] wide);
  always @(posedge clk) begin
    if (rst) wide <= 63'd0;
    else wide[{INDEX} +: 8] <= b;
  end
endmodule
"""
        safe = wide.replace("{INDEX}", "{1'b0, a}")       # lo <= 23
        diverging = wide.replace("{INDEX}", "{a, 3'b000}")  # lo up to 120
        module = GeneratedModule(
            family="bench", source=safe,
            interface=ModuleInterface(
                module_name="dut", clock="clk", reset="rst",
                reset_active_high=True,
                inputs=[("a", 4), ("b", 8)], outputs=[("wide", 63)],
            ),
            description="divergence DUT",
        )
        problem = _problem_for(module, cycles=24, problem_id="diverge")
        # Shapes match, so the pair forms one lockstep group...
        designs = [build(safe, "dut"), build(diverging, "dut")]
        assert lockstep_shape_digest(designs[0]) == lockstep_shape_digest(
            designs[1]
        )
        # ...and the diverging lane actually raises in lane form.
        from repro.errors import SimulationError

        group = build_lockstep_group(designs)
        bench = LockstepTestbench(group, clock="clk", reset="rst")
        bench.apply_reset()
        with pytest.raises(SimulationError):
            for vector in random_stimulus(designs[0], 24, seed=5):
                bench.drive(vector)
                bench.tick()
        assert_lockstep_identical(problem, [safe, diverging])

    def test_unlevelizable_and_wide_siblings(self):
        problem = _dut_problem()
        multi_driver = _dut().replace(
            "assign sum = a + b;",
            "assign sum = a + b; assign sum = b - a;",
        )
        wide = _dut().replace(
            "reg [7:0] stage;", "reg [7:0] stage; reg [63:0] big;"
        ).replace(
            "stage <= a ^ b;", "stage <= a ^ b; big <= {56'd0, b};"
        )
        from repro.sim.compile import UncompilableDesign
        from repro.sim.batch import (
            _group_representation,
            configure_lane_representation,
        )

        with pytest.raises(UncompilableDesign):
            lockstep_shape_digest(build(multi_driver, "dut"))
        # Wide siblings now carry spill lanes instead of raising; the
        # historical fallback remains behind the int64 pin.
        assert _group_representation(build(wide, "dut")) == "spill"
        assert lockstep_shape_digest(build(wide, "dut"))
        previous = configure_lane_representation("int64")
        try:
            with pytest.raises(UnbatchableDesign):
                lockstep_shape_digest(build(wide, "dut"))
        finally:
            configure_lane_representation(previous)
        sources = [_dut(), _dut(op_mix="b & a"), multi_driver, wide]
        assert_lockstep_identical(problem, sources)

    def test_wide_family_locksteps_without_scalar_fallback(self):
        # A >63-bit sequential family: every candidate groups on spill
        # lanes and the group runs in lockstep — no lane is replayed on
        # the scalar path, and verdicts stay candidate-identical.
        source = """module dut(
  input clk, input rst, input [63:0] d,
  output reg [127:0] acc, output [127:0] mix);
  assign mix = acc ^ {d, d};
  always @(posedge clk) begin
    if (rst) acc <= 128'd0;
    else acc <= {acc[63:0], acc[127:64]} + {64'd0, d};
  end
endmodule
"""
        module = GeneratedModule(
            family="bench", source=source,
            interface=ModuleInterface(
                module_name="dut", clock="clk", reset="rst",
                reset_active_high=True,
                inputs=[("d", 64)], outputs=[("acc", 128), ("mix", 128)],
            ),
            description="wide-datapath DUT",
        )
        problem = _problem_for(module, cycles=24, problem_id="widepath")
        from repro.sim.batch import _group_representation

        assert _group_representation(build(source, "dut")) == "spill"
        sources = [
            source,
            source + "\n// variant\n",
            source.replace("acc ^ {d, d}", "acc & {d, d}"),
            source.replace("+ {64'd0, d}", "- {64'd0, d}"),
        ]
        replayed = obs.counter_value("lockstep.lanes_replayed")
        outcomes = assert_lockstep_identical(problem, sources)
        assert obs.counter_value("lockstep.lanes_replayed") == replayed
        assert outcomes[0] == (True, "")
        assert outcomes[1] == (True, "")
        assert outcomes[2][0] is False
        assert outcomes[3][0] is False

    @pytest.mark.parametrize("representation", ["int64", "spill"])
    def test_pinned_representation_verdicts_identical(
        self, representation
    ):
        # Lockstep honours the lane-representation pin; verdicts must be
        # identical to the scalar loop under either backing store.
        from repro.sim.batch import configure_lane_representation

        problem = _dut_problem(problem_id=f"pin-{representation}")
        sources = [_dut(), _dut(op_sum="b + a"), _mutate(_dut(), 0)]
        previous = configure_lane_representation(representation)
        try:
            assert_lockstep_identical(problem, sources)
        finally:
            configure_lane_representation(previous)

    def test_golden_error_phases_propagate(self):
        # A golden that dies mid-trace (combinational loop poked into
        # oscillation is hard to build; use a for-loop bound instead)
        # must preempt candidate verdicts identically in lockstep.
        source = """module dut(
  input clk, input rst, input [7:0] a, output reg [15:0] acc);
  reg [7:0] i;
  always @(posedge clk) begin
    if (rst) acc <= 16'd0;
    else begin
      for (i = 8'd0; i < 8'd255; i = i + {7'd0, (a == 8'd0)})
        acc <= acc + 16'd1;
    end
  end
endmodule
"""
        module = GeneratedModule(
            family="bench", source=source,
            interface=ModuleInterface(
                module_name="dut", clock="clk", reset="rst",
                reset_active_high=True,
                inputs=[("a", 8)], outputs=[("acc", 16)],
            ),
            description="loop-bound DUT",
        )
        problem = _problem_for(module, cycles=16, problem_id="loopy")
        ref = harness._GoldenRef(problem)
        if ref.error is None:
            pytest.skip("stimulus never drove a == 0")
        assert_lockstep_identical(
            problem, [source, source + "\n// v\n", _mutate(source, 0)]
        )


class TestRetirementBookkeeping:
    def test_first_mismatch_details_match_scalar(self):
        problem = _dut_problem(cycles=32)
        ref = harness._golden_ref(problem)
        sources = [
            _dut(),                      # passes all 32 cycles
            _dut(op_stage="a & b"),      # diverges once stage differs
            _dut(op_mix="a | b"),        # diverges on mix immediately
            _dut(op_sum="a - b"),        # diverges on acc
        ]
        designs = [build(source, "dut") for source in sources]
        many = harness._check_many_against_trace(
            ref, designs, problem, sources=sources
        )
        scalar = [
            harness._check_against_trace(ref, design, problem)
            for design in designs
        ]
        assert many == scalar  # full EquivalenceResult dataclass equality
        assert many[0].equivalent
        assert {v.equivalent for v in many[1:]} == {False}
        assert all(v.first_mismatch_cycle is not None for v in many[1:])

    def test_kill_switch_forces_scalar(self, monkeypatch):
        problem = _dut_problem()
        calls = []
        original = harness._run_lockstep_group

        def spy(ref, designs, problem_):
            calls.append(len(designs))
            return original(ref, designs, problem_)

        monkeypatch.setattr(harness, "_run_lockstep_group", spy)
        sources = [_dut(), _dut(op_sum="b + a")]
        check_candidates_lockstep(problem, sources)
        assert calls == [2]
        calls.clear()
        monkeypatch.setattr(harness, "LOCKSTEP_CHECK_ENABLED", False)
        off = check_candidates_lockstep(problem, sources)
        assert calls == []
        assert off == [
            harness.check_candidate_source(problem, s) for s in sources
        ]


# ---------------------------------------------------------------------------
# the lockstep runtime itself
# ---------------------------------------------------------------------------


class TestLockstepSimulator:
    def test_lanes_match_scalar_sims(self):
        sources = [_dut(), _dut(op_sum="b + a"), _dut(op_stage="a & b")]
        designs = [build(source, "dut") for source in sources]
        group = build_lockstep_group(designs)
        bench = LockstepTestbench(group, clock="clk", reset="rst")
        assert isinstance(bench.sim, LockstepSimulator)
        bench.apply_reset()
        refs = []
        for design in designs:
            ref = Testbench(design, clock="clk", reset="rst")
            ref.apply_reset()
            refs.append(ref)
        for vector in random_stimulus(designs[0], 16, seed=9):
            out = bench.step(vector)
            for lane, ref in enumerate(refs):
                expected = ref.step(vector)
                got = {name: int(values[lane]) for name, values in out.items()}
                assert got == expected, (lane, vector)

    def test_retired_lanes_freeze(self):
        designs = [build(_dut(), "dut"), build(_dut("b + a"), "dut")]
        group = build_lockstep_group(designs)
        bench = LockstepTestbench(group, clock="clk", reset="rst")
        bench.apply_reset()
        stimulus = random_stimulus(designs[0], 8, seed=2)
        for vector in stimulus[:4]:
            bench.step(vector)
        frozen = bench.sim.peek_lanes("acc")[1]
        bench.sim.retire_lanes(np.array([False, True]))
        for vector in stimulus[4:]:
            bench.step(vector)
        assert bench.sim.peek_lanes("acc")[1] == frozen
        assert bench.sim.active.tolist() == [True, False]

    def test_single_lane_group_matches_batch(self):
        design = build(_dut(), "dut")
        group = build_lockstep_group([design])
        lock = LockstepSimulator(group)
        batch = BatchSimulator(build(_dut(), "dut"), n_lanes=1)
        for vector in random_stimulus(design, 12, seed=4):
            lock.poke_many(vector)
            batch.poke_many(vector)
            lock.poke("clk", 0); lock.poke("clk", 1)
            batch.poke("clk", 0); batch.poke("clk", 1)
            assert lock.peek_lanes("acc").tolist() == [batch.peek("acc")]

    def test_mismatched_shapes_rejected(self):
        latch = _dut().replace(
            "assign mix = stage ^ (a & b);",
            "reg [7:0] mix; always @(*) if (en) mix = stage ^ (a & b);",
        )
        with pytest.raises(UnbatchableDesign):
            build_lockstep_group([build(_dut(), "dut"), build(latch, "dut")])


# ---------------------------------------------------------------------------
# up-front validation (the PR's bugfix satellite)
# ---------------------------------------------------------------------------


class TestLaneValidation:
    def _design(self):
        return build(
            "module m(input [3:0] a, output [3:0] y); assign y = ~a;"
            " endmodule", "m"
        )

    def test_zero_lanes_is_a_value_error(self):
        with pytest.raises(ValueError, match="n_lanes"):
            batch_design(self._design(), 0)
        with pytest.raises(ValueError, match="n_lanes"):
            BatchSimulator(self._design(), n_lanes=0)
        with pytest.raises(ValueError, match="n_lanes"):
            Simulator(self._design(), backend="batch", n_lanes=-3)

    def test_empty_lockstep_group_is_a_value_error(self):
        with pytest.raises(ValueError):
            build_lockstep_group([])

    def test_wrong_shape_poke_is_a_value_error(self):
        sim = BatchSimulator(self._design(), n_lanes=4)
        with pytest.raises(ValueError, match="4 lanes"):
            sim.poke("a", np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="shape"):
            sim.poke_many({"a": np.array([[1, 2], [3, 4]])})
        sim.poke("a", np.array([1, 2, 3, 4]))  # the right shape still works
        assert sim.peek_lanes("y").tolist() == [14, 13, 12, 11]

    def test_negative_cycles_is_a_value_error(self):
        with pytest.raises(ValueError, match="cycles"):
            sweep_random_stimulus(self._design(), -1, seeds=(0,), clock=None)


# ---------------------------------------------------------------------------
# disk-cached grouping artifacts
# ---------------------------------------------------------------------------


class TestEvalkitLockstepWiring:
    """The chunk-level check path must be verdict- and number-identical."""

    def _records(self, problems, completions_per_problem):
        from repro.evalkit.records import SampleRecord

        records = []
        for unit_index, problem in enumerate(problems):
            prompt = problem.prompt()
            for sample_index, completion in enumerate(
                completions_per_problem
            ):
                records.append(
                    SampleRecord(
                        task_id="passk", model_name="m",
                        unit_id=problem.problem_id, unit_index=unit_index,
                        sample_index=sample_index, temperature=0.2,
                        max_new_tokens=64, prompt=prompt,
                        completion=completion,
                    )
                )
        return records

    def test_check_batch_matches_check(self):
        import copy

        from repro.evalkit.tasks import PassAtKChecker

        problems = build_problem_set(n_problems=3, seed=41)
        bodies = ["\nendmodule", "\n  garbage\nendmodule", "endmodule"]
        records = self._records(problems, bodies)
        batch_checker = PassAtKChecker(problems)
        single_checker = PassAtKChecker(problems)
        batched = batch_checker.check_batch(copy.deepcopy(records))
        singled = [single_checker.check(r) for r in copy.deepcopy(records)]
        assert [(r.passed, r.failure_reason) for r in batched] == [
            (r.passed, r.failure_reason) for r in singled
        ]
        # both paths fill the same memo keys
        assert set(batch_checker._verdicts) == set(single_checker._verdicts)

    def test_check_stage_routes_batches_and_singles(self):
        from repro.evalkit.stages import CheckStage
        from repro.evalkit.records import SampleRecord

        class BatchingChecker:
            def __init__(self):
                self.batches = []

            def check_batch(self, records):
                self.batches.append(len(records))
                for record in records:
                    record.passed = True
                return records

        class SingleChecker:
            def __init__(self):
                self.calls = 0

            def check(self, record):
                self.calls += 1
                record.passed = False
                return record

        batching, single = BatchingChecker(), SingleChecker()
        stage = CheckStage({"b": batching, "s": single}, cache_dir="")

        def rec(task_id, i):
            return SampleRecord(
                task_id=task_id, model_name="m", unit_id=str(i),
                unit_index=i, sample_index=0, temperature=0.2,
                max_new_tokens=8,
            )

        chunk = [rec("b", 0), rec("s", 1), rec("b", 2), rec("s", 3)]
        out = stage.process(chunk)
        assert [r.task_id for r in out] == ["b", "s", "b", "s"]  # order kept
        assert [r.passed for r in out] == [True, False, True, False]
        assert batching.batches == [2]
        assert single.calls == 2

    def test_evaluate_model_identical_with_lockstep_off(
        self, tiny_model, monkeypatch
    ):
        from repro.vereval import EvalConfig, evaluate_model

        problems = build_problem_set(n_problems=4, seed=47)
        config = EvalConfig(
            n_samples=3, ks=(1, 3), temperatures=(0.2,), max_new_tokens=96
        )
        with_lockstep = evaluate_model(tiny_model, problems, config)
        monkeypatch.setattr(harness, "LOCKSTEP_CHECK_ENABLED", False)
        without = evaluate_model(tiny_model, problems, config)
        assert with_lockstep == without


class TestShapeCache:
    def test_shape_digest_round_trip(self, tmp_path):
        previous = sim_cache.configure(str(tmp_path))
        try:
            design = build(_dut(), "dut")
            digest = lockstep_shape_digest(design)
            assert sim_cache.get_shape(_dut(), "dut") is None  # cold
            assert sim_cache.put_shape(_dut(), "dut", digest)
            assert sim_cache.get_shape(_dut(), "dut") == digest
            assert sim_cache.put_shape(
                "bad source", "dut", sim_cache.UNBATCHABLE_SHAPE
            )
            assert (
                sim_cache.get_shape("bad source", "dut")
                == sim_cache.UNBATCHABLE_SHAPE
            )
        finally:
            sim_cache.configure(previous)

    def test_lockstep_checking_with_warm_cache_identical(self, tmp_path):
        problem = _dut_problem(problem_id="cached")
        sources = [_dut(), _dut(op_sum="b + a"), _mutate(_dut(), 0)]
        baseline = check_candidates_lockstep(problem, sources)
        previous = sim_cache.configure(str(tmp_path))
        try:
            harness._GOLDEN_CACHE.clear()
            cold = check_candidates_lockstep(problem, sources)
            harness._GOLDEN_CACHE.clear()
            warm = check_candidates_lockstep(problem, sources)
        finally:
            sim_cache.configure(previous)
            harness._GOLDEN_CACHE.clear()
        assert cold == warm == baseline
