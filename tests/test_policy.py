"""The robustness substrate: RetryPolicy, Deadline, env parsing, faults.

Covers the one retry/deadline implementation everything routes through
(:mod:`repro.engine.policy`), the validated environment helpers and
their typed :class:`~repro.errors.ConfigError`, the deterministic
fault-injection registry (:mod:`repro.testing.faults`), and the
checkpoint store's two-generation corruption fallback those faults
exercise.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.engine import (
    CheckpointStore,
    ClusterExecutor,
    ConfigError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    env_float,
    env_int,
)
from repro.errors import TransientError
from repro.sim import cache as sim_cache
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    yield
    faults.disarm()


# -- RetryPolicy -------------------------------------------------------------


class TestRetryPolicy:
    def test_grant_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.grant(1)
        assert policy.grant(2)
        assert not policy.grant(3)

    def test_grant_counts_retries(self):
        before = obs.counter_value("policy.retries")
        RetryPolicy(max_attempts=2).grant(1)
        assert obs.counter_value("policy.retries") == before + 1

    def test_classification(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.grant(1, TransientError("x"))
        assert policy.grant(1, ConnectionError())
        assert policy.grant(1, TimeoutError())
        assert policy.grant(1, EOFError())
        assert not policy.grant(1, ValueError("not transient"))
        assert not policy.grant(1, KeyboardInterrupt())

    def test_custom_retryable(self):
        policy = RetryPolicy(max_attempts=5, retryable=(KeyError,))
        assert policy.grant(1, KeyError("k"))
        assert not policy.grant(1, TransientError("x"))

    def test_injected_fault_is_retryable(self):
        assert RetryPolicy().grant(1, faults.InjectedFault("p"))

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_backoff_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.1)
        # Same attempt, same delay — reproducible retry schedules.
        assert policy.backoff_s(2) == policy.backoff_s(2)
        assert 0.2 <= policy.backoff_s(2) <= 0.2 * 1.1

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("not yet")
            return "done"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        assert policy.call(flaky) == "done"
        assert len(attempts) == 3

    def test_call_exhausts_budget(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientError("again")

        with pytest.raises(TransientError):
            policy.call(always_fails)
        assert len(calls) == 2

    def test_call_does_not_retry_unclassified(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic error")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5, base_delay_s=0.0).call(boom)
        assert len(calls) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


# -- Deadline ----------------------------------------------------------------


class TestDeadline:
    def test_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None
        assert deadline.remaining(0.5) == 0.5
        deadline.check("anything")  # no raise

    def test_remaining_caps_waits(self):
        deadline = Deadline(100.0)
        assert deadline.remaining(0.25) == 0.25
        assert 99.0 < deadline.remaining() <= 100.0

    def test_expiry_raises_typed_and_counts(self):
        before = obs.counter_value("policy.deadline_exceeded")
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="handshake"):
            deadline.check("handshake")
        assert (
            obs.counter_value("policy.deadline_exceeded") == before + 1
        )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_call_honors_deadline(self):
        policy = RetryPolicy(
            max_attempts=100, base_delay_s=0.01, jitter=0.0
        )
        with pytest.raises(DeadlineExceeded):
            policy.call(
                lambda: (_ for _ in ()).throw(TransientError("x")),
                deadline=Deadline(0.05),
                describe="doomed op",
            )


# -- env parsing -------------------------------------------------------------


class TestEnvParsing:
    def test_defaults_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5

    def test_parses_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        assert env_int("REPRO_TEST_KNOB", 0) == 42
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        assert env_float("REPRO_TEST_KNOB", 0.0) == 2.5

    def test_error_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "banana")
        with pytest.raises(ConfigError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 0)
        with pytest.raises(ConfigError, match="'banana'"):
            env_float("REPRO_TEST_KNOB", 0.0)

    def test_range_checks(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        with pytest.raises(ConfigError, match="minimum"):
            env_int("REPRO_TEST_KNOB", 0, minimum=0)
        monkeypatch.setenv("REPRO_TEST_KNOB", "9000")
        with pytest.raises(ConfigError, match="maximum"):
            env_int("REPRO_TEST_KNOB", 0, maximum=100)

    def test_cluster_constructor_validates_env(self, monkeypatch):
        # The original motivation: a junk cluster knob must fail at
        # construction with a typed error naming the variable, not as a
        # bare ValueError deep inside a coordinator tick.
        monkeypatch.setenv("REPRO_CLUSTER_TIMEOUT_S", "banana")
        with pytest.raises(ConfigError, match="REPRO_CLUSTER_TIMEOUT_S"):
            ClusterExecutor(workers=1)
        monkeypatch.setenv("REPRO_CLUSTER_TIMEOUT_S", "-2")
        with pytest.raises(ConfigError, match="minimum"):
            ClusterExecutor(workers=1)


# -- the fault registry ------------------------------------------------------


class TestFaults:
    def test_unarmed_point_is_noop(self):
        assert faults.fire("nothing.armed.here") is None

    def test_raise_on_nth_activation_then_disarms(self):
        faults.arm("unit.point", "raise", nth=2)
        assert faults.fire("unit.point") is None  # activation 1
        with pytest.raises(faults.InjectedFault, match="unit.point"):
            faults.fire("unit.point")  # activation 2
        assert faults.fire("unit.point") is None  # single-shot: disarmed

    def test_nth_zero_fires_every_time(self):
        faults.arm("unit.point", "torn", nth=0)
        assert faults.fire("unit.point") == "torn"
        assert faults.fire("unit.point") == "torn"

    def test_site_interpreted_kind_returned(self):
        faults.arm("unit.point", "custom-kind", nth=1)
        assert faults.fire("unit.point") == "custom-kind"

    def test_once_marker_gates_across_arms(self, tmp_path):
        marker = str(tmp_path / "gate")
        faults.arm("unit.point", "raise", nth=1, once_marker=marker)
        with pytest.raises(faults.InjectedFault):
            faults.fire("unit.point")
        assert os.path.exists(marker)
        # A second arming (another "process") finds the gate taken.
        faults.disarm()
        faults.arm("unit.point", "raise", nth=1, once_marker=marker)
        assert faults.fire("unit.point") is None

    def test_env_arming_and_resync(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "env.point:raise:1")
        with pytest.raises(faults.InjectedFault):
            faults.fire("env.point")
        # Changing the variable re-arms with fresh counters.
        monkeypatch.setenv(faults.ENV_VAR, "env.other:torn:1")
        assert faults.fire("env.point") is None
        assert faults.fire("env.other") == "torn"

    def test_env_parse_rejects_bad_entries(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "point-only")
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            faults.fire("whatever")

    def test_armed_summary(self):
        faults.arm("unit.a", "raise", nth=3)
        summary = faults.armed()
        assert summary["unit.a"] == ["raise@3"]

    def test_firing_is_counted(self):
        before = obs.counter_value("faults.fired")
        faults.arm("unit.point", "torn", nth=1)
        faults.fire("unit.point")
        assert obs.counter_value("faults.fired") == before + 1


# -- checkpoint generations --------------------------------------------------


class TestCheckpointGenerations:
    def test_rotation_keeps_previous_generation(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("head", {"gen": 1})
        store.save("head", {"gen": 2})
        assert store.load("head") == {"gen": 2}
        prev = tmp_path / "ckpt" / "head.ckpt.1"
        assert prev.exists()
        with open(prev, "rb") as handle:
            assert pickle.load(handle) == {"gen": 1}

    def test_corrupt_newest_falls_back_and_counts(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("head", {"gen": 1})
        store.save("head", {"gen": 2})
        with open(tmp_path / "ckpt" / "head.ckpt", "wb") as handle:
            handle.write(b"\x80garbage not a pickle")
        before = obs.counter_value("checkpoint.corrupt_recovered")
        assert store.load("head") == {"gen": 1}
        assert (
            obs.counter_value("checkpoint.corrupt_recovered")
            == before + 1
        )

    def test_torn_fault_kind_recovers_via_fallback(self, tmp_path):
        # The site-interpreted "torn" kind truncates the freshly written
        # snapshot after the atomic rename — a torn write at the worst
        # moment.  The previous generation must still serve.
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("head", {"gen": 1})
        faults.arm("checkpoint.save", "torn", nth=1)
        store.save("head", {"gen": 2})
        assert store.load("head") == {"gen": 1}

    def test_all_generations_corrupt_raises_first_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("head", {"gen": 1})
        store.save("head", {"gen": 2})
        for name in ("head.ckpt", "head.ckpt.1"):
            with open(tmp_path / "ckpt" / name, "wb") as handle:
                handle.write(b"junk")
        with pytest.raises(Exception):
            store.load("head")

    def test_missing_key_returns_default(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load("absent") is None
        assert store.load("absent", default=3) == 3

    def test_delete_and_contains_cover_both_generations(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("head", {"gen": 1})
        store.save("head", {"gen": 2})
        assert "head" in store
        assert store.keys() == ["head"]
        store.delete("head")
        assert "head" not in store
        assert not (tmp_path / "ckpt" / "head.ckpt.1").exists()


# -- sim cache fault point ---------------------------------------------------


class TestSimCacheFault:
    def test_injected_read_failure_evicts_and_misses(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "cache"))
        sim_cache.configure(None)  # defer to the env var
        try:
            assert sim_cache.store("unit", {"payload": 1}, "k")
            assert sim_cache.load("unit", "k") == {"payload": 1}
            faults.arm("sim.cache.load", "raise", nth=1)
            before = obs.counter_value("sim.cache.corrupt")
            # The injected read failure is handled exactly like a
            # corrupt entry: evicted, counted, and a miss — never an
            # error surfaced to the evaluation.
            assert sim_cache.load("unit", "k") is None
            assert (
                obs.counter_value("sim.cache.corrupt") == before + 1
            )
            assert sim_cache.load("unit", "k") is None  # really evicted
        finally:
            sim_cache.configure(None)
