"""Tests for the engine-backed evaluation layer (repro.evalkit).

The load-bearing guarantees:

* facades (``evaluate_model``, ``CopyrightBenchmark.evaluate``,
  ``FreeVTrainer.headline``) are numerically identical to the seed-era
  serial harnesses — same pass@k, same violation rate, same per-sample
  seeds (the frozen serial loops are reproduced verbatim below);
* a killed run resumes from its :class:`CheckpointStore` snapshot and
  finishes with a :class:`RunResult` identical to an uninterrupted run;
* a multi-model plan shares the problem set and the similarity index and
  still matches per-model facade runs.
"""

import json

import pytest

from repro.copyright import CopyrightBenchmark
from repro.core.freev import HeadlineReport
from repro.engine import CheckpointStore, ParallelExecutor
from repro.errors import (
    ElaborationError,
    EvaluationError,
    SimulationError,
)
from repro.evalkit import CopyrightTask, EvalPlan, PassAtKTask
from repro.llm.sampler import GenerationConfig
from repro.sim import elaborate, equivalence_check, random_stimulus
from repro.utils.rng import DeterministicRNG
from repro.verilog import parse_source
from repro.vereval import (
    EvalConfig,
    EvalResult,
    ProblemOutcome,
    build_problem_set,
    check_completion,
    evaluate_model,
)
from repro.vereval.passk import mean_pass_at_k


# ---------------------------------------------------------------------------
# The seed-era serial harnesses, frozen verbatim (pre-evalkit behavior).
# ---------------------------------------------------------------------------


def _seed_check_completion(problem, completion):
    candidate_source = problem.prompt() + completion
    try:
        candidate_file = parse_source(candidate_source)
    except Exception:
        return False, "syntax"
    name = problem.module.name
    if candidate_file.module(name) is None:
        return False, "missing_module"
    try:
        golden = elaborate(parse_source(problem.golden_source), name)
        candidate = elaborate(candidate_file, name)
    except ElaborationError:
        return False, "elaboration"
    interface = problem.module.interface
    stimulus = random_stimulus(
        golden, problem.stimulus_cycles, seed=problem.stimulus_seed
    )
    try:
        verdict = equivalence_check(
            golden,
            candidate,
            stimulus,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
    except SimulationError:
        return False, "simulation"
    if verdict.equivalent:
        return True, ""
    return False, verdict.error or "mismatch"


def _seed_evaluate_model(model, problems, config):
    result = EvalResult(model_name=model.name)
    for temperature in config.temperatures:
        outcomes = []
        for problem in problems:
            gen_config = GenerationConfig(
                temperature=temperature,
                max_new_tokens=config.max_new_tokens,
                stop_strings=("endmodule",),
            )
            passes = 0
            failures = {}
            prompt = problem.prompt()
            for sample_index in range(config.n_samples):
                seed = DeterministicRNG(config.seed).fork(
                    model.name, temperature, problem.problem_id, sample_index
                ).seed
                completion = model.generate(prompt, gen_config, seed=seed)
                ok, reason = _seed_check_completion(problem, completion)
                if ok:
                    passes += 1
                else:
                    failures[reason] = failures.get(reason, 0) + 1
            outcomes.append(
                ProblemOutcome(
                    problem_id=problem.problem_id,
                    passes=passes,
                    samples=config.n_samples,
                    failures=failures,
                )
            )
        result.outcomes[temperature] = outcomes
        counts = [o.passes for o in outcomes]
        result.per_temperature[temperature] = {
            k: mean_pass_at_k(counts, config.n_samples, k) for k in config.ks
        }
    return result


def _seed_copyright_evaluate(benchmark, model, temperature=0.2,
                             max_new_tokens=512, seed=0):
    from repro.copyright.benchmark import PromptResult, ViolationReport
    from repro.copyright.prompts import build_prompt

    report = ViolationReport(model_name=model.name, threshold=benchmark.threshold)
    config = GenerationConfig(
        temperature=temperature,
        max_new_tokens=max_new_tokens,
        stop_strings=("endmodule",),
    )
    for i, key in enumerate(benchmark.prompt_keys):
        prompt = build_prompt(benchmark.corpus.text(key), benchmark.prompt_spec)
        if not prompt:
            continue
        completion = model.generate(
            prompt, config, seed=DeterministicRNG(seed).fork(key, i).seed
        )
        match = benchmark.index.best_match(prompt + completion)
        similarity = match.score if match else 0.0
        report.results.append(
            PromptResult(
                source_key=key,
                prompt=prompt,
                completion=completion,
                best_match_key=match.key if match else None,
                similarity=similarity,
                violation=similarity >= benchmark.threshold,
            )
        )
    return report


class _FlakyModel:
    """Delegates to a real model until ``fail_after`` generations."""

    def __init__(self, inner, fail_after):
        self._inner = inner
        self._fail_after = fail_after
        self.calls = 0
        self.name = inner.name
        self.counts = inner.counts  # same identity for plan fingerprints

    def generate(self, *args, **kwargs):
        if self.calls >= self._fail_after:
            raise RuntimeError("simulated kill")
        self.calls += 1
        return self._inner.generate(*args, **kwargs)

    def encode_prompt(self, prompt):
        return self._inner.encode_prompt(prompt)


_CONFIG = EvalConfig(
    n_samples=4, ks=(1, 4), temperatures=(0.2, 0.8), max_new_tokens=250
)


class TestFacadeIdentity:
    def test_passk_matches_seed_serial_harness(self, tiny_model):
        problems = build_problem_set(n_problems=5, seed=21)
        serial = _seed_evaluate_model(tiny_model, problems, _CONFIG)
        kit = evaluate_model(tiny_model, problems, _CONFIG)
        assert kit == serial

    def test_copyright_matches_seed_serial_loop(self, copyrighted_corpus,
                                                tiny_model):
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=12,
                                       seed=7)
        serial = _seed_copyright_evaluate(benchmark, tiny_model, seed=3)
        kit = benchmark.evaluate(tiny_model, seed=3)
        assert kit == serial

    def test_duplicate_temperatures_match_serial(self, tiny_model):
        # Degenerate but legal config: the serial loop recomputed and
        # overwrote the repeated temperature's entry; the plan must too.
        problems = build_problem_set(n_problems=2, seed=31)
        config = EvalConfig(n_samples=3, ks=(1, 3), temperatures=(0.8, 0.8),
                            max_new_tokens=120)
        serial = _seed_evaluate_model(tiny_model, problems, config)
        assert evaluate_model(tiny_model, problems, config) == serial

    def test_parallel_executor_identical(self, tiny_model):
        problems = build_problem_set(n_problems=3, seed=22)
        config = EvalConfig(n_samples=2, ks=(1, 2), temperatures=(0.8,),
                            max_new_tokens=150)
        serial = evaluate_model(tiny_model, problems, config)
        with ParallelExecutor(workers=2) as executor:
            pooled = evaluate_model(
                tiny_model, problems, config, executor=executor
            )
        assert pooled == serial


class TestEvalPlan:
    def test_multi_model_plan_matches_per_model_facades(
        self, tiny_model, tiny_verilog_corpus, copyrighted_corpus
    ):
        other = tiny_model.continual_pretrain(
            "tiny-tuned", tiny_verilog_corpus[60:]
        )
        problems = build_problem_set(n_problems=3, seed=23)
        config = EvalConfig(n_samples=2, ks=(1, 2), temperatures=(0.2,),
                            max_new_tokens=150)
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=6,
                                       seed=9)
        passk = PassAtKTask(problems, config)
        copyright_task = CopyrightTask(benchmark, seed=1)
        run = EvalPlan(
            [tiny_model, other], [passk, copyright_task]
        ).run()
        for model in (tiny_model, other):
            assert run.result(model.name, "passk") == evaluate_model(
                model, problems, config
            )
            assert run.result(model.name, "copyright") == benchmark.evaluate(
                model, seed=1
            )
        # shared index/problems: one plan, both models' records present
        assert set(run.model_names) == {tiny_model.name, other.name}
        assert len(run.samples(tiny_model.name, "passk")) == 6

    def test_run_result_json(self, tiny_model):
        problems = build_problem_set(n_problems=2, seed=24)
        config = EvalConfig(n_samples=2, ks=(1, 2), temperatures=(0.2,),
                            max_new_tokens=120)
        run = EvalPlan([tiny_model], [PassAtKTask(problems, config)]).run()
        payload = json.loads(run.to_json())
        assert payload["models"] == [tiny_model.name]
        assert payload["tasks"] == ["passk"]
        assert len(payload["samples"]) == 4  # 2 problems x 2 samples
        aggregate = payload["aggregates"][tiny_model.name]["passk"]
        assert set(aggregate["best"]) == {"1", "2"}
        for sample in payload["samples"]:
            assert sample["seed"] != 0
        compact = json.loads(run.to_json(include_text=False))
        assert "completion" not in compact["samples"][0]

    def test_plan_validation(self, tiny_model):
        problems = build_problem_set(n_problems=1, seed=25)
        task = PassAtKTask(problems, EvalConfig(n_samples=2, ks=(1,),
                                                temperatures=(0.2,)))
        with pytest.raises(ValueError):
            EvalPlan([], [task])
        with pytest.raises(ValueError):
            EvalPlan([tiny_model], [])
        with pytest.raises(ValueError):
            EvalPlan([tiny_model, tiny_model], [task])
        with pytest.raises(ValueError):
            EvalPlan([tiny_model], [task, task])
        with pytest.raises(ValueError):
            PassAtKTask(problems, EvalConfig(n_samples=2, ks=(5,)))


class TestResume:
    def _plan(self, model, problems, benchmark):
        config = EvalConfig(n_samples=3, ks=(1, 3), temperatures=(0.2, 0.8),
                            max_new_tokens=150)
        return EvalPlan(
            [model],
            [PassAtKTask(problems, config), CopyrightTask(benchmark, seed=2)],
        )

    def test_killed_run_resumes_to_identical_result(
        self, tmp_path, tiny_model, copyrighted_corpus
    ):
        problems = build_problem_set(n_problems=3, seed=26)
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=5,
                                       seed=4)
        uninterrupted = self._plan(tiny_model, problems, benchmark).run()

        store = CheckpointStore(tmp_path / "ckpt")
        flaky = _FlakyModel(tiny_model, fail_after=8)
        with pytest.raises(RuntimeError, match="simulated kill"):
            self._plan(flaky, problems, benchmark).run(
                store=store, tag="resume", checkpoint_every=4
            )
        # the kill landed mid-problem: some but not all work checkpointed
        snapshot = store.load("resume")
        assert snapshot is not None
        assert 0 < snapshot["engine"]["items_in"] < 23  # 18 passk + 5 cr

        resumed = self._plan(tiny_model, problems, benchmark).run(
            store=store, tag="resume", checkpoint_every=4
        )
        assert resumed.records == uninterrupted.records
        assert resumed.result(tiny_model.name, "passk") == uninterrupted.result(
            tiny_model.name, "passk"
        )
        assert resumed.result(
            tiny_model.name, "copyright"
        ) == uninterrupted.result(tiny_model.name, "copyright")
        assert resumed.seeds(tiny_model.name, "passk") == uninterrupted.seeds(
            tiny_model.name, "passk"
        )
        # ... and the resumed numbers still match the seed-era harnesses
        config = EvalConfig(n_samples=3, ks=(1, 3), temperatures=(0.2, 0.8),
                            max_new_tokens=150)
        assert resumed.result(tiny_model.name, "passk") == _seed_evaluate_model(
            tiny_model, problems, config
        )
        assert resumed.result(
            tiny_model.name, "copyright"
        ) == _seed_copyright_evaluate(benchmark, tiny_model, seed=2)

    def test_completed_checkpoint_replays_without_generation(
        self, tmp_path, tiny_model, copyrighted_corpus
    ):
        problems = build_problem_set(n_problems=2, seed=27)
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=3,
                                       seed=5)
        store = CheckpointStore(tmp_path / "ckpt")
        first = self._plan(tiny_model, problems, benchmark).run(
            store=store, tag="done"
        )
        # a model that refuses every call: replay must not need it
        dead = _FlakyModel(tiny_model, fail_after=0)
        replay = self._plan(dead, problems, benchmark).run(
            store=store, tag="done"
        )
        assert replay.records == first.records
        assert dead.calls == 0

    def test_checkpoint_from_different_plan_rejected(
        self, tmp_path, tiny_model, copyrighted_corpus
    ):
        problems = build_problem_set(n_problems=2, seed=28)
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=3,
                                       seed=6)
        store = CheckpointStore(tmp_path / "ckpt")
        self._plan(tiny_model, problems, benchmark).run(store=store, tag="x")
        other_config = EvalConfig(n_samples=2, ks=(1,), temperatures=(0.2,),
                                  max_new_tokens=100)
        other = EvalPlan([tiny_model], [PassAtKTask(problems, other_config)])
        with pytest.raises(EvaluationError, match="different plan"):
            other.run(store=store, tag="x")
        # a protocol change that keeps the spec count is rejected too
        shifted_config = EvalConfig(n_samples=3, ks=(1, 3),
                                    temperatures=(0.2, 0.8),
                                    max_new_tokens=150, seed=99)
        shifted = EvalPlan(
            [tiny_model],
            [PassAtKTask(problems, shifted_config),
             CopyrightTask(benchmark, seed=2)],
        )
        assert shifted.total_specs() == self._plan(
            tiny_model, problems, benchmark
        ).total_specs()
        with pytest.raises(EvaluationError, match="different plan"):
            shifted.run(store=store, tag="x")


class TestSatelliteFixes:
    def test_passk_delta_iterates_shared_keys(self):
        base = EvalResult("base", per_temperature={0.2: {1: 0.10, 5: 0.20}})
        tuned = EvalResult("tuned", per_temperature={0.2: {1: 0.15, 10: 0.60}})
        report = HeadlineReport(
            base_eval=base,
            freev_eval=tuned,
            base_violation_rate=0.0,
            freev_violation_rate=0.0,
        )
        # base has k=5, tuned has k=10: only the shared k=1 is compared
        assert report.passk_delta() == {1: pytest.approx(0.05)}

    def test_parse_crash_is_internal_not_syntax(self, monkeypatch):
        problem = build_problem_set(n_problems=1, seed=29)[0]

        def boom(source):
            raise RuntimeError("parser bug")

        monkeypatch.setattr("repro.vereval.harness.parse_source_fast", boom)
        ok, reason = check_completion(problem, "\nendmodule")
        assert not ok
        assert reason == "internal"

    def test_lex_and_parse_errors_still_syntax(self):
        problem = build_problem_set(n_problems=1, seed=30)[0]
        ok, reason = check_completion(problem, "\n  garbage (((")
        assert not ok and reason == "syntax"
