"""Counterexample-guided checking: near-miss discrimination, the
distinguishing-input set, falsification search, and coverage oracles.

Three layers, mirroring the module split:

* :mod:`repro.vgen.mutate` — near-miss operators produce valid,
  interface-preserving mutants;
* :mod:`repro.vereval.cegis` — the CEGIS checker is a strict refinement
  of the legacy checker (candidate-for-candidate over the full problem
  set and mutated vgen families), the falsification search kills a
  hand-built trap that survives 384 cycles of random stimulus, and the
  persisted distinguishing set round-trips byte-stably (hypothesis);
* :mod:`repro.sim.coverage` — hand-computed toggle/level coverage on
  tiny designs, exact saturation cycles, and backend-identical counters.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.sim import (
    CoverageTracker,
    POINTS_PER_BIT,
    Simulator,
    elaborate,
)
from repro.sim import cache as sim_cache
from repro.sim.testbench import Testbench, random_stimulus
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalProblem, build_problem_set
from repro.vereval import cegis, harness
from repro.verilog import parse_source
from repro.vgen import (
    GeneratedModule,
    ModuleInterface,
    MUTATION_KINDS,
    generate_family,
    mutate,
    random_style,
)


# -- helpers -----------------------------------------------------------------


def _clear_cegis_state():
    harness._GOLDEN_CACHE.clear()
    cegis._SET_CACHE.clear()
    cegis._CLEAR_MEMO.clear()
    cegis._GOLDEN_SWEEP_CACHE.clear()


@pytest.fixture()
def cache_dir(tmp_path):
    """Isolated sim-cache disk tier + pristine CEGIS state."""
    previous = sim_cache.configure(str(tmp_path))
    _clear_cegis_state()
    try:
        yield str(tmp_path)
    finally:
        sim_cache.configure(previous)
        _clear_cegis_state()


@pytest.fixture()
def cegis_on(cache_dir):
    """CEGIS enabled with cheap search parameters."""
    config = cegis.CegisConfig(
        enabled=True, search_rounds=2, search_lanes=8
    )
    previous = cegis.configure(config)
    try:
        yield config
    finally:
        cegis.configure(previous)


def _legacy_config():
    return cegis.CegisConfig(enabled=False)


def _family_module(family, seed=0x5EED):
    rng = DeterministicRNG(seed).fork(family)
    return generate_family(
        family, rng, random_style(DeterministicRNG(seed).fork("style", family))
    )


def _problem(module, problem_id, cycles=48, seed=11):
    return EvalProblem(
        problem_id=problem_id,
        module=module,
        stimulus_cycles=cycles,
        stimulus_seed=seed,
    )


# A 4-stage 32-bit pipeline with an equality trap: the mutant diverges
# only when d == 2^32-1, which ~never happens under uniform random
# stimulus (P ≈ 2^-32 per cycle) but is the first boundary episode the
# falsification search tries.
TRAP_GOLDEN = """module cegis_trap(
  input wire clk,
  input wire rst,
  input wire [31:0] d,
  output wire [31:0] q,
  output wire [31:0] acc
);
  reg [31:0] s0;
  reg [31:0] s1;
  reg [31:0] s2;
  reg [31:0] a;
  always @(posedge clk) begin
    if (rst) begin
      s0 <= 32'd0;
      s1 <= 32'd0;
      s2 <= 32'd0;
      a <= 32'd0;
    end else begin
      s0 <= d;
      s1 <= s0 ^ (s0 >> 3);
      s2 <= s1 + 32'd1;
      a <= a + s2;
    end
  end
  assign q = s2;
  assign acc = a;
endmodule
"""

TRAP_MUTANT = TRAP_GOLDEN.replace(
    "s0 <= d;", "s0 <= (d == 32'd4294967295) ? 32'd1 : d;"
)


def _trap_problem(cycles=384, name_suffix="", trap_value=None, width=32):
    source = TRAP_GOLDEN
    name = "cegis_trap"
    if name_suffix:
        new_name = f"cegis_trap{name_suffix}"
        source = source.replace(name, new_name)
        name = new_name
    interface = ModuleInterface(
        module_name=name,
        clock="clk",
        reset="rst",
        inputs=[("d", width)],
        outputs=[("q", width), ("acc", width)],
    )
    module = GeneratedModule(
        family="handmade",
        source=source,
        interface=interface,
        description="pipeline with an equality trap",
        params={},
    )
    return EvalProblem(
        problem_id=f"trap{name_suffix}",
        module=module,
        stimulus_cycles=cycles,
        stimulus_seed=3,
    )


# -- mutation operators ------------------------------------------------------


class TestMutate:
    def test_sequential_family_yields_all_kinds(self):
        module = _family_module("counter")
        kinds = {m.kind for m in mutate(module)}
        assert kinds == set(MUTATION_KINDS)

    def test_combinational_family_has_no_clocked_mutants(self):
        module = _family_module("mux")
        kinds = {m.kind for m in mutate(module)}
        assert "reset_polarity" not in kinds
        assert "blocking" not in kinds

    def test_mutants_parse_elaborate_and_keep_interface(self):
        for family in ("counter", "fifo", "shift_register", "traffic_fsm"):
            module = _family_module(family)
            golden = elaborate(parse_source(module.source), module.name)
            for mutant in mutate(module):
                assert mutant.source != module.source
                design = elaborate(parse_source(mutant.source), module.name)
                assert [
                    (s.name, s.width) for s in design.inputs
                ] == [(s.name, s.width) for s in golden.inputs]
                assert [
                    (s.name, s.width) for s in design.outputs
                ] == [(s.name, s.width) for s in golden.outputs]

    def test_blocking_mutation_spares_relational_operators(self):
        module = _family_module("counter")
        source = module.source.replace(
            "endmodule", "  wire cmp;\n  assign cmp = 1'b0 <= 1'b1;\nendmodule"
        )
        patched = GeneratedModule(
            family=module.family,
            source=source,
            interface=module.interface,
            description=module.description,
            params=module.params,
        )
        blocking = [m for m in mutate(patched) if m.kind == "blocking"]
        assert blocking and "= 1'b0 <= 1'b1" in blocking[0].source


# -- verdict refinement ------------------------------------------------------


def _mutant_candidates(module):
    """Golden + every near-miss mutant + one hard-broken candidate."""
    candidates = [module.source]
    candidates.extend(m.source for m in mutate(module))
    candidates.append(
        module.source.replace("endmodule", "  assign __x = 1; endmodule")
    )
    return candidates


SEQ_FAMILIES = (
    "counter", "edge_detector", "fifo", "shift_register",
    "traffic_fsm", "lfsr", "register_file",
)


class TestRefinement:
    def test_strict_refinement_on_vgen_family_mutants(self, cegis_on):
        """Candidate-for-candidate: legacy kill ⇒ CEGIS kill."""
        extra_kills = 0
        for family in SEQ_FAMILIES:
            module = _family_module(family)
            problem = _problem(module, f"refine-{family}")
            candidates = _mutant_candidates(module)
            previous = cegis.configure(_legacy_config())
            try:
                _clear_cegis_state()
                legacy = harness.check_candidates_lockstep(
                    problem, candidates
                )
            finally:
                cegis.configure(previous)
            _clear_cegis_state()
            adversarial = harness.check_candidates_lockstep(
                problem, candidates
            )
            for old, new in zip(legacy, adversarial):
                if not old[0]:
                    assert not new[0], (family, old, new)
                if old[0] and not new[0]:
                    extra_kills += 1
        assert extra_kills >= 0  # measured below with a seeded trap

    def test_strict_refinement_on_problem_set(self, cegis_on):
        """Every vereval problem: legacy verdicts survive candidate-for-
        candidate, goldens keep passing."""
        for problem in build_problem_set():
            candidates = [
                problem.golden_source,
                problem.golden_source.replace(";", ";;", 1),  # still parses?
                "module wrong(); endmodule",
            ]
            previous = cegis.configure(_legacy_config())
            try:
                _clear_cegis_state()
                legacy = harness.check_candidates_lockstep(
                    problem, candidates
                )
            finally:
                cegis.configure(previous)
            _clear_cegis_state()
            adversarial = harness.check_candidates_lockstep(
                problem, candidates
            )
            assert adversarial[0][0], problem.problem_id
            for old, new in zip(legacy, adversarial):
                if not old[0]:
                    assert not new[0], (problem.problem_id, old, new)

    def test_disabled_config_is_the_legacy_checker(self, cache_dir):
        module = _family_module("counter")
        problem = _problem(module, "legacy-identity")
        candidates = _mutant_candidates(module)
        previous = cegis.configure(_legacy_config())
        try:
            first = harness.check_candidates_lockstep(problem, candidates)
            _clear_cegis_state()
            second = harness.check_candidates_lockstep(problem, candidates)
        finally:
            cegis.configure(previous)
        assert first == second


# -- falsification search ----------------------------------------------------


class TestFalsificationSearch:
    def test_trap_survives_legacy_dies_to_search(self, cegis_on):
        """The acceptance trap: 384 random cycles pass, search kills."""
        problem = _trap_problem()
        previous = cegis.configure(_legacy_config())
        try:
            passed, _ = harness.check_candidate_source(problem, TRAP_MUTANT)
        finally:
            cegis.configure(previous)
        assert passed  # the legacy checker is blind to the trap
        _clear_cegis_state()
        passed, reason = harness.check_candidate_source(problem, TRAP_MUTANT)
        assert not passed and reason == "mismatch"
        ds = cegis.distinguishing_set(problem)
        assert len(ds) == 1
        assert ds.entries[0].origin.startswith("search:")

    def test_set_kills_duplicate_trap_cheaply(self, cegis_on):
        problem = _trap_problem()
        harness.check_candidate_source(problem, TRAP_MUTANT)
        before = obs.counter_value("cegis.set_kills")
        searches = obs.counter_value("cegis.searches")
        passed, _ = harness.check_candidate_source(
            problem, TRAP_MUTANT + "// variant\n"
        )
        assert not passed
        assert obs.counter_value("cegis.set_kills") == before + 1
        # the kill came from the set, not a fresh search
        assert obs.counter_value("cegis.searches") == searches

    def test_minted_vector_is_minimized(self, cegis_on):
        problem = _trap_problem()
        harness.check_candidate_source(problem, TRAP_MUTANT)
        entry = cegis.distinguishing_set(problem).entries[0]
        # divergence reaches q after the 3-stage latency; minimization
        # keeps the prefix, not the whole 384-cycle episode
        assert entry.cycles <= 8
        assert len(entry.trace) == entry.cycles

    def test_clear_search_is_memoized(self, cegis_on):
        problem = _trap_problem(cycles=48)
        harness.check_candidate_source(problem, problem.golden_source)
        clears = obs.counter_value("cegis.search_clear")
        skipped = obs.counter_value("cegis.search_skipped")
        # same source again: the disk/memo marker skips the search
        harness._GOLDEN_CACHE.clear()
        harness.check_candidate_source(problem, problem.golden_source)
        assert obs.counter_value("cegis.search_clear") == clears
        assert obs.counter_value("cegis.search_skipped") > skipped

    def test_near_miss_suite_measures_extra_kills(self, cegis_on):
        """CEGIS kills everything scalar kills plus the seeded traps."""
        scalar_kills = 0
        cegis_kills = 0
        problems = [(_trap_problem(), TRAP_MUTANT)]
        for family in ("counter", "fifo", "edge_detector"):
            module = _family_module(family)
            problem = _problem(module, f"nearmiss-{family}", cycles=384)
            problems.extend(
                (problem, mutant.source) for mutant in mutate(module)
            )
        for problem, candidate in problems:
            previous = cegis.configure(_legacy_config())
            try:
                _clear_cegis_state()
                old, _ = harness.check_candidate_source(problem, candidate)
            finally:
                cegis.configure(previous)
            _clear_cegis_state()
            new, _ = harness.check_candidate_source(problem, candidate)
            if not old:
                scalar_kills += 1
                assert not new  # refinement
            if not new:
                cegis_kills += 1
        assert cegis_kills >= scalar_kills + 1  # the trap is extra


# -- distinguishing-set persistence (hypothesis) -----------------------------


def _width_trap_problem(width, trap_value):
    """Parametric trap: q == d+1 except when d equals the trap value."""
    hi = (1 << width) - 1
    trap_value &= hi
    name = f"fuzz_trap_w{width}_v{trap_value}"
    golden = f"""module {name}(
  input wire clk,
  input wire rst,
  input wire [{width - 1}:0] d,
  output wire [{width - 1}:0] q
);
  reg [{width - 1}:0] r;
  always @(posedge clk) begin
    if (rst)
      r <= {width}'d0;
    else
      r <= d + {width}'d1;
  end
  assign q = r;
endmodule
"""
    # on the trap value the mutant holds d instead of d+1 — never equal
    # to the golden's d+1 (mod 2^width), so the trap is always observable
    mutant = golden.replace(
        f"r <= d + {width}'d1;",
        f"r <= (d == {width}'d{trap_value}) ? d : d + {width}'d1;",
    )
    interface = ModuleInterface(
        module_name=name,
        clock="clk",
        reset="rst",
        inputs=[("d", width)],
        outputs=[("q", width)],
    )
    module = GeneratedModule(
        family="fuzz",
        source=golden,
        interface=interface,
        description="fuzz trap",
        params={},
    )
    problem = EvalProblem(
        problem_id=name, module=module, stimulus_cycles=16, stimulus_seed=9
    )
    return problem, mutant


class TestDistinguishingSetFuzz:
    @settings(max_examples=12, deadline=None)
    @given(
        width=st.integers(min_value=2, max_value=12),
        trap=st.integers(min_value=0, max_value=(1 << 12) - 1),
    )
    def test_replay_passes_golden_fails_minting_mutant(self, width, trap):
        """Every persisted vector: golden replays clean, the mutant that
        minted it keeps failing."""
        import tempfile

        previous = sim_cache.configure(tempfile.mkdtemp())
        config = cegis.CegisConfig(
            enabled=True, search_rounds=2, search_lanes=8
        )
        prior = cegis.configure(config)
        _clear_cegis_state()
        try:
            problem, mutant = _width_trap_problem(width, trap)
            # boundary traps (0 / max) die to round 0; interior values
            # may legitimately survive the bounded search
            harness.check_candidate_source(problem, mutant)
            ds = cegis.distinguishing_set(problem)
            ref = harness._golden_ref(problem)
            golden_design = ref.design
            mutant_design = elaborate(
                parse_source(mutant), problem.module.name
            )
            for entry in ds:
                golden_verdict = cegis._check_entry(
                    ref, entry, golden_design, problem
                )
                assert golden_verdict.equivalent
                mutant_verdict = cegis._check_entry(
                    ref, entry, mutant_design, problem
                )
                assert not mutant_verdict.equivalent
        finally:
            cegis.configure(prior)
            sim_cache.configure(previous)
            _clear_cegis_state()

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=16),
        cycles=st.integers(min_value=1, max_value=6),
        n_entries=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_round_trip_is_byte_stable_across_backend_version(
        self, width, cycles, n_entries, seed
    ):
        """store→load→re-encode is the identity on the payload bytes,
        and those bytes do not depend on BACKEND_VERSION (which lives in
        the cache envelope, not the payload)."""
        import tempfile

        rng = DeterministicRNG(seed)
        hi = (1 << width) - 1
        ds = cegis.DistinguishingSet()
        for index in range(n_entries):
            ds.add(
                cegis.DistinguishingVector.from_run(
                    vectors=[
                        {"d": rng.fork("v", index, c).randint(0, hi)}
                        for c in range(cycles)
                    ],
                    output_names=("q",),
                    trace=[
                        (rng.fork("t", index, c).randint(0, hi),)
                        for c in range(cycles)
                    ],
                    origin=f"fuzz:{index}",
                )
            )
        blob = cegis.set_bytes(ds)
        previous = sim_cache.configure(tempfile.mkdtemp())
        try:
            sim_cache.store("cegis-set", cegis.encode_set(ds), "k", str(seed))
            loaded = cegis.decode_set(
                sim_cache.load("cegis-set", "k", str(seed))
            )
            assert loaded is not None
            assert cegis.set_bytes(loaded) == blob
            # the payload bytes are independent of the envelope version
            original_version = sim_cache.BACKEND_VERSION
            sim_cache.BACKEND_VERSION = original_version + 1
            try:
                assert cegis.set_bytes(loaded) == blob
                # a bumped version evicts the envelope (stale artifacts
                # never deserialize), it does not corrupt reads
                assert sim_cache.load("cegis-set", "k", str(seed)) is None
            finally:
                sim_cache.BACKEND_VERSION = original_version
        finally:
            sim_cache.configure(previous)

    def test_persisted_set_merges_across_saves(self, cegis_on):
        problem, mutant = _width_trap_problem(8, 255)
        harness.check_candidate_source(problem, mutant)
        minted = cegis.distinguishing_set(problem)
        assert len(minted) >= 1
        # a "different worker" (fresh in-process state) stores a new
        # vector; both survive the merge
        cegis._SET_CACHE.clear()
        other = cegis.distinguishing_set(problem)
        extra = cegis.DistinguishingVector.from_run(
            vectors=[{"d": 1}],
            output_names=("q",),
            trace=[(2,)],
            origin="other-worker",
        )
        other.add(extra)
        cegis._save_set(problem, other)
        cegis._SET_CACHE.clear()
        merged = cegis.distinguishing_set(problem)
        origins = {entry.origin for entry in merged}
        assert "other-worker" in origins
        assert any(origin.startswith("search:") for origin in origins)

    def test_set_capacity_is_enforced(self):
        ds = cegis.DistinguishingSet()
        for index in range(5):
            added = ds.add(
                cegis.DistinguishingVector.from_run(
                    vectors=[{"d": index}],
                    output_names=("q",),
                    trace=[(index,)],
                ),
                max_set=3,
            )
            assert added == (index < 3)
        assert len(ds) == 3


# -- coverage oracles --------------------------------------------------------


TOGGLE_FF = """module toggle_ff(
  input wire clk,
  input wire rst,
  input wire en,
  output wire q
);
  reg state;
  always @(posedge clk) begin
    if (rst)
      state <= 1'b0;
    else if (en)
      state <= ~state;
  end
  assign q = state;
endmodule
"""

FSM_TWOSTATE = """module fsm2(
  input wire clk,
  input wire rst,
  input wire go,
  output wire busy
);
  reg state;
  always @(posedge clk) begin
    if (rst)
      state <= 1'b0;
    else if (state == 1'b0 && go)
      state <= 1'b1;
    else if (state == 1'b1 && !go)
      state <= 1'b0;
  end
  assign busy = state;
endmodule
"""


class TestCoverageOracles:
    def test_hand_computed_toggle_ff_points(self):
        """Every new-point count of the toggle FF, observation by
        observation, against POINTS_PER_BIT accounting done by hand."""
        design = elaborate(parse_source(TOGGLE_FF), "toggle_ff")
        cov = CoverageTracker(design, exclude=("clk", "rst"))
        # covered signals: en(1), q(1), state(1) → 3 bits → 12 points
        assert cov.total_points == 3 * POINTS_PER_BIT
        bench = Testbench(design, clock="clk", reset="rst")
        bench.apply_reset()
        # baseline: en=0,q=0,state=0 → three level-0 points
        assert cov.observe_sim(bench.sim) == 3
        bench.drive({"en": 1})
        bench.tick()
        # en rose to 1 (level-1 + rose), state/q toggled 0→1 after the
        # enabled edge (level-1 + rose each) → 6 new points
        assert cov.observe_sim(bench.sim) == 6
        bench.drive({"en": 1})
        bench.tick()
        # state/q fall 1→0: one "fell" point each; en unchanged
        assert cov.observe_sim(bench.sim) == 2
        bench.drive({"en": 0})
        bench.tick()
        # en fell — the final point; tracker is now saturated forever
        assert cov.observe_sim(bench.sim) == 1
        assert cov.covered_points == cov.total_points == 12
        assert cov.fraction() == 1.0
        assert cov.saturation_cycle == 4
        assert not cov.uncovered()

    def test_fsm_saturation_fires_at_exact_cycle(self):
        design = elaborate(parse_source(FSM_TWOSTATE), "fsm2")
        cov = CoverageTracker(design, exclude=("clk", "rst"))
        bench = Testbench(design, clock="clk", reset="rst")
        bench.apply_reset()
        cov.observe_sim(bench.sim)
        # go high two cycles (busy rises), then low (busy falls): all 12
        # points covered at observation 4, same shape as the toggle FF
        for go in (1, 1, 0, 0, 0, 0):
            bench.drive({"go": go})
            bench.tick()
            cov.observe_sim(bench.sim)
        assert cov.covered_points == cov.total_points
        assert cov.saturation_cycle == 4
        # window w saturates exactly when cycles - last_new >= w
        assert cov.saturated(3)
        assert not cov.saturated(4)
        bench.drive({"go": 0})
        bench.tick()
        cov.observe_sim(bench.sim)
        assert cov.saturated(4)

    @pytest.mark.parametrize("backend", ["interp", "compiled", "batch"])
    def test_counters_match_across_backends(self, backend):
        """Identical stimulus → identical tracker state and identical
        sim.coverage.* counter deltas on every backend."""
        module = _family_module("fifo")
        design = elaborate(parse_source(module.source), module.name)
        stimulus = random_stimulus(design, 32, seed=5)
        before = {
            name: obs.counter_value(f"sim.coverage.{name}")
            for name in ("observes", "new_points")
        }
        if backend == "batch":
            from repro.sim.testbench import BatchTestbench

            bench = BatchTestbench(design, n_lanes=1, clock="clk", reset="rst")
        else:
            bench = Testbench(
                design, clock="clk", reset="rst", backend=backend
            )
        cov = CoverageTracker(design, exclude=("clk", "rst"))
        bench.apply_reset()
        cov.observe_sim(bench.sim)
        for vector in stimulus:
            bench.drive(vector)
            bench.tick()
            cov.observe_sim(bench.sim)
        deltas = {
            name: obs.counter_value(f"sim.coverage.{name}") - before[name]
            for name in ("observes", "new_points")
        }
        summary = cov.summary()
        expected = getattr(
            TestCoverageOracles, "_fifo_reference", None
        )
        if expected is None:
            TestCoverageOracles._fifo_reference = (summary, deltas)
        else:
            assert (summary, deltas) == expected

    def test_multi_lane_observation_unions_lanes(self):
        design = elaborate(
            parse_source(
                "module pair(input wire [1:0] a, output wire [1:0] y);\n"
                "  assign y = a;\nendmodule"
            ),
            "pair",
        )
        cov = CoverageTracker(design)
        # two lanes driving complementary values cover both levels of
        # every bit in a single observation
        assert cov.observe([[0, 3], [0, 3]]) == 8
        assert cov.observe([[3, 0], [3, 0]]) == 8  # toggles both ways
        assert cov.fraction() == 1.0

    def test_unknown_signal_is_rejected(self):
        design = elaborate(
            parse_source(
                "module one(input wire a, output wire y);\n"
                "  assign y = a;\nendmodule"
            ),
            "one",
        )
        with pytest.raises(ValueError):
            CoverageTracker(design, signals=["a", "nope"])


class TestCoverageTruncation:
    def test_truncation_shortens_stimulus_with_identical_verdicts(
        self, cache_dir
    ):
        module = _family_module("edge_detector")
        problem = _problem(module, "cov-trunc", cycles=384, seed=5)
        candidates = _mutant_candidates(module)
        previous = cegis.configure(_legacy_config())
        try:
            legacy = [
                harness.check_candidate_source(problem, c)
                for c in candidates
            ]
        finally:
            cegis.configure(previous)
        config = cegis.CegisConfig(
            enabled=True,
            coverage_stimulus=True,
            coverage_window=16,
            search_rounds=0,
        )
        previous = cegis.configure(config)
        _clear_cegis_state()
        try:
            truncated = [
                harness.check_candidate_source(problem, c)
                for c in candidates
            ]
            ref = harness._golden_ref(problem)
        finally:
            cegis.configure(previous)
        assert truncated == legacy
        assert ref.coverage is not None
        assert len(ref.stimulus) < ref.full_cycles == 384
        saturation = ref.coverage["saturation_cycle"]
        # trace stops one window past the last new coverage point
        assert len(ref.trace) <= saturation + config.coverage_window

    def test_measure_only_mode_keeps_full_depth(self, cache_dir):
        module = _family_module("counter")
        problem = _problem(module, "cov-measure", cycles=64, seed=5)
        config = cegis.CegisConfig(enabled=True, search_rounds=0)
        previous = cegis.configure(config)
        _clear_cegis_state()
        try:
            passed, _ = harness.check_candidate_source(
                problem, problem.golden_source
            )
            ref = harness._golden_ref(problem)
        finally:
            cegis.configure(previous)
        assert passed
        assert ref.coverage is not None  # measured...
        assert len(ref.stimulus) == 64  # ...but not truncated

    def test_golden_modes_do_not_alias_cache_entries(self, cache_dir):
        module = _family_module("counter")
        problem = _problem(module, "cov-alias", cycles=64, seed=5)
        previous = cegis.configure(_legacy_config())
        try:
            legacy_ref = harness._golden_ref(problem)
        finally:
            cegis.configure(previous)
        config = cegis.CegisConfig(
            enabled=True, coverage_stimulus=True, coverage_window=4,
            search_rounds=0,
        )
        previous = cegis.configure(config)
        try:
            truncated_ref = harness._golden_ref(problem)
        finally:
            cegis.configure(previous)
        assert legacy_ref is not truncated_ref
        assert legacy_ref.coverage is None
        assert truncated_ref.coverage is not None


# -- configuration, fingerprint, worker plumbing -----------------------------


class TestConfigPlumbing:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(cegis.ENV_ENABLED, raising=False)
        assert not cegis.active_config().enabled
        monkeypatch.setenv(cegis.ENV_ENABLED, "1")
        monkeypatch.setenv(cegis.ENV_MAX_SET, "7")
        monkeypatch.setenv(cegis.ENV_ROUNDS, "1")
        config = cegis.active_config()
        assert config.enabled and config.max_set == 7
        assert config.search_rounds == 1

    def test_fingerprint_token_tracks_config(self):
        assert cegis.CegisConfig().fingerprint_token() == "off"
        on = cegis.CegisConfig(enabled=True)
        assert on.fingerprint_token().startswith("on:")
        assert (
            cegis.CegisConfig(enabled=True, max_set=8).fingerprint_token()
            != on.fingerprint_token()
        )

    def test_plan_fingerprint_covers_cegis_token(self):
        from repro.engine.cluster.protocol import plan_fingerprint

        off = plan_fingerprint([], b"blob", cegis_token="off")
        on = plan_fingerprint([], b"blob", cegis_token="on:set32")
        assert off != on
        # default resolves the live config (off in this test process)
        assert plan_fingerprint([], b"blob") == off

    def test_check_stage_reapplies_config_after_unpickle(self, cache_dir):
        from repro.evalkit.stages import CheckStage

        config = cegis.CegisConfig(enabled=True, max_set=5)
        previous = cegis.configure(config)
        try:
            stage = CheckStage({}, cache_dir=cache_dir)
        finally:
            cegis.configure(previous)
        assert stage.cegis_config == config
        blob = pickle.dumps(stage)
        prior = cegis.configure(_legacy_config())
        try:
            pickle.loads(blob)
            # unpickling re-applied the captured config process-wide
            assert cegis.active_config() == config
        finally:
            cegis.configure(prior)

    def test_old_check_stage_pickles_still_load(self, cache_dir):
        from repro.evalkit.stages import CheckStage

        stage = CheckStage({}, cache_dir=cache_dir)
        state = stage.__getstate__() if hasattr(
            stage, "__getstate__"
        ) else dict(stage.__dict__)
        state.pop("cegis_config", None)  # a pre-CEGIS payload
        rebuilt = CheckStage.__new__(CheckStage)
        prior = cegis.configure(None)
        try:
            rebuilt.__setstate__(state)
            assert not cegis.active_config().enabled
        finally:
            cegis.configure(prior)
