"""Shared fixtures: one small synthetic world and its derived artifacts.

Expensive artifacts (world, scrape, curated dataset, trained models) are
session-scoped so the suite stays fast while many test modules share
realistic inputs.
"""

from __future__ import annotations

import pytest

from repro.core.comparison import ModelZoo
from repro.core.freeset import FreeSetBuilder
from repro.copyright import collect_copyrighted_corpus
from repro.github import SimulatedGitHubAPI, WorldConfig, generate_world
from repro.llm import LanguageModel
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate as generate_module

SMALL_WORLD_CONFIG = WorldConfig(
    n_repos=80,
    seed=0xA11CE,
    mega_file_modules=12,
)


@pytest.fixture(scope="session")
def world():
    return generate_world(SMALL_WORLD_CONFIG)


@pytest.fixture(scope="session")
def api(world):
    return SimulatedGitHubAPI(world)


@pytest.fixture(scope="session")
def freeset_result(world):
    return FreeSetBuilder(world=world).build()


@pytest.fixture(scope="session")
def raw_files(freeset_result):
    return freeset_result.raw_files


@pytest.fixture(scope="session")
def copyrighted_corpus(raw_files):
    return collect_copyrighted_corpus(raw_files)


@pytest.fixture(scope="session")
def module_pool():
    """A pool of generated modules for corpus-level tests."""
    rng = DeterministicRNG(0x906)
    return [generate_module(rng.fork(i)) for i in range(120)]


@pytest.fixture(scope="session")
def tiny_verilog_corpus(module_pool):
    return [m.source for m in module_pool]


@pytest.fixture(scope="session")
def tiny_model(tiny_verilog_corpus):
    """A small trained LM shared by sampler/benchmark tests."""
    return LanguageModel.pretrain(
        "tiny", tiny_verilog_corpus[:60], num_merges=200
    )


@pytest.fixture(scope="session")
def model_zoo(raw_files, copyrighted_corpus):
    return ModelZoo(
        raw_files,
        list(copyrighted_corpus.entries.values()),
        max_train_tokens=200_000,
    )
