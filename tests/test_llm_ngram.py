"""Tests for the n-gram count tables and backoff predictor."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.llm.ngram import (
    DEFAULT_ORDERS,
    NGramCounts,
    NGramLM,
    hash_context,
    _hash_contexts,
)

ORDERS = (4, 2, 1, 0)


class TestHashing:
    def test_vectorized_matches_python(self):
        tokens = np.arange(50, dtype=np.int64)
        for order in (1, 3, 7):
            vec = _hash_contexts(tokens, order)
            for i in (0, 5, len(vec) - 1):
                window = list(tokens[i:i + order])
                assert int(vec[i]) == hash_context(window, order)

    def test_order_zero_constant(self):
        tokens = np.array([5, 6, 7], dtype=np.int64)
        hashes = _hash_contexts(tokens, 0)
        assert len(set(hashes.tolist())) == 1

    def test_short_context_rejected(self):
        with pytest.raises(ValueError):
            hash_context([1, 2], 5)


class TestTraining:
    def test_counts_simple_sequence(self):
        counts = NGramCounts.train([[1, 2, 3, 1, 2, 4]], orders=ORDERS)
        lm = NGramLM(counts)
        nexts, weights, order = lm.distribution([9, 9, 9, 1, 2])
        assert order == 2
        assert sorted(zip(nexts.tolist(), weights.tolist())) == [
            (3, 1.0), (4, 1.0)
        ]

    def test_ngrams_do_not_cross_files(self):
        counts = NGramCounts.train([[1, 2], [3, 4]], orders=(2, 1, 0))
        lm = NGramLM(counts)
        # context [2, 3] spans the file boundary; must not exist at order 2
        _, _, order = lm.distribution([2, 3])
        assert order < 2

    def test_unigram_fallback_always_available(self):
        counts = NGramCounts.train([[7, 8, 9]], orders=ORDERS)
        lm = NGramLM(counts)
        nexts, _, order = lm.distribution([12345])
        assert order == 0
        assert set(nexts.tolist()) <= {7, 8, 9}

    def test_empty_model_raises(self):
        counts = NGramCounts(orders=ORDERS)
        with pytest.raises(TrainingError):
            NGramLM(counts).distribution([1])

    def test_order_zero_required(self):
        with pytest.raises(TrainingError):
            NGramCounts(orders=(3, 2))

    def test_orders_must_decrease(self):
        with pytest.raises(TrainingError):
            NGramCounts(orders=(2, 3, 0))

    def test_default_orders_shape(self):
        assert DEFAULT_ORDERS[0] >= 12
        assert DEFAULT_ORDERS[-1] == 0


class TestMerging:
    def test_merge_adds_weighted_counts(self):
        a = NGramCounts.train([[1, 2, 3]], orders=(1, 0))
        b = NGramCounts.train([[1, 2, 3]], orders=(1, 0))
        merged = a.merged_with(b, weight=2.0)
        lm = NGramLM(merged)
        nexts, weights, order = lm.distribution([2])
        assert order == 1
        assert weights.tolist() == [3.0]  # 1 + 2*1

    def test_merge_disjoint_contexts(self):
        a = NGramCounts.train([[1, 2]], orders=(1, 0))
        b = NGramCounts.train([[3, 4]], orders=(1, 0))
        merged = a.merged_with(b)
        lm = NGramLM(merged)
        assert lm.greedy_next([1]) == 2
        assert lm.greedy_next([3]) == 4

    def test_merge_mismatched_orders_rejected(self):
        a = NGramCounts.train([[1, 2]], orders=(1, 0))
        b = NGramCounts.train([[1, 2]], orders=(2, 1, 0))
        with pytest.raises(TrainingError):
            a.merged_with(b)

    def test_merge_preserves_originals(self):
        a = NGramCounts.train([[1, 2, 3]], orders=(1, 0))
        b = NGramCounts.train([[2, 9]], orders=(1, 0))
        a.merged_with(b)
        # a unchanged: context [2] still only continues to 3
        assert NGramLM(a).greedy_next([2]) == 3

    def test_tokens_trained_accumulates(self):
        a = NGramCounts.train([[1] * 10], orders=(1, 0))
        b = NGramCounts.train([[2] * 6], orders=(1, 0))
        merged = a.merged_with(b, weight=0.5)
        assert merged.tokens_trained == pytest.approx(13.0)


class TestBackoff:
    def test_longest_match_wins(self):
        # train: "1 2 3" twice and "9 2 4" once; context [1, 2] should use
        # order 2 (only continuation 3), not the order-1 mix.
        counts = NGramCounts.train(
            [[1, 2, 3], [1, 2, 3], [9, 2, 4]], orders=(2, 1, 0)
        )
        lm = NGramLM(counts)
        _, _, order = lm.distribution([1, 2])
        assert order == 2
        assert lm.greedy_next([1, 2]) == 3

    def test_memorization_of_training_sequence(self):
        sequence = list(range(100, 160))
        counts = NGramCounts.train([sequence], orders=DEFAULT_ORDERS)
        lm = NGramLM(counts)
        context = sequence[:20]
        for expected in sequence[20:40]:
            token = lm.greedy_next(context)
            assert token == expected
            context.append(token)

    def test_greedy_picks_max_count(self):
        counts = NGramCounts.train(
            [[1, 2], [1, 2], [1, 3]], orders=(1, 0)
        )
        assert NGramLM(counts).greedy_next([1]) == 2
