"""Differential tests: lane-parallel batch backend vs the scalar backends.

The batch backend must be *lane-for-lane identical* to the scalar
compiled backend — same per-cycle outputs for every lane under its own
seeded stimulus, same ``SimulationError`` classification — across every
generator family, the vereval problem set, and hypothesis draws; and the
persistent compile cache (:mod:`repro.sim.cache`) must round-trip
artifacts with identical behaviour while rejecting stale-version keys.
"""

import pickle

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import SimulationError
from repro.sim import (
    BatchSimulator,
    BatchTestbench,
    CompiledSimulator,
    InterpreterSimulator,
    Simulator,
    Testbench,
    UnbatchableDesign,
    batch_design,
    configure_lane_representation,
    elaborate,
    lane_representation,
    equivalence_check,
    random_stimulus,
    sweep_random_stimulus,
)
from repro.sim import cache as sim_cache
from repro.sim import make_batch_simulator
from repro.sim.batch import is_stateless_comb
from repro.sim.bitslice import BitsliceSimulator
from repro.utils.rng import DeterministicRNG
from repro.vereval import build_problem_set
from repro.vereval.problems import EvalProblem
from repro.vgen import FAMILIES, generate_family
from repro.vgen.base import GeneratedModule, ModuleInterface
from repro.verilog import parse_source

import repro.vereval.harness as harness

ALL_FAMILIES = sorted(FAMILIES)


def build(source, top):
    return elaborate(parse_source(source), top)


def sweep_module(module, cycles, seeds):
    """Sweep a GeneratedModule on the batch and scalar paths; compare."""
    interface = module.interface
    design = build(module.source, module.name)
    kwargs = dict(
        clock=interface.clock,
        reset=interface.reset,
        reset_active_high=interface.reset_active_high,
    )
    batch = sweep_random_stimulus(design, cycles, seeds, **kwargs)
    scalar = sweep_random_stimulus(
        design, cycles, seeds, backend="compiled", **kwargs
    )
    assert not scalar.vectorized
    assert batch.output_names == scalar.output_names
    assert batch.traces == scalar.traces, module.name
    assert batch.errors == scalar.errors, module.name
    return batch


class TestEveryFamilyLaneIdentity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_lane_identical(self, family):
        vectorized = 0
        for seed in range(2):
            module = generate_family(
                family, DeterministicRNG(seed).fork("batchdiff", family)
            )
            result = sweep_module(module, 24, seeds=range(4))
            vectorized += result.vectorized
        # Every current generator family lane-lowers; if one stops doing
        # so this assert flags the silent loss of vector coverage.
        assert vectorized > 0, f"{family} never took the lane-parallel path"


class TestProblemSetLaneIdentity:
    def test_vereval_goldens_lane_identical(self):
        problems = build_problem_set(n_problems=20)
        assert problems
        for problem in problems:
            sweep_module(
                problem.module,
                cycles=problem.stimulus_cycles,
                seeds=[problem.stimulus_seed, problem.stimulus_seed + 1],
            )


@settings(max_examples=15, deadline=None)
@given(
    family=st.sampled_from(ALL_FAMILIES),
    seed=st.integers(0, 2**20),
    stim_seed=st.integers(0, 2**20),
    lanes=st.integers(1, 5),
)
def test_fuzz_lane_identity(family, seed, stim_seed, lanes):
    module = generate_family(
        family, DeterministicRNG(seed).fork("batchfuzz", family)
    )
    sweep_module(module, 12, seeds=range(stim_seed, stim_seed + lanes))


class TestOneLaneFacade:
    """``backend="batch"`` with one lane is a drop-in scalar simulator."""

    @pytest.mark.parametrize("family", ["alu", "fifo", "traffic_fsm", "lfsr"])
    def test_cycle_identical_to_interpreter(self, family):
        module = generate_family(
            family, DeterministicRNG(7).fork("facade", family)
        )
        interface = module.interface
        benches = []
        for backend in ("batch", "interp"):
            design = build(module.source, module.name)
            benches.append(
                Testbench(
                    design,
                    clock=interface.clock,
                    reset=interface.reset,
                    reset_active_high=interface.reset_active_high,
                    backend=backend,
                )
            )
        batch, interp = benches
        assert isinstance(batch.sim, BatchSimulator)
        assert isinstance(interp.sim, InterpreterSimulator)
        batch.apply_reset()
        interp.apply_reset()
        for vector in random_stimulus(batch.design, 24, seed=13):
            assert batch.step(vector) == interp.step(vector)
        # Full-state check, not just ports (1-lane views scalarize).
        assert batch.sim.state == interp.sim.state
        assert batch.sim.mems == interp.sim.mems

    def test_scalar_fallback_for_unlevelizable(self):
        # Comb loop: unbatchable and unlevelizable; backend="batch" falls
        # back to the scalar path, which classifies the loop identically.
        source = (
            "module m(output y); wire a, b;"
            " assign a = ~b; assign b = a; assign y = a; endmodule"
        )
        with pytest.raises(UnbatchableDesign):
            batch_design(build(source, "m"), 2)
        with pytest.raises(SimulationError) as err:
            Simulator(build(source, "m"), backend="batch")
        assert "combinational loop" in str(err.value)

    def test_fallback_is_scalar_simulator(self):
        # Self-assign: compiled-but-not-levelized; "batch" lands on the
        # compiled fixpoint fallback, preserving behaviour.
        source = (
            "module m(input clk, input en, output wire [3:0] count);"
            " reg [3:0] count;"
            " always @(posedge clk) if (en) count <= count + 1'b1;"
            " assign count = count;"
            " endmodule"
        )
        sim = Simulator(build(source, "m"), backend="batch")
        assert isinstance(sim, CompiledSimulator)
        assert not isinstance(sim, BatchSimulator)
        sim.poke("en", 1)
        for _ in range(3):
            sim.poke("clk", 0)
            sim.poke("clk", 1)
        assert sim.peek("count") == 3

    def test_wide_design_falls_back_when_pinned_int64(self):
        # 64-bit datapath exceeds the int64 lane budget; pinning the
        # representation to int64 restores the historical scalar
        # fallback (the default census routes wide designs to spill).
        source = (
            "module m(input [63:0] a, output [63:0] y); assign y = ~a;"
            " endmodule"
        )
        previous = configure_lane_representation("int64")
        try:
            with pytest.raises(UnbatchableDesign):
                batch_design(build(source, "m"), 1)
            sim = Simulator(build(source, "m"), backend="batch")
            assert not isinstance(sim, BatchSimulator)
            sim.poke("a", (1 << 64) - 2)
            assert sim.peek("y") == 1
        finally:
            configure_lane_representation(previous)

    def test_wide_design_runs_on_spill_lanes(self):
        # Default census: >63-bit designs run lane-parallel on the
        # multi-word spill representation — no scalar fallback.
        source = (
            "module m(input [127:0] a, output [127:0] y); assign y = ~a;"
            " endmodule"
        )
        design = build(source, "m")
        assert lane_representation(design) == "spill"
        bd = batch_design(design, 4)
        assert bd.representation == "spill"
        sim = Simulator(design, backend="batch")
        assert isinstance(sim, BatchSimulator)
        value = (1 << 128) - 2
        sim.poke("a", value)
        assert sim.peek("y") == value ^ ((1 << 128) - 1)

    def test_explicit_lane_request_on_unbatchable_raises_cleanly(self):
        # The scalar fallback cannot honour an explicit n_lanes request;
        # that must be a SimulationError, not a constructor TypeError.
        source = (
            "module m(input [63:0] a, output [63:0] y); assign y = ~a;"
            " endmodule"
        )
        previous = configure_lane_representation("int64")
        try:
            with pytest.raises(SimulationError) as err:
                Simulator(build(source, "m"), backend="batch", n_lanes=4)
            assert "lane-parallelizable" in str(err.value)
        finally:
            configure_lane_representation(previous)


class TestErrorClassificationPerLane:
    def test_sweep_replays_errors_identically(self):
        # Multi-driven net: drivers disagree once poked, and the design
        # is unlevelizable, so the sweep replays on the scalar backend —
        # per-lane errors must equal a lane-by-lane scalar run.
        source = (
            "module m(input a, input b, output y);"
            " assign y = a; assign y = b; endmodule"
        )
        design = build(source, "m")
        batch = sweep_random_stimulus(design, 8, range(3), clock=None)
        scalar = sweep_random_stimulus(
            design, 8, range(3), clock=None, backend="compiled"
        )
        assert batch.errors == scalar.errors
        assert batch.traces == scalar.traces
        assert any(error for error in batch.errors)

    def test_equivalence_check_accepts_batch_backend(self):
        source = (
            "module m(input [3:0] a, output [3:0] y); assign y = ~a;"
            " endmodule"
        )
        golden = build(source, "m")
        candidate = build(source, "m")
        stim = random_stimulus(golden, 16, seed=1)
        assert equivalence_check(
            golden, candidate, stim, clock=None, backend="batch"
        ).equivalent


class TestBatchTestbench:
    def test_lanes_step_independent_episodes(self):
        module = generate_family("fifo", DeterministicRNG(0x9EEF))
        design = build(module.source, module.name)
        interface = module.interface
        bench = BatchTestbench(
            design, 3, clock=interface.clock, reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
        bench.apply_reset()
        inputs = bench.input_names
        rng = DeterministicRNG(5)
        lane_vectors = [
            {
                name: np.array(
                    [rng.randint(0, 1) for _ in range(3)], dtype=np.int64
                )
                for name in inputs
            }
            for _ in range(10)
        ]
        traces = [[] for _ in range(3)]
        for vector in lane_vectors:
            outputs = bench.step(vector)
            for lane in range(3):
                traces[lane].append(
                    {name: int(values[lane]) for name, values in outputs.items()}
                )
        # Reference: scalar benches driven with each lane's column.
        for lane in range(3):
            ref = Testbench(
                design, clock=interface.clock, reset=interface.reset,
                reset_active_high=interface.reset_active_high,
            )
            ref.apply_reset()
            for cycle, vector in enumerate(lane_vectors):
                expected = ref.step(
                    {name: int(vector[name][lane]) for name in inputs}
                )
                assert traces[lane][cycle] == expected, (lane, cycle)

    def test_poke_many_routes_lanes(self):
        design = build(
            "module m(input [7:0] a, input [7:0] b, output [8:0] y);"
            " assign y = a + b; endmodule", "m"
        )
        sim = BatchSimulator(design, n_lanes=4)
        sim.poke_many({
            "a": np.array([1, 2, 3, 4], dtype=np.int64),
            "b": np.array([10, 20, 30, 40], dtype=np.int64),
        })
        assert sim.peek_lanes("y").tolist() == [11, 22, 33, 44]

    def test_unbatchable_design_raises_at_construction(self):
        source = (
            "module m(input a, output y);"
            " assign y = a; assign y = ~a; endmodule"
        )
        with pytest.raises(UnbatchableDesign):
            BatchTestbench(build(source, "m"), 2, clock=None)

    def test_ragged_custom_stimuli_match_scalar(self):
        # Custom episodes of unequal length cannot run in lockstep; the
        # sweep must take the scalar path and report per-lane lengths.
        design = build(
            "module m(input [3:0] a, output [3:0] y); assign y = ~a;"
            " endmodule", "m"
        )
        stimuli = [
            [{"a": 1}, {"a": 2}, {"a": 3}],
            [{"a": 4}, {"a": 5}, {"a": 6}, {"a": 7}, {"a": 8}],
        ]
        swept = sweep_random_stimulus(
            design, 0, seeds=(0, 1), clock=None, stimuli=stimuli
        )
        reference = sweep_random_stimulus(
            design, 0, seeds=(0, 1), clock=None, stimuli=stimuli,
            backend="compiled",
        )
        assert not swept.vectorized
        assert [len(t) for t in swept.traces] == [3, 5]
        assert swept.traces == reference.traces
        # Equal-length custom episodes do vectorize, identically.
        even = [episode[:3] for episode in stimuli]
        lockstep = sweep_random_stimulus(
            design, 0, seeds=(0, 1), clock=None, stimuli=even
        )
        assert lockstep.vectorized
        assert lockstep.traces == [t[:3] for t in reference.traces]


class TestLaneRepresentationMatrix:
    """Identity across the int64 / spill / bitslice lane backends.

    Each representation must stay lane-for-lane identical to the scalar
    compiled backend; a pin the design cannot honour falls back to the
    scalar path, which is itself identity-checked by ``sweep_module``.
    """

    @pytest.mark.parametrize(
        "representation", ["int64", "spill", "bitslice"]
    )
    @pytest.mark.parametrize("family", ["alu", "traffic_fsm", "lfsr"])
    def test_pinned_representation_lane_identical(
        self, representation, family
    ):
        module = generate_family(
            family, DeterministicRNG(11).fork("repmatrix", family)
        )
        previous = configure_lane_representation(representation)
        try:
            sweep_module(module, 16, seeds=range(3))
        finally:
            configure_lane_representation(previous)

    def test_bitheavy_design_picks_bitslice(self):
        # 1-bit-dominated control logic: the width census selects the
        # bit-sliced backend, and the facade builds its simulator.
        source = (
            "module ctl(input a, input b, input c, input d,"
            " output x, output y, output z);"
            " assign x = (a & b) | (c ^ d);"
            " assign y = a ? b : c;"
            " assign z = ~(a ^ b ^ c ^ d);"
            " endmodule"
        )
        design = build(source, "ctl")
        assert lane_representation(design) == "bitslice"
        assert batch_design(design, 8).representation == "bitslice"
        sim = make_batch_simulator(design, n_lanes=8)
        assert isinstance(sim, BitsliceSimulator)
        batch = sweep_random_stimulus(design, 12, range(8), clock=None)
        scalar = sweep_random_stimulus(
            design, 12, range(8), clock=None, backend="compiled"
        )
        assert batch.vectorized
        assert batch.traces == scalar.traces

    def test_spill_divergence_replays_identically(self):
        # A dynamic field write past the spill guard (sig_width + 64)
        # raises BatchDivergence; the sweep must transparently replay on
        # the scalar backend with identical raw out-of-range semantics.
        source = (
            "module m(input [7:0] idx, input [7:0] d,"
            " output reg [127:0] y);"
            " always @* begin y = 128'd0; y[idx*32 +: 8] = d; end"
            " endmodule"
        )
        design = build(source, "m")
        assert lane_representation(design) == "spill"
        batch = sweep_random_stimulus(design, 8, range(4), clock=None)
        scalar = sweep_random_stimulus(
            design, 8, range(4), clock=None, backend="compiled"
        )
        assert not batch.vectorized  # the guard forced the replay
        assert batch.traces == scalar.traces
        assert batch.errors == scalar.errors

    def test_wide_error_classification_matches_scalar(self):
        # Wide (spill-census) multi-driven net: unlevelizable, so every
        # lane replays scalar — per-lane error classification must match
        # a lane-by-lane scalar run exactly.
        source = (
            "module m(input [95:0] a, input [95:0] b,"
            " output [95:0] y); assign y = a; assign y = b; endmodule"
        )
        design = build(source, "m")
        assert lane_representation(design) == "spill"
        batch = sweep_random_stimulus(design, 6, range(3), clock=None)
        scalar = sweep_random_stimulus(
            design, 6, range(3), clock=None, backend="compiled"
        )
        assert batch.errors == scalar.errors
        assert batch.traces == scalar.traces
        assert any(batch.errors)


@settings(max_examples=12, deadline=None)
@given(
    family=st.sampled_from(ALL_FAMILIES),
    seed=st.integers(0, 2**18),
    representation=st.sampled_from(["int64", "spill", "bitslice"]),
)
def test_fuzz_representation_identity(family, seed, representation):
    module = generate_family(
        family, DeterministicRNG(seed).fork("repfuzz", family)
    )
    previous = configure_lane_representation(representation)
    try:
        sweep_module(module, 10, seeds=range(3))
    finally:
        configure_lane_representation(previous)


class TestCombinationalFastPath:
    """The all-vectors lane check must be verdict-identical and actually
    engage for stateless combinational problems."""

    @staticmethod
    def _comb_problem(cycles=32):
        problems = build_problem_set(n_problems=12, stimulus_cycles=cycles)
        for problem in problems:
            if problem.module.interface.clock is None:
                return problem
        raise AssertionError("no combinational problem in the set")

    def test_fast_path_engages(self):
        problem = self._comb_problem()
        design = build(problem.golden_source, problem.module.name)
        assert is_stateless_comb(
            batch_design(design, problem.stimulus_cycles)
        )
        ref = harness._GoldenRef(problem)
        verdict = harness._check_all_vectors_batch(ref, design, problem)
        assert verdict is not None and verdict.equivalent

    def test_verdicts_identical_with_and_without_fast_path(self):
        problem = self._comb_problem()
        golden = problem.golden_source
        candidates = [
            golden,
            golden.replace("+", "-", 1).replace("&", "|", 1),
            golden.replace("assign", "assign", 1),  # identity variant
        ]
        for source in candidates:
            previous = harness.BATCH_CHECK_ENABLED
            try:
                harness.BATCH_CHECK_ENABLED = True
                fast = harness.check_candidate_source(problem, source)
                harness._GOLDEN_CACHE.clear()
                harness.BATCH_CHECK_ENABLED = False
                slow = harness.check_candidate_source(problem, source)
            finally:
                harness.BATCH_CHECK_ENABLED = previous
                harness._GOLDEN_CACHE.clear()
            assert fast == slow, source

    def test_mismatch_bookkeeping_identical(self):
        problem = self._comb_problem()
        ref = harness._GoldenRef(problem)
        broken = build(
            problem.golden_source.replace("assign", "assign ", 1)
            .replace("+", "^", 1).replace("-", "&", 1),
            problem.module.name,
        )
        fast = harness._check_all_vectors_batch(ref, broken, problem)
        previous = harness.BATCH_CHECK_ENABLED
        try:
            harness.BATCH_CHECK_ENABLED = False
            slow = harness._check_against_trace(ref, broken, problem)
        finally:
            harness.BATCH_CHECK_ENABLED = previous
        if fast is not None:  # replacement may be a no-op for some styles
            assert fast == slow

    def test_wide_comb_problem_rides_spill_lanes(self):
        # >63-bit combinational family: the all-vectors fast path runs
        # on spill lanes through the retirement engine instead of
        # falling back to the scalar per-cycle loop.
        source = (
            "module widecomb(input [95:0] a, input [95:0] b,"
            " output [96:0] s, output [95:0] x);"
            " assign s = a + b; assign x = a ^ {b[47:0], b[95:48]};"
            " endmodule"
        )
        module = GeneratedModule(
            family="widecomb",
            source=source,
            interface=ModuleInterface(
                module_name="widecomb", clock=None, reset=None,
                reset_active_high=True,
                inputs=[("a", 96), ("b", 96)],
                outputs=[("s", 97), ("x", 96)],
            ),
            description="wide combinational datapath",
        )
        problem = EvalProblem(
            problem_id="widecomb", module=module, stimulus_cycles=24,
            stimulus_seed=2,
        )
        design = build(source, "widecomb")
        assert lane_representation(design) == "spill"
        ref = harness._GoldenRef(problem)
        fallbacks = obs.counter_value("batch.fallback_scalar")
        verdict = harness._check_all_vectors_batch(ref, design, problem)
        assert verdict is not None and verdict.equivalent
        assert obs.counter_value("batch.fallback_scalar") == fallbacks
        # Mismatch bookkeeping stays scalar-identical at full width.
        broken = build(source.replace("a + b", "a - b"), "widecomb")
        fast = harness._check_all_vectors_batch(ref, broken, problem)
        previous = harness.BATCH_CHECK_ENABLED
        try:
            harness.BATCH_CHECK_ENABLED = False
            slow = harness._check_against_trace(ref, broken, problem)
        finally:
            harness.BATCH_CHECK_ENABLED = previous
        assert fast == slow
        assert not fast.equivalent

    def test_sequential_problem_skips_fast_path(self):
        problems = build_problem_set(n_problems=33)
        problem = next(
            p for p in problems if p.module.interface.clock is not None
        )
        ref = harness._GoldenRef(problem)
        design = build(problem.golden_source, problem.module.name)
        assert harness._check_all_vectors_batch(ref, design, problem) is None

    def test_comb_latch_candidate_skips_fast_path(self):
        # `always @* if (en) y = a;` levelizes but holds state between
        # settles (a combinational latch): outputs are NOT a pure
        # function of inputs, so the all-vectors trick must refuse it —
        # and the fast-on/fast-off verdicts must agree.
        problem = self._comb_problem()
        latch = (
            f"module {problem.module.name}(input en, input [3:0] a,"
            " output reg [3:0] y);"
            " always @(*) if (en) y = a;"
            " endmodule"
        )
        latch_design = build(latch, problem.module.name)
        assert not is_stateless_comb(batch_design(latch_design, 4))
        ref = harness._GoldenRef(problem)
        # Interface differs from the problem's golden, so go straight at
        # the fast-path helper: it must decline, not mis-verdict.
        assert harness._check_all_vectors_batch(
            ref, latch_design, problem
        ) is None

    def test_latchy_golden_verdicts_identical(self):
        # End to end: a problem whose golden *is* a latch must produce
        # the same verdict with the fast path enabled and disabled for a
        # byte-identical candidate (which exercises the stateless gate).
        module = generate_family(
            "mux", DeterministicRNG(3).fork("latchy", "mux")
        )
        latch_source = (
            f"module {module.name}(input en, input [3:0] a,"
            " output reg [3:0] y);"
            " always @(*) if (en) y = a;"
            " endmodule"
        )
        module.source = latch_source  # golden is now the latch
        problem = EvalProblem(
            problem_id="latchy", module=module, stimulus_cycles=16,
            stimulus_seed=9,
        )
        previous = harness.BATCH_CHECK_ENABLED
        try:
            harness.BATCH_CHECK_ENABLED = True
            harness._GOLDEN_CACHE.clear()
            fast = harness.check_candidate_source(problem, latch_source)
            harness.BATCH_CHECK_ENABLED = False
            harness._GOLDEN_CACHE.clear()
            slow = harness.check_candidate_source(problem, latch_source)
        finally:
            harness.BATCH_CHECK_ENABLED = previous
            harness._GOLDEN_CACHE.clear()
        assert fast == slow == (True, "")


class TestGoldenCacheLRU:
    def test_eviction_is_lru_not_wholesale(self, monkeypatch):
        monkeypatch.setattr(harness, "_GOLDEN_CACHE_MAX", 2)
        monkeypatch.setattr(harness, "_GOLDEN_CACHE", type(
            harness._GOLDEN_CACHE
        )())
        problems = build_problem_set(n_problems=3)
        ref0 = harness._golden_ref(problems[0])
        harness._golden_ref(problems[1])
        # touch problem 0 so it is most-recently-used
        assert harness._golden_ref(problems[0]) is ref0
        harness._golden_ref(problems[2])  # evicts problem 1, not 0
        assert len(harness._GOLDEN_CACHE) == 2
        assert harness._golden_ref(problems[0]) is ref0
        keys = {key[0] for key in harness._GOLDEN_CACHE}
        assert problems[1].problem_id not in keys


class TestTupleTraces:
    def test_trace_rows_are_tuples_aligned_to_output_names(self):
        problem = build_problem_set(n_problems=1)[0]
        ref = harness._GoldenRef(problem)
        assert isinstance(ref.output_names, tuple) and ref.output_names
        assert all(isinstance(row, tuple) for row in ref.trace)
        assert all(len(row) == len(ref.output_names) for row in ref.trace)

    def test_verdict_matches_equivalence_check(self):
        problems = build_problem_set(n_problems=6)
        for problem in problems:
            interface = problem.module.interface
            ref = harness._GoldenRef(problem)
            golden = build(problem.golden_source, problem.module.name)
            verdict = harness._check_against_trace(ref, golden, problem)
            reference = equivalence_check(
                build(problem.golden_source, problem.module.name),
                golden,
                ref.stimulus,
                clock=interface.clock,
                reset=interface.reset,
                reset_active_high=interface.reset_active_high,
            )
            assert verdict == reference


class TestPersistentCache:
    def _problem(self) -> EvalProblem:
        return build_problem_set(n_problems=1)[0]

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        assert sim_cache.cache_dir() is None
        assert sim_cache.store("x", 1, "a") is False
        assert sim_cache.load("x", "a") is None

    def test_design_round_trip_identical_behaviour(self, tmp_path):
        previous = sim_cache.configure(str(tmp_path))
        try:
            problem = self._problem()
            source = problem.golden_source
            name = problem.module.name
            assert sim_cache.get_design(source, name) is None  # cold
            fresh = build(source, name)
            assert sim_cache.put_design(source, name, fresh)
            loaded = sim_cache.get_design(source, name)  # disk hit
            assert loaded is not None and loaded is not fresh
            interface = problem.module.interface
            stim = random_stimulus(loaded, 16, seed=3)
            verdict = equivalence_check(
                fresh, loaded, stim,
                clock=interface.clock, reset=interface.reset,
                reset_active_high=interface.reset_active_high,
            )
            assert verdict.equivalent  # compiled-backend behaviour identical
        finally:
            sim_cache.configure(previous)

    def test_golden_ref_round_trip(self, tmp_path):
        previous = sim_cache.configure(str(tmp_path))
        try:
            problem = self._problem()
            harness._GOLDEN_CACHE.clear()
            cold = harness._golden_ref(problem)
            harness._GOLDEN_CACHE.clear()
            warm = harness._golden_ref(problem)  # disk hit, new object
            assert warm is not cold
            assert warm.trace == cold.trace
            assert warm.output_names == cold.output_names
            assert warm.signature == cold.signature
            assert (warm.error, warm.error_phase) == (
                cold.error, cold.error_phase
            )
            passed, reason = harness.check_candidate_source(
                problem, problem.golden_source
            )
            assert passed, reason
        finally:
            sim_cache.configure(previous)
            harness._GOLDEN_CACHE.clear()

    def test_stale_version_key_rejected(self, tmp_path, monkeypatch):
        previous = sim_cache.configure(str(tmp_path))
        try:
            sim_cache.store("golden-ref", {"old": True}, "src", "m")
            assert sim_cache.load("golden-ref", "src", "m") == {"old": True}
            monkeypatch.setattr(
                sim_cache, "BACKEND_VERSION", sim_cache.BACKEND_VERSION + 1
            )
            assert sim_cache.load("golden-ref", "src", "m") is None
        finally:
            sim_cache.configure(previous)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        previous = sim_cache.configure(str(tmp_path))
        try:
            assert sim_cache.store("blob", [1, 2, 3], "k")
            pkl = next(tmp_path.rglob("*.pkl"))
            pkl.write_bytes(b"not a pickle")
            assert sim_cache.load("blob", "k") is None
            assert not pkl.exists()
        finally:
            sim_cache.configure(previous)

    def test_design_batch_cache_not_pickled(self):
        design = build(
            "module m(input a, output y); assign y = ~a; endmodule", "m"
        )
        BatchSimulator(design, n_lanes=2)  # populates design._batch
        clone = pickle.loads(pickle.dumps(design))
        assert not hasattr(clone, "_batch")
        assert isinstance(
            Simulator(clone, backend="batch"), BatchSimulator
        )
