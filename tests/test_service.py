"""The evaluation service under supervision, faults, and restarts.

Every recovery promise the service makes is driven deterministically
through :mod:`repro.testing.faults` and asserted against the invariant
that matters: a supervised, crashed, resumed, or degraded job finishes
with verdicts identical, candidate for candidate, to an uninterrupted
serial run of the same plan.
"""

from __future__ import annotations

import datetime
import json
import os
import pickle
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.engine import CheckpointStore
from repro.errors import PlanInterrupted
from repro.evalkit import EvalPlan, PassAtKTask
from repro.github.scraper import ScrapedFile
from repro.llm import LanguageModel
from repro.service import (
    CurationJobSpec,
    EvalJobSpec,
    EvalService,
    JobStore,
    QuotaExceeded,
    ServiceConfig,
    UnknownJobError,
    serve,
)
from repro.testing import faults
from repro.vereval import EvalConfig, build_problem_set


@pytest.fixture(autouse=True)
def _clean_faults():
    # Each EvalService points the process-wide sim cache at its own
    # root; restore the previous override so later test modules see the
    # state they expect.
    from repro.sim import cache as sim_cache

    previous = sim_cache.configure(None)
    sim_cache.configure(previous)
    faults.disarm()
    yield
    faults.disarm()
    sim_cache.configure(previous)


def _make_plan(n_problems=2, n_samples=2, chunk_size=2):
    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=n_problems),
        EvalConfig(n_samples=n_samples, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )
    return EvalPlan([model], [task], chunk_size=chunk_size)


def _verdicts(run):
    return [
        (r.model_name, r.task_id, r.unit_id, r.sample_index, r.passed,
         r.completion)
        for r in run.records
    ]


@pytest.fixture(scope="module")
def plan():
    return _make_plan()


@pytest.fixture(scope="module")
def serial_run(plan):
    return _make_plan().run()


def _config(**overrides):
    base = dict(
        workers=1,
        quota=8,
        max_retries=2,
        executors=("serial",),
        retry_base_delay_s=0.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


# -- the job store -----------------------------------------------------------


class TestJobStore:
    def test_ledger_replays_across_reopen(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create("alice", "eval", {"payload": 1})
        store.transition(job.job_id, "running", attempts=1)
        store.transition(job.job_id, "done",
                         result_summary={"records": 4})
        reopened = JobStore(tmp_path)
        replayed = reopened.get(job.job_id)
        assert replayed.state == "done"
        assert replayed.attempts == 1
        assert replayed.result_summary == {"records": 4}
        assert reopened.load_payload(job.job_id) == {"payload": 1}

    def test_recover_marks_running_as_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        running = store.create("alice", "eval", 1)
        store.transition(running.job_id, "running", attempts=1)
        queued = store.create("alice", "eval", 2)
        done = store.create("alice", "eval", 3)
        store.transition(done.job_id, "running")
        store.transition(done.job_id, "done")
        reopened = JobStore(tmp_path)
        requeued = reopened.recover()
        assert [j.job_id for j in requeued] == [
            running.job_id, queued.job_id
        ]
        assert reopened.get(running.job_id).state == "resumable"
        assert reopened.get(done.job_id).state == "done"

    def test_illegal_transition_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create("alice", "eval", 1)
        store.transition(job.job_id, "cancelled")
        with pytest.raises(ValueError, match="illegal transition"):
            store.transition(job.job_id, "running")

    def test_unknown_job(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJobError):
            store.get("job-999999")

    def test_active_count_per_client(self, tmp_path):
        store = JobStore(tmp_path)
        store.create("alice", "eval", 1)
        bob = store.create("bob", "eval", 2)
        finished = store.create("alice", "eval", 3)
        store.transition(finished.job_id, "running")
        store.transition(finished.job_id, "done")
        assert store.active_count("alice") == 1
        assert store.active_count("bob") == 1
        store.transition(bob.job_id, "running")
        assert store.active_count("bob") == 1  # running is still active

    def test_torn_final_ledger_line_is_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        store.create("alice", "eval", 1)
        with open(tmp_path / JobStore.LEDGER, "a") as handle:
            handle.write('{"seq": 99, "job": "job-0000')  # torn append
        reopened = JobStore(tmp_path)
        assert len(reopened.jobs()) == 1


# -- supervised execution ----------------------------------------------------


class TestSupervision:
    def test_clean_job_completes(self, tmp_path, plan, serial_run):
        service = EvalService(tmp_path, _config())
        service.start()
        try:
            job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
            assert service.join(timeout_s=120)
            final = service.status(job.job_id)
            assert final.state == "done"
            assert final.attempts == 1
            assert final.result_summary["records"] == len(
                serial_run.records
            )
            assert _verdicts(service.result(job.job_id)) == _verdicts(
                serial_run
            )
        finally:
            service.close()

    def test_crash_resumes_from_checkpoint(
        self, tmp_path, plan, serial_run
    ):
        # The third save (block 2's segment) crashes attempt 1 after one
        # complete segment+head pair is durable; attempt 2 must resume
        # from that checkpoint — not restart — and finish identically.
        faults.arm("checkpoint.save", "raise", nth=3)
        service = EvalService(tmp_path, _config())
        service.start()
        try:
            job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
            assert service.join(timeout_s=120)
            final = service.status(job.job_id)
            assert final.state == "done", final.to_dict()
            assert final.attempts == 2
            assert _verdicts(service.result(job.job_id)) == _verdicts(
                serial_run
            )
            # resume really started from the saved block: the engine
            # skipped the checkpointed specs on attempt 2
            events = [
                json.loads(line)
                for line in (
                    service.store.root / "ledger.jsonl"
                ).read_text().splitlines()
            ]
            crashed = [
                e for e in events if e.get("error") == "InjectedFault"
            ]
            assert len(crashed) == 1
            assert crashed[0]["state"] == "resumable"
        finally:
            service.close()

    def test_retry_budget_exhausted_fails_typed(self, tmp_path, plan):
        # Every save fails: the supervisor retries max_retries times,
        # then the job lands failed with the typed cause on the ledger.
        faults.arm("checkpoint.save", "raise", nth=0)
        service = EvalService(tmp_path, _config(max_retries=1))
        service.start()
        try:
            job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
            assert service.join(timeout_s=120)
            final = service.status(job.job_id)
            assert final.state == "failed"
            assert final.attempts == 2  # 1 + max_retries
            assert final.error == "InjectedFault"
            assert "retry budget exhausted" in final.detail
            assert service.result(job.job_id) is None
        finally:
            service.close()

    def test_nonretryable_error_fails_immediately(self, tmp_path):
        # A payload the service cannot run is a logic error, not a
        # transient fault: one attempt, failed, no retries burned.
        service = EvalService(tmp_path, _config(max_retries=3))
        job = service.store.create("anon", "eval", {"not": "a spec"})
        service._run_job(service.store.get(job.job_id))
        final = service.status(job.job_id)
        assert final.state == "failed"
        assert final.attempts == 1
        assert final.error == "ReproError"


# -- drain and restart -------------------------------------------------------


class TestDrainAndRestart:
    def test_stop_hook_drains_at_boundary_then_resumes(
        self, tmp_path, serial_run
    ):
        # Plan-level drain mechanics, deterministically: stop() is
        # polled once per checkpoint block, so flipping on the second
        # poll drains with exactly one block saved.
        plan = _make_plan()
        store = CheckpointStore(tmp_path / "ckpt")
        polls = []
        with pytest.raises(PlanInterrupted, match="drained at a"):
            plan.run(
                store=store, tag="job", checkpoint_every=2,
                stop=lambda: polls.append(1) or len(polls) > 1,
            )
        head = store.load("job")
        assert head is not None and head["segments"] == 1
        resumed = _make_plan().run(
            store=store, tag="job", checkpoint_every=2
        )
        assert _verdicts(resumed) == _verdicts(serial_run)

    def test_drain_marks_running_job_resumable_then_restart_finishes(
        self, tmp_path, plan, serial_run
    ):
        # First service: draining before the block loop starts, so the
        # stop hook fires on the first poll and the job lands resumable.
        service = EvalService(tmp_path, _config())
        job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
        service.drain()
        service._run_job(service.store.get(job.job_id))
        assert service.status(job.job_id).state == "resumable"

        # Second service over the same root: recover() re-enqueues the
        # resumable job and it completes identically.
        restarted = EvalService(tmp_path, _config())
        recovered = restarted.start()
        try:
            assert [j.job_id for j in recovered] == [job.job_id]
            assert restarted.join(timeout_s=120)
            final = restarted.status(job.job_id)
            assert final.state == "done"
            assert _verdicts(restarted.result(job.job_id)) == _verdicts(
                serial_run
            )
        finally:
            restarted.close()

    def test_interrupted_running_job_recovers_on_reopen(
        self, tmp_path, plan
    ):
        # A service that died mid-job (no clean drain): the ledger still
        # says running; the next open converts it to resumable.
        service = EvalService(tmp_path, _config())
        job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
        service.store.transition(job.job_id, "running", attempts=1)

        restarted = EvalService(tmp_path, _config())
        recovered = restarted.store.recover()
        assert [j.job_id for j in recovered] == [job.job_id]
        assert restarted.status(job.job_id).state == "resumable"

    def test_sigterm_drains_the_service_process(self, tmp_path):
        # Signal wiring end to end: SIGTERM -> drain -> clean exit 0.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--root", str(tmp_path / "svc"), "--workers", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()  # the startup banner
            assert "repro.service on http://127.0.0.1:" in line
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "draining" in out
        assert "drained" in out


# -- quotas ------------------------------------------------------------------


class TestQuota:
    def test_per_client_quota_enforced(self, tmp_path, plan):
        # Workers never started: submitted jobs stay queued (active).
        service = EvalService(tmp_path, _config(quota=2))
        service.submit(EvalJobSpec(plan), client="alice")
        service.submit(EvalJobSpec(plan), client="alice")
        with pytest.raises(QuotaExceeded, match="alice"):
            service.submit(EvalJobSpec(plan), client="alice")
        # Another client has their own bucket.
        service.submit(EvalJobSpec(plan), client="bob")

    def test_cancel_frees_quota(self, tmp_path, plan):
        service = EvalService(tmp_path, _config(quota=1))
        job = service.submit(EvalJobSpec(plan), client="alice")
        with pytest.raises(QuotaExceeded):
            service.submit(EvalJobSpec(plan), client="alice")
        service.cancel(job.job_id)
        assert service.status(job.job_id).state == "cancelled"
        service.submit(EvalJobSpec(plan), client="alice")


# -- degradation -------------------------------------------------------------


class TestDegradation:
    def test_ladder_degrades_to_serial_with_identical_verdicts(
        self, tmp_path, plan, serial_run
    ):
        # Both upper rungs are unavailable every time they are tried:
        # the job must degrade cluster -> pool -> serial, record the
        # ladder on the job, and still produce identical verdicts —
        # without charging the retry budget for infrastructure trouble.
        faults.arm("service.executor.cluster", "raise", nth=0)
        faults.arm("service.executor.pool", "raise", nth=0)
        service = EvalService(
            tmp_path, _config(executors=("cluster", "pool", "serial"))
        )
        service.start()
        try:
            before = obs.counter_value("service.degraded")
            job = service.submit(EvalJobSpec(plan, checkpoint_every=2))
            assert service.join(timeout_s=120)
            final = service.status(job.job_id)
            assert final.state == "done", final.to_dict()
            assert final.attempts == 1  # degradation is not a retry
            assert final.degraded == ["cluster", "pool"]
            assert final.executor == "serial"
            assert (
                obs.counter_value("service.degraded") == before + 2
            )
            assert _verdicts(service.result(job.job_id)) == _verdicts(
                serial_run
            )
        finally:
            service.close()

    def test_empty_ladder_exhaustion_fails_job(self, tmp_path, plan):
        faults.arm("service.executor.serial", "raise", nth=0)
        service = EvalService(
            tmp_path, _config(executors=("serial",), max_retries=0)
        )
        service.start()
        try:
            job = service.submit(EvalJobSpec(plan))
            assert service.join(timeout_s=60)
            final = service.status(job.job_id)
            assert final.state == "failed"
            assert final.error == "ExecutorUnavailable"
        finally:
            service.close()


# -- warm caches -------------------------------------------------------------


class TestWarmCaches:
    def test_tasks_interned_by_protocol_fingerprint(
        self, tmp_path, serial_run
    ):
        service = EvalService(tmp_path, _config())
        service.start()
        try:
            hits = obs.counter_value("service.warm.hits")
            misses = obs.counter_value("service.warm.misses")
            first = service.submit(
                EvalJobSpec(_make_plan(), checkpoint_every=2)
            )
            assert service.join(timeout_s=120)
            second = service.submit(
                EvalJobSpec(_make_plan(), checkpoint_every=2)
            )
            assert service.join(timeout_s=120)
            assert obs.counter_value("service.warm.misses") == misses + 1
            assert obs.counter_value("service.warm.hits") == hits + 1
            assert len(service.warm) == 1
            for job in (first, second):
                assert service.status(job.job_id).state == "done"
                assert _verdicts(service.result(job.job_id)) == _verdicts(
                    serial_run
                )
        finally:
            service.close()

    def test_sim_cache_configured_under_service_root(self, tmp_path):
        from repro.sim import cache as sim_cache

        previous = sim_cache.cache_dir()
        service = EvalService(tmp_path, _config())
        try:
            assert sim_cache.cache_dir() == str(
                service.store.root / "simcache"
            )
        finally:
            sim_cache.configure(previous)


# -- curation jobs -----------------------------------------------------------


class TestCurationJobs:
    def test_curation_job_runs_to_done(self, tmp_path):
        from repro.curation.pipeline import CurationConfig

        files = [
            ScrapedFile(
                repo_full_name=f"acme/repo{i}",
                author="acme",
                path=f"rtl/mod{i}.v",
                content=(
                    f"module m{i}(input a, output y); "
                    "assign y = ~a; endmodule"
                ),
                license_key="mit",
                created_at=datetime.date(2024, 1, 1),
            )
            for i in range(4)
        ]
        service = EvalService(tmp_path, _config())
        service.start()
        try:
            job = service.submit(
                CurationJobSpec(CurationConfig(), files)
            )
            assert service.join(timeout_s=120)
            final = service.status(job.job_id)
            assert final.state == "done", final.to_dict()
            assert final.result_summary["kind"] == "curation"
            assert final.result_summary["files_in"] == 4
            dataset = service.result(job.job_id)
            assert len(dataset.files) == final.result_summary[
                "files_kept"
            ]
        finally:
            service.close()


# -- the HTTP window ---------------------------------------------------------


class TestHTTP:
    @pytest.fixture()
    def running(self, tmp_path):
        service = EvalService(tmp_path, _config())
        service.start()
        server = serve(service)
        yield service, f"http://127.0.0.1:{server.port}"
        service.close()
        server.shutdown()

    def _post(self, url, data=b"", headers=None):
        request = urllib.request.Request(
            url, data=data, method="POST", headers=dict(headers or {})
        )
        return json.load(urllib.request.urlopen(request))

    def test_submit_status_result_roundtrip(
        self, running, plan, serial_run
    ):
        service, base = running
        body = pickle.dumps(EvalJobSpec(plan, checkpoint_every=2))
        job = self._post(
            f"{base}/submit", body, {"X-Repro-Client": "alice"}
        )
        assert job["state"] == "queued"
        assert job["client"] == "alice"
        assert service.join(timeout_s=120)
        status = json.load(
            urllib.request.urlopen(f"{base}/status/{job['job_id']}")
        )
        assert status["state"] == "done"
        summary = json.load(
            urllib.request.urlopen(f"{base}/result/{job['job_id']}")
        )
        assert summary["result_summary"]["records"] == len(
            serial_run.records
        )
        blob = urllib.request.urlopen(
            f"{base}/result/{job['job_id']}?pickle=1"
        ).read()
        assert _verdicts(pickle.loads(blob)) == _verdicts(serial_run)
        jobs = json.load(urllib.request.urlopen(f"{base}/jobs"))
        assert [j["job_id"] for j in jobs["jobs"]] == [job["job_id"]]

    def test_quota_maps_to_429(self, tmp_path, plan):
        service = EvalService(tmp_path, _config(quota=1))
        server = serve(service)  # workers not started: job stays queued
        base = f"http://127.0.0.1:{server.port}"
        try:
            body = pickle.dumps(EvalJobSpec(plan))
            self._post(f"{base}/submit", body, {"X-Repro-Client": "a"})
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post(
                    f"{base}/submit", body, {"X-Repro-Client": "a"}
                )
            assert info.value.code == 429
        finally:
            server.shutdown()

    def test_unknown_routes_and_jobs_are_404(self, running):
        _service, base = running
        for url in (
            f"{base}/status/job-999999",
            f"{base}/result/job-999999",
            f"{base}/nope",
        ):
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(url)
            assert info.value.code == 404

    def test_cancel_and_drain_over_http(self, tmp_path, plan):
        service = EvalService(tmp_path, _config(quota=4))
        server = serve(service)  # workers not started: cancel while queued
        base = f"http://127.0.0.1:{server.port}"
        try:
            body = pickle.dumps(EvalJobSpec(plan))
            job = self._post(f"{base}/submit", body)
            cancelled = self._post(f"{base}/cancel/{job['job_id']}")
            assert cancelled["state"] == "cancelled"
            assert self._post(f"{base}/drain") == {"draining": True}
            with pytest.raises(urllib.error.HTTPError):
                self._post(f"{base}/submit", body)  # draining: rejected
        finally:
            server.shutdown()
