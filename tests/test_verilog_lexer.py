"""Unit tests for the Verilog lexer."""

import pytest

from repro.errors import LexError
from repro.verilog import lex
from repro.verilog.tokens import TokenKind


def kinds(source):
    return [t.kind for t in lex(source)[:-1]]


def texts(source):
    return [t.text for t in lex(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = lex("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = lex("counter_reg")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "counter_reg"

    def test_keyword_recognized(self):
        (tok,) = lex("module")[:-1]
        assert tok.kind is TokenKind.KEYWORD

    def test_identifier_with_dollar_suffix(self):
        (tok,) = lex("data$x")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "data$x"

    def test_system_identifier(self):
        (tok,) = lex("$display")[:-1]
        assert tok.kind is TokenKind.SYSTEM_IDENT
        assert tok.text == "$display"

    def test_lone_dollar_is_error(self):
        with pytest.raises(LexError):
            lex("$ 1")

    def test_illegal_character(self):
        with pytest.raises(LexError):
            lex("module \x01")


class TestNumbers:
    def test_plain_decimal(self):
        (tok,) = lex("42")[:-1]
        assert tok.kind is TokenKind.NUMBER
        assert tok.text == "42"

    def test_underscored_decimal(self):
        (tok,) = lex("1_000")[:-1]
        assert tok.text == "1_000"

    @pytest.mark.parametrize(
        "literal",
        ["8'hFF", "4'b1010", "'b1", "16'd65535", "8'o377", "4'sb1010", "8'hx"],
    )
    def test_based_literals(self, literal):
        (tok,) = lex(literal)[:-1]
        assert tok.kind is TokenKind.BASED_NUMBER
        assert tok.text == literal

    def test_missing_base_digits_is_error(self):
        with pytest.raises(LexError):
            lex("8'h")

    def test_bad_base_char_is_error(self):
        with pytest.raises(LexError):
            lex("8'q1")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* hi\nthere */ b") == ["a", "b"]

    def test_unterminated_block_comment_is_error(self):
        with pytest.raises(LexError):
            lex("a /* never closed")

    def test_comment_marker_inside_string_kept(self):
        toks = lex('"no // comment"')[:-1]
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "no // comment"


class TestOperators:
    @pytest.mark.parametrize(
        "op",
        ["<<<", ">>>", "===", "!==", "<<", ">>", "<=", ">=", "==", "!=",
         "&&", "||", "**", "+:", "-:", "~&", "~|", "~^"],
    )
    def test_multichar_operator_lexes_whole(self, op):
        (tok,) = lex(op)[:-1]
        assert tok.kind is TokenKind.OP
        assert tok.text == op

    def test_greedy_matching_of_shift_vs_lt(self):
        assert texts("a<<b") == ["a", "<<", "b"]

    def test_adjacent_ops_split_correctly(self):
        assert texts("a<= =b") == ["a", "<=", "=", "b"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = lex("a\n  b")[:-1]
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_directive_consumed_to_eol(self):
        toks = lex("`timescale 1ns/1ps\nmodule")[:-1]
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert toks[1].text == "module"


class TestStrings:
    def test_escapes_decoded(self):
        (tok,) = lex(r'"a\nb\"c"')[:-1]
        assert tok.text == 'a\nb"c'

    def test_unterminated_string_is_error(self):
        with pytest.raises(LexError):
            lex('"open')

    def test_newline_in_string_is_error(self):
        with pytest.raises(LexError):
            lex('"bad\nstring"')
