"""Tests for the simulated GitHub API: search, cap, rate limit, clone."""

import pytest

from repro.errors import GitHubAPIError
from repro.github import SimulatedGitHubAPI, WorldConfig, generate_world
from repro.github.api import SEARCH_RESULT_CAP, SearchQuery


class TestQueryParsing:
    def test_full_query(self):
        q = SearchQuery.parse(
            "language:verilog license:mit created:2010-01-01..2012-12-31"
        )
        assert q.language == "verilog"
        assert q.license_key == "mit"
        assert q.created_from.year == 2010

    def test_license_none(self):
        q = SearchQuery.parse("license:none")
        assert q.has_license is False

    def test_bad_qualifier(self):
        with pytest.raises(GitHubAPIError):
            SearchQuery.parse("stars:>100")

    def test_bare_term_rejected(self):
        with pytest.raises(GitHubAPIError):
            SearchQuery.parse("riscv")

    def test_unranged_created_rejected(self):
        with pytest.raises(GitHubAPIError):
            SearchQuery.parse("created:2019-01-01")


class TestSearch:
    def test_language_filter_matches_all_repos_with_verilog(self, api, world):
        result = api.search_repositories("language:verilog", per_page=100)
        expected = sum(1 for r in world.repos if r.verilog_files)
        assert result.total_count == expected

    def test_license_facet(self, api, world):
        result = api.search_repositories("language:verilog license:mit")
        for name in result.items:
            assert world.repo(name).license_key == "mit"

    def test_date_range_facet(self, api, world):
        query = "language:verilog created:2015-01-01..2018-12-31"
        result = api.search_repositories(query)
        for name in result.items:
            created = world.repo(name).created_at
            assert 2015 <= created.year <= 2018

    def test_pagination_no_overlap(self, api):
        page1 = api.search_repositories("language:verilog", page=1, per_page=10)
        page2 = api.search_repositories("language:verilog", page=2, per_page=10)
        assert not set(page1.items) & set(page2.items)

    def test_result_cap_flagged(self):
        world = generate_world(
            WorldConfig(n_repos=30, seed=1, mega_file_modules=0)
        )
        api = SimulatedGitHubAPI(world)
        result = api.search_repositories("language:verilog")
        # small world: no truncation
        assert not result.incomplete_results
        assert result.total_count <= SEARCH_RESULT_CAP

    def test_bad_page(self, api):
        with pytest.raises(GitHubAPIError):
            api.search_repositories("language:verilog", page=0)


class TestRateLimit:
    def test_limit_enforced_and_refilled(self):
        world = generate_world(
            WorldConfig(n_repos=5, seed=2, mega_file_modules=0)
        )
        api = SimulatedGitHubAPI(world, searches_per_minute=3)
        for _ in range(3):
            api.search_repositories("language:verilog")
        with pytest.raises(GitHubAPIError) as excinfo:
            api.search_repositories("language:verilog")
        assert excinfo.value.status == 403
        api.sleep_minute()
        api.search_repositories("language:verilog")  # works again
        assert api.stats.rate_limit_hits == 1
        assert api.stats.minutes_elapsed == 1

    def test_clone_costs_no_search_quota(self, world):
        api = SimulatedGitHubAPI(world, searches_per_minute=2)
        api.clone(world.repos[0].full_name)
        assert api.remaining_quota == 2


class TestClone:
    def test_clone_returns_files(self, api, world):
        repo = world.repos[0]
        cloned = api.clone(repo.full_name)
        assert cloned.files == repo.files

    def test_unknown_repo_404(self, api):
        with pytest.raises(GitHubAPIError) as excinfo:
            api.clone("ghost/none")
        assert excinfo.value.status == 404
