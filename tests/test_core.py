"""Integration tests for the core orchestration (FreeSet, FreeV, zoo)."""

import pytest

from repro.core.basecorpus import BaseCorpusConfig, build_base_corpus
from repro.core.comparison import (
    DATASET_POLICIES,
    MODEL_SPECS,
    simulate_prior_dataset,
)
from repro.core.freev import FreeVTrainer
from repro.vereval import EvalConfig


class TestBaseCorpus:
    def test_mix_composition(self):
        corpus = build_base_corpus(
            BaseCorpusConfig(prose_docs=5, c_docs=5, verilog_files=5),
            verilog_slice=["module a; endmodule"],
            contamination_slice=["// secret\nmodule s; endmodule"],
        )
        assert len(corpus) == 16
        assert any("module s; endmodule" in t for t in corpus)
        modules = sum("endmodule" in t for t in corpus)
        assert modules >= 6  # 5 verilog + contamination

    def test_fills_missing_verilog(self):
        corpus = build_base_corpus(
            BaseCorpusConfig(prose_docs=0, c_docs=0, verilog_files=4),
            verilog_slice=["module only_one; endmodule"],
        )
        assert len(corpus) == 4
        assert sum("endmodule" in t for t in corpus) == 4

    def test_deterministic(self):
        config = BaseCorpusConfig(prose_docs=3, c_docs=3, verilog_files=2)
        assert build_base_corpus(config) == build_base_corpus(config)


class TestFreeSet:
    def test_funnel_matches_paper_shape(self, freeset_result):
        funnel = freeset_result.dataset.funnel
        license_stage = funnel.stage("license_filter")
        dedup_stage = funnel.stage("dedup")
        # paper: license keeps ~47% of 1.3M; dedup removes ~62.5%; exact
        # values depend on world scale, so assert generous bands
        assert 0.2 < 1 - license_stage.removal_fraction < 0.8
        assert 0.4 < dedup_stage.removal_fraction < 0.85
        assert funnel.final_count > 0

    def test_copyright_stage_removes_ground_truth(self, freeset_result, world):
        removed_stage = freeset_result.dataset.funnel.stage("copyright_filter")
        assert removed_stage.removed > 0
        final_ids = {f.file_id for f in freeset_result.dataset.files}
        for repo in world.repos:
            for record in repo.verilog_files:
                if record.header_kind == "proprietary":
                    assert f"{repo.full_name}:{record.path}" not in final_ids


class TestPriorDatasets:
    def test_policies_cover_table1_rows(self):
        for name in ("VeriGen", "RTLCoder", "CodeV", "BetterV", "CraftRTL",
                     "OriGen", "FreeSet"):
            assert name in DATASET_POLICIES

    def test_only_freeset_checks_copyright(self):
        checkers = [
            name for name, p in DATASET_POLICIES.items() if p.copyright_check
        ]
        assert checkers == ["FreeSet"]

    def test_verigen_dataset_contains_proprietary(self, raw_files):
        dataset = simulate_prior_dataset(
            DATASET_POLICIES["VeriGen"], raw_files
        )
        from repro.curation import CopyrightFilter

        detector = CopyrightFilter()
        dirty = sum(
            1 for f in dataset.files if not detector.is_clean(f.content)
        )
        assert dirty > 0  # no copyright check -> proprietary files slip in

    def test_codev_length_cap_applied(self, raw_files):
        dataset = simulate_prior_dataset(DATASET_POLICIES["CodeV"], raw_files)
        assert all(len(f.content) <= 2096 for f in dataset.files)

    def test_metadata_propagates(self, raw_files):
        dataset = simulate_prior_dataset(DATASET_POLICIES["RTLCoder"], raw_files)
        assert dataset.structure == "Instruction-Tuning"
        assert dataset.augmented


class TestModelZoo:
    def test_specs_reference_valid_bases_and_policies(self):
        for spec in MODEL_SPECS.values():
            if spec.base is not None:
                assert spec.base in MODEL_SPECS
                assert MODEL_SPECS[spec.base].base is None
            if spec.dataset_policy is not None:
                assert spec.dataset_policy in DATASET_POLICIES

    def test_finetuned_model_builds_on_base(self, model_zoo):
        base = model_zoo.model("Llama-3.1-8B-Instruct")
        freev = model_zoo.model("FreeV-Llama3.1")
        assert freev.tokenizer is base.tokenizer
        assert freev.counts.pair_count > base.counts.pair_count

    def test_cache_and_evict(self, model_zoo):
        first = model_zoo.model("Llama-3.1-8B-Instruct")
        assert model_zoo.model("Llama-3.1-8B-Instruct") is first
        model_zoo.evict("Llama-3.1-8B-Instruct")
        assert model_zoo.model("Llama-3.1-8B-Instruct") is not first


class TestFreeVHeadline:
    @pytest.fixture(scope="class")
    def headline(self, freeset_result):
        trainer = FreeVTrainer(freeset=freeset_result)
        return trainer.headline(
            n_problems=8,
            eval_config=EvalConfig(
                n_samples=4, ks=(1, 4), temperatures=(0.2, 0.8),
                max_new_tokens=300,
            ),
            num_prompts=30,
        )

    def test_freev_improves_passk(self, headline):
        delta = headline.passk_delta()
        assert delta[4] > 0  # the paper's headline: pass@k improves

    def test_freev_violations_stay_low(self, headline):
        # FreeV trains only on filtered data; its violation rate must stay
        # within a few points of its base (paper: base 2% -> FreeV 3%)
        assert (
            headline.freev_violation_rate
            <= headline.base_violation_rate + 0.10
        )

    def test_summary_renders(self, headline):
        text = headline.summary()
        assert "pass@" in text and "violations" in text
