"""Differential tests: compiled backend vs the interpreter reference.

The compiled backend must be *cycle-identical* to the interpreter — same
per-cycle outputs under the same stimulus, same error classification for
combinational loops — across every generator family, the vereval problem
set, and randomized (hypothesis-driven) family/seed/stimulus draws.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import SimulationError
from repro.sim import (
    CompiledSimulator,
    InterpreterSimulator,
    Simulator,
    Testbench,
    compile_design,
    default_backend,
    elaborate,
    equivalence_check,
    random_stimulus,
    set_default_backend,
)
from repro.utils.rng import DeterministicRNG
from repro.vereval import build_problem_set
from repro.vgen import FAMILIES, generate_family
from repro.verilog import parse_source

ALL_FAMILIES = sorted(FAMILIES)


def build(source, top):
    return elaborate(parse_source(source), top)


def lockstep_module(module, cycles=32, stim_seed=11):
    """Run a GeneratedModule on both backends and compare every cycle."""
    interface = module.interface
    benches = []
    for backend in ("compiled", "interp"):
        design = build(module.source, module.name)
        benches.append(
            Testbench(
                design,
                clock=interface.clock,
                reset=interface.reset,
                reset_active_high=interface.reset_active_high,
                backend=backend,
            )
        )
    compiled, interp = benches
    assert isinstance(compiled.sim, CompiledSimulator)
    assert isinstance(interp.sim, InterpreterSimulator)
    compiled.apply_reset()
    interp.apply_reset()
    stimulus = random_stimulus(compiled.design, cycles, seed=stim_seed)
    for cycle, vector in enumerate(stimulus):
        out_compiled = compiled.step(vector)
        out_interp = interp.step(vector)
        assert out_compiled == out_interp, (
            module.name, cycle, out_compiled, out_interp
        )
    # Full-state check, not just ports: every flat signal and memory word.
    assert compiled.sim.state == interp.sim.state
    assert compiled.sim.mems == interp.sim.mems


class TestEveryFamilyDifferential:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_cycle_identical(self, family):
        for seed in range(3):
            module = generate_family(
                family, DeterministicRNG(seed).fork("diff", family)
            )
            lockstep_module(module, cycles=32, stim_seed=seed + 5)


class TestProblemSetDifferential:
    def test_vereval_goldens_cycle_identical(self):
        problems = build_problem_set(n_problems=40)
        assert problems
        for problem in problems:
            lockstep_module(
                problem.module,
                cycles=problem.stimulus_cycles,
                stim_seed=problem.stimulus_seed,
            )


@settings(max_examples=25, deadline=None)
@given(
    family=st.sampled_from(ALL_FAMILIES),
    seed=st.integers(0, 2**20),
    stim_seed=st.integers(0, 2**20),
)
def test_fuzz_lockstep(family, seed, stim_seed):
    module = generate_family(
        family, DeterministicRNG(seed).fork("fuzz", family)
    )
    lockstep_module(module, cycles=16, stim_seed=stim_seed)


class TestErrorClassification:
    LOOP = (
        "module m(output y); wire a, b;"
        " assign a = ~b; assign b = a; assign y = a; endmodule"
    )

    def test_comb_loop_detected_by_both(self):
        for backend in ("compiled", "interp"):
            with pytest.raises(SimulationError) as err:
                Simulator(build(self.LOOP, "m"), backend=backend)
            assert "combinational loop" in str(err.value)

    def test_loop_design_is_not_levelized(self):
        compiled = compile_design(build(self.LOOP, "m"))
        assert not compiled.levelized

    def test_multi_driver_oscillation_matches(self):
        source = (
            "module m(input a, input b, output y);"
            " assign y = a; assign y = b; endmodule"
        )
        for backend in ("compiled", "interp"):
            sim = Simulator(build(source, "m"), backend=backend)
            with pytest.raises(SimulationError):
                sim.poke("a", 1)  # drivers disagree -> never settles

    def test_unknown_signal_errors_match(self):
        design = build("module m(input a, output y); assign y = a;"
                       " endmodule", "m")
        for backend in ("compiled", "interp"):
            sim = Simulator(design, backend=backend)
            with pytest.raises(SimulationError):
                sim.peek("ghost")


class TestFallbackModes:
    def test_self_assign_falls_back_to_fixpoint(self):
        # `assign count = count` (a vgen counter style variant) is a
        # self-edge: not levelizable, still cycle-identical via the
        # compiled fixpoint fallback.
        source = (
            "module m(input clk, input en, output wire [3:0] count);"
            " reg [3:0] count;"
            " always @(posedge clk) if (en) count <= count + 1'b1;"
            " assign count = count;"
            " endmodule"
        )
        compiled = compile_design(build(source, "m"))
        assert not compiled.levelized
        sims = [Simulator(build(source, "m"), backend=b)
                for b in ("compiled", "interp")]
        assert isinstance(sims[0], CompiledSimulator)
        for sim in sims:
            sim.poke("en", 1)
            for _ in range(5):
                sim.poke("clk", 0)
                sim.poke("clk", 1)
        assert sims[0].peek("count") == sims[1].peek("count") == 5

    def test_partial_continuous_assigns_fall_back(self):
        source = (
            "module m(input [3:0] a, input [3:0] b, output [7:0] y);"
            " assign y[3:0] = a; assign y[7:4] = b; endmodule"
        )
        compiled = compile_design(build(source, "m"))
        assert not compiled.levelized  # two comb drivers of y
        sims = [Simulator(build(source, "m"), backend=b)
                for b in ("compiled", "interp")]
        for sim in sims:
            sim.poke("a", 0x5)
            sim.poke("b", 0xA)
        assert sims[0].peek("y") == sims[1].peek("y") == 0xA5

    def test_unsizable_design_falls_back_to_interpreter(self):
        # Part-select bounds that depend on a runtime integer cannot be
        # statically sized: "auto" silently uses the interpreter,
        # "compiled" refuses.
        source = (
            "module m(input [7:0] d, output reg [1:0] y); integer i;"
            " always @(*) begin i = 2; y = d[i + 1:i]; end endmodule"
        )
        design = build(source, "m")
        sim = Simulator(design)  # auto
        assert isinstance(sim, InterpreterSimulator)
        sim.poke("d", 0b1100)
        assert sim.peek("y") == 0b11
        with pytest.raises(SimulationError):
            Simulator(build(source, "m"), backend="compiled")


class TestCompiledStructure:
    def test_fifo_is_levelized_and_slot_indexed(self):
        module = generate_family("fifo", DeterministicRNG(0x9EEF))
        design = build(module.source, module.name)
        compiled = compile_design(design)
        assert compiled.levelized
        assert len(compiled.topo) == len(compiled.nodes) == compiled.comb_count
        assert sorted(compiled.slot_of.values()) == list(
            range(compiled.n_signals)
        )
        # compile is once-per-design (cached on the Design object)
        assert compile_design(design) is compiled

    def test_compile_cache_does_not_pickle(self):
        import pickle

        design = build(
            "module m(input a, output y); assign y = ~a; endmodule", "m"
        )
        Simulator(design)  # populates the compile cache
        clone = pickle.loads(pickle.dumps(design))
        assert not hasattr(clone, "_compiled")
        assert isinstance(Simulator(clone), CompiledSimulator)

    def test_trigger_slots_precomputed(self):
        design = build(
            "module m(input clk, input rst, output reg q);"
            " always @(posedge clk or posedge rst)"
            " if (rst) q <= 0; else q <= ~q; endmodule", "m"
        )
        compiled = compile_design(design)
        assert len(compiled.trigger_slots) == 2
        assert all(isinstance(s, int) for s in compiled.trigger_slots)


class TestPokeSemantics:
    def test_poke_many_matches_serial_pokes(self):
        for family in ("alu", "fifo", "traffic_fsm"):
            module = generate_family(
                family, DeterministicRNG(3).fork("pm", family)
            )
            interface = module.interface
            benches = [
                Testbench(
                    build(module.source, module.name),
                    clock=interface.clock,
                    reset=interface.reset,
                    reset_active_high=interface.reset_active_high,
                )
                for _ in range(2)
            ]
            for bench in benches:
                bench.apply_reset()
            batched, serial = benches
            for vector in random_stimulus(batched.design, 24, seed=9):
                batched.sim.poke_many(vector)
                for name, value in vector.items():
                    serial.sim.poke(name, value)
                batched.tick()
                serial.tick()
                assert batched.sample() == serial.sample()

    def test_poke_many_edge_on_data_input_is_simultaneous(self):
        # Intentional semantics of the batched drive: all vector values
        # land before the single edge-detection pass, so a block edge-
        # triggered on one data input samples the *new* value of the
        # others — unlike N serial pokes, where ordering would decide.
        # Both backends must agree on this.
        source = (
            "module m(input strobe, input [3:0] d, output reg [3:0] q);"
            " always @(posedge strobe) q <= d; endmodule"
        )
        for backend in ("compiled", "interp"):
            sim = Simulator(build(source, "m"), backend=backend)
            sim.poke_many({"strobe": 1, "d": 9})
            assert sim.peek("q") == 9, backend

    def test_poke_many_no_change_is_free(self):
        design = build(
            "module m(input [3:0] a, output [3:0] y); assign y = a;"
            " endmodule", "m"
        )
        sim = Simulator(design)
        sim.poke_many({"a": 5})
        assert sim.peek("y") == 5
        sim.poke_many({"a": 5})  # no-op batch
        assert sim.peek("y") == 5

    def test_out_of_range_bit_write_identical(self):
        # Writing q[9] on a 4-bit register pollutes state above the
        # declared width in the interpreter; the compiled backend must
        # reproduce that bit-for-bit (peek reads raw state).
        source = (
            "module m(input clk, input [3:0] i, input b,"
            " output reg [3:0] q);"
            " always @(posedge clk) q[i] <= b; endmodule"
        )
        sims = [Simulator(build(source, "m"), backend=b)
                for b in ("compiled", "interp")]
        for sim in sims:
            sim.poke("i", 9)
            sim.poke("b", 1)
            sim.poke("clk", 0)
            sim.poke("clk", 1)
        assert sims[0].peek("q") == sims[1].peek("q")


class TestBackendSelection:
    def test_default_backend_roundtrip(self):
        previous = set_default_backend("interp")
        try:
            design = build(
                "module m(input a, output y); assign y = a; endmodule", "m"
            )
            assert isinstance(Simulator(design), InterpreterSimulator)
        finally:
            set_default_backend(previous)
        assert default_backend() == previous

    def test_unknown_backend_rejected(self):
        design = build(
            "module m(input a, output y); assign y = a; endmodule", "m"
        )
        with pytest.raises(SimulationError):
            Simulator(design, backend="verilator")
        with pytest.raises(SimulationError):
            set_default_backend("verilator")

    def test_equivalence_check_accepts_backend(self):
        source = (
            "module m(input [3:0] a, output [3:0] y); assign y = ~a;"
            " endmodule"
        )
        golden = build(source, "m")
        candidate = build(source, "m")
        stim = random_stimulus(golden, 16, seed=1)
        for backend in ("compiled", "interp", "batch"):
            assert equivalence_check(
                golden, candidate, stim, clock=None, backend=backend
            ).equivalent


class TestBitGranularDirty:
    """Bit-level dirty masks: readers of untouched slices of a wide bus
    are skipped, with simulation results identical to the interpreter."""

    _SLICES = """module slices(
  input clk, input [7:0] d,
  output [7:0] lo, output [7:0] hi, output [63:0] whole);
  reg [63:0] bus;
  assign lo = bus[7:0];
  assign hi = bus[63:56];
  assign whole = bus;
  always @(posedge clk) bus[7:0] <= d;
endmodule
"""

    def test_untouched_slice_readers_skip_identically(self):
        design = build(self._SLICES, "slices")
        compiled = Simulator(design, backend="compiled")
        interp = Simulator(design, backend="interp")
        rng = DeterministicRNG(5)
        for _ in range(40):
            d = rng.randint(0, 255)
            for sim in (compiled, interp):
                sim.poke("d", d)
                sim.poke("clk", 1)
                sim.poke("clk", 0)
            for name in ("lo", "hi", "whole"):
                assert compiled.peek(name) == interp.peek(name), name
        # The hi-byte reader never reruns for low-byte writes; the
        # lo/whole readers always do.
        assert compiled.stat_reader_skips > 0

    def test_skip_counter_observed(self):
        design = build(self._SLICES, "slices")
        sim = Simulator(design, backend="compiled")
        before = obs.counter_value("sim.dirty.reader_skips")
        sim.poke("d", 0xAB)
        sim.poke("clk", 1)
        sim.poke("clk", 0)
        after = obs.counter_value("sim.dirty.reader_skips")
        assert after > before
        assert sim.stat_reader_skips == after - before

    def test_full_width_write_wakes_every_reader(self):
        # A write touching the high byte must re-run the hi reader.
        source = self._SLICES.replace(
            "bus[7:0] <= d;", "bus <= {d, 48'd0, d};"
        )
        design = build(source, "slices")
        compiled = Simulator(design, backend="compiled")
        interp = Simulator(design, backend="interp")
        for d in (0x00, 0xFF, 0x5A, 0xA5):
            for sim in (compiled, interp):
                sim.poke("d", d)
                sim.poke("clk", 1)
                sim.poke("clk", 0)
            for name in ("lo", "hi", "whole"):
                assert compiled.peek(name) == interp.peek(name), name
