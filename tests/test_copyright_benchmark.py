"""Tests for prompt construction and the violation benchmark."""

import pytest

from repro.copyright import (
    CopyrightBenchmark,
    PromptSpec,
    build_prompt,
    collect_copyrighted_corpus,
)
from repro.copyright.corpus import corpus_from_world
from repro.llm import LanguageModel


class TestPromptConstruction:
    SOURCE = (
        "// Copyright Acme. All rights reserved.\n"
        "module acme_unit(\n"
        "    input wire [7:0] acme_a,\n"
        "    input wire [7:0] acme_b,\n"
        "    output wire [7:0] acme_y\n"
        ");\n"
        "    assign acme_y = acme_a ^ acme_b;\n"
        "endmodule\n"
    )

    def test_comments_removed(self):
        prompt = build_prompt(self.SOURCE)
        assert "Copyright" not in prompt
        assert prompt.startswith("module acme_unit")

    def test_prefix_fraction(self):
        short = build_prompt(self.SOURCE, PromptSpec(prefix_fraction=0.1))
        longer = build_prompt(self.SOURCE, PromptSpec(prefix_fraction=0.5))
        assert len(short) < len(longer)

    def test_word_cap(self):
        prompt = build_prompt(self.SOURCE, PromptSpec(prefix_fraction=1.0,
                                                      max_words=5))
        assert len(prompt.split()) == 5

    def test_prompt_is_exact_prefix_of_stripped_source(self):
        from repro.utils.textnorm import strip_comments

        stripped = strip_comments(self.SOURCE).lstrip()
        prompt = build_prompt(self.SOURCE)
        assert stripped.startswith(prompt)

    def test_never_ends_mid_word(self, copyrighted_corpus):
        for key in copyrighted_corpus.keys()[:20]:
            prompt = build_prompt(copyrighted_corpus.text(key))
            assert prompt == prompt.rstrip()
            # the character after the prompt in the stripped source must
            # be whitespace (we cut at a word boundary)
            from repro.utils.textnorm import strip_comments

            stripped = strip_comments(copyrighted_corpus.text(key)).lstrip()
            if len(stripped) > len(prompt):
                assert stripped[len(prompt)].isspace()

    def test_empty_source(self):
        assert build_prompt("// only a comment\n") == ""

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            build_prompt("x", PromptSpec(prefix_fraction=0.0))
        with pytest.raises(ValueError):
            build_prompt("x", PromptSpec(max_words=0))


class TestCorpus:
    def test_filter_collection_matches_ground_truth(self, raw_files, world):
        collected = collect_copyrighted_corpus(raw_files)
        truth = corpus_from_world(world)
        # the scraper sees every proprietary file (they live in licensed
        # repos), and the filter has perfect recall on the injected headers
        assert set(truth.entries).issubset(set(collected.entries))

    def test_nonempty(self, copyrighted_corpus):
        assert len(copyrighted_corpus) > 0


class TestBenchmark:
    def test_empty_corpus_rejected(self):
        from repro.copyright.corpus import CopyrightedCorpus

        with pytest.raises(ValueError):
            CopyrightBenchmark(CopyrightedCorpus())

    def test_prompt_sample_deterministic(self, copyrighted_corpus):
        a = CopyrightBenchmark(copyrighted_corpus, num_prompts=10, seed=3)
        b = CopyrightBenchmark(copyrighted_corpus, num_prompts=10, seed=3)
        assert a.prompt_keys == b.prompt_keys

    def test_contaminated_model_violates_more(self, copyrighted_corpus,
                                              tiny_verilog_corpus):
        contaminated_texts = list(copyrighted_corpus.entries.values())
        base = LanguageModel.pretrain(
            "bench-base", tiny_verilog_corpus[:50], num_merges=200
        )
        dirty = base.continual_pretrain(
            "bench-dirty", tiny_verilog_corpus + contaminated_texts
        )
        clean = base.continual_pretrain("bench-clean", tiny_verilog_corpus)
        benchmark = CopyrightBenchmark(
            copyrighted_corpus, num_prompts=25, seed=1
        )
        dirty_report = benchmark.evaluate(dirty, temperature=0.2)
        clean_report = benchmark.evaluate(clean, temperature=0.2)
        assert dirty_report.violation_rate > clean_report.violation_rate
        assert dirty_report.violation_rate > 0.3

    def test_report_fields(self, copyrighted_corpus, tiny_model):
        benchmark = CopyrightBenchmark(copyrighted_corpus, num_prompts=5)
        report = benchmark.evaluate(tiny_model)
        assert len(report.results) == 5
        for result in report.results:
            assert 0.0 <= result.similarity <= 1.0 + 1e-9
            assert result.violation == (result.similarity >= 0.8)
        assert "violations" in report.summary()

    def test_threshold_monotone(self, copyrighted_corpus, tiny_model):
        lo = CopyrightBenchmark(copyrighted_corpus, num_prompts=10,
                                threshold=0.3, seed=2)
        hi = CopyrightBenchmark(copyrighted_corpus, num_prompts=10,
                                threshold=0.95, seed=2)
        r_lo = lo.evaluate(tiny_model)
        r_hi = hi.evaluate(tiny_model)
        assert r_lo.violations >= r_hi.violations
