"""Tests for the syntax checker (the Icarus-substitute filter)."""

from repro.verilog import check_syntax


GOOD = """
module good(input wire clk, input wire rst, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= q + 1'b1;
    end
endmodule
"""


class TestAccepts:
    def test_valid_module(self):
        report = check_syntax(GOOD)
        assert report.ok
        assert report.module_names == ["good"]
        assert report.errors == []

    def test_bool_protocol(self):
        assert check_syntax(GOOD)
        assert not check_syntax("module broken(")

    def test_unknown_submodule_is_not_an_error(self):
        # The paper keeps files whose only issue is cross-file references.
        source = (
            "module top(input a, output y);"
            " other_module u0 (.in(a), .out(y)); endmodule"
        )
        assert check_syntax(source).ok

    def test_directives_ignored(self):
        assert check_syntax("`timescale 1ns/1ps\n" + GOOD).ok


class TestRejects:
    def test_missing_endmodule(self):
        assert not check_syntax("module m(input a);").ok

    def test_dropped_semicolon(self):
        bad = GOOD.replace("q <= 4'd0;", "q <= 4'd0", 1)
        assert not check_syntax(bad).ok

    def test_duplicate_module_names(self):
        report = check_syntax("module m; endmodule module m; endmodule")
        assert not report.ok
        assert "duplicate module" in report.errors[0]

    def test_duplicate_port(self):
        report = check_syntax("module m(input a, input a); endmodule")
        assert not report.ok

    def test_undeclared_header_port(self):
        report = check_syntax("module m(a, b); input a; endmodule")
        assert not report.ok
        assert any("never declared" in e for e in report.errors)

    def test_duplicate_parameter(self):
        report = check_syntax(
            "module m; parameter P = 1; parameter P = 2; endmodule"
        )
        assert not report.ok

    def test_empty_file(self):
        assert not check_syntax("").ok


class TestWorldCorruptions:
    """The corruption kinds injected by the world generator must all be
    caught — otherwise the funnel's syntax stage undercounts."""

    def test_all_corruption_kinds_detected(self):
        from repro.github.world import _corrupt
        from repro.utils.rng import DeterministicRNG

        detected = 0
        total = 0
        for seed in range(24):
            rng = DeterministicRNG(seed)
            bad = _corrupt(GOOD, rng)
            total += 1
            if not check_syntax(bad).ok:
                detected += 1
        # 'typo' corruption replaces 'module' with 'modul', which still
        # fails (no module at top level); all kinds should be caught here.
        assert detected == total
