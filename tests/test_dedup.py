"""Tests and properties for shingling, MinHash, LSH, and dedup."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import (
    LSHIndex,
    MinHasher,
    choose_bands,
    deduplicate,
    estimate_jaccard,
    jaccard_similarity,
    shingle_hashes,
    shingles,
)
from repro.dedup.jaccard import text_jaccard


class TestShingles:
    def test_basic_window(self):
        result = shingles("a b c d", width=2)
        assert result == {"a b", "b c", "c d"}

    def test_short_text_single_shingle(self):
        assert shingles("a b", width=5) == {"a b"}

    def test_empty_text(self):
        assert shingles("") == set()

    def test_comments_ignored(self):
        assert shingles("// x\na b c", 2) == shingles("a b c", 2)

    def test_whitespace_normalized(self):
        assert shingles("a\n\tb   c", 2) == shingles("a b c", 2)

    def test_hashes_sorted_unique_dtype(self):
        hashes = shingle_hashes("module m; endmodule")
        assert hashes.dtype == np.uint64
        assert list(hashes) == sorted(hashes)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            shingles("a", width=0)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity({"a"}, {"a"}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_both_empty_is_one(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_partial(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)


words = st.sampled_from(
    ["module", "wire", "assign", "input", "output", "reg", "clk", "always",
     "begin", "end", "posedge", "a", "b", "y", "q", "sum"]
)
texts = st.lists(words, min_size=10, max_size=120).map(" ".join)


class TestMinHashProperties:
    @settings(max_examples=20, deadline=None)
    @given(texts, texts)
    def test_estimate_tracks_exact_jaccard(self, t1, t2):
        hasher = MinHasher(num_permutations=256)
        estimate = estimate_jaccard(hasher.signature(t1), hasher.signature(t2))
        exact = text_jaccard(t1, t2)
        assert abs(estimate - exact) < 0.25  # 256 perms: s.d. <= ~0.031

    @settings(max_examples=20, deadline=None)
    @given(texts)
    def test_identical_text_estimates_one(self, t):
        hasher = MinHasher()
        assert estimate_jaccard(hasher.signature(t), hasher.signature(t)) == 1.0

    def test_deterministic_across_instances(self):
        a = MinHasher(seed=42).signature("module m; endmodule")
        b = MinHasher(seed=42).signature("module m; endmodule")
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = MinHasher(seed=1).signature("module m; endmodule")
        b = MinHasher(seed=2).signature("module m; endmodule")
        assert not np.array_equal(a.values, b.values)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard(
                MinHasher(num_permutations=16).signature("a"),
                MinHasher(num_permutations=32).signature("a"),
            )


class TestLSH:
    def test_choose_bands_divides_evenly(self):
        for perms in (64, 128, 256):
            bands, rows = choose_bands(perms, 0.85)
            assert bands * rows == perms

    def test_choose_bands_threshold_sane(self):
        bands, rows = choose_bands(128, 0.85)
        inflection = (1.0 / bands) ** (1.0 / rows)
        assert 0.6 < inflection < 0.97

    def test_near_duplicates_are_candidates(self):
        hasher = MinHasher()
        bands, rows = choose_bands(hasher.num_permutations, 0.85)
        index = LSHIndex(bands, rows)
        text = "module m(input a, output y); assign y = ~a; endmodule " * 4
        near = "// fork\n" + text
        index.insert("orig", hasher.signature(text))
        assert "orig" in index.candidates(hasher.signature(near))

    def test_distinct_texts_not_candidates(self):
        hasher = MinHasher()
        bands, rows = choose_bands(hasher.num_permutations, 0.85)
        index = LSHIndex(bands, rows)
        index.insert("a", hasher.signature("module adder; endmodule " * 6))
        probe = hasher.signature(
            "entirely different words apple banana cherry date " * 6
        )
        assert index.candidates(probe) == set()

    def test_duplicate_key_rejected(self):
        hasher = MinHasher()
        bands, rows = choose_bands(hasher.num_permutations, 0.85)
        index = LSHIndex(bands, rows)
        sig = hasher.signature("x y z")
        index.insert("k", sig)
        with pytest.raises(KeyError):
            index.insert("k", sig)


class TestDeduplicate:
    def test_exact_duplicates_removed_keep_first(self):
        text = "module m(input a, output y); assign y = a; endmodule " * 3
        result = deduplicate([("first", text), ("second", text)])
        assert result.kept_keys == ["first"]
        assert result.removed == {"second": "first"}

    def test_distinct_files_kept(self, tiny_verilog_corpus):
        items = [(i, t) for i, t in enumerate(tiny_verilog_corpus[:30])]
        result = deduplicate(items)
        # generated modules are style-varied; only same-origin copies are
        # near-duplicates, and these 30 are all fresh draws
        assert result.removed_count <= 6

    def test_world_duplicates_detected(self, raw_files):
        result = deduplicate([(f.file_id, f.content) for f in raw_files])
        by_id = {f.file_id: f for f in raw_files}
        kept_origins = {}
        missed = 0
        for key in result.kept_keys:
            origin = by_id[key].origin_id
            if origin >= 0:
                if origin in kept_origins:
                    missed += 1
                kept_origins[origin] = key
        # near-perfect recall on ground-truth duplicate clusters; a small
        # residue is expected where a cluster representative was itself
        # removed as a borderline near-duplicate of a different cluster
        # (Jaccard is not transitive at the 0.85 boundary)
        assert missed <= max(2, len(result.kept_keys) // 25)

    def test_threshold_monotonicity(self, raw_files):
        sample = [(f.file_id, f.content) for f in raw_files[:250]]
        low = deduplicate(sample, threshold=0.7)
        high = deduplicate(sample, threshold=0.95)
        assert low.kept_count <= high.kept_count

    def test_removal_fraction(self):
        text_a = "module a(input x, output y); assign y = x; endmodule " * 3
        result = deduplicate([("a", text_a), ("b", text_a), ("c", text_a + "wire z;")])
        assert 0 < result.removal_fraction < 1

    def test_attribution_prefers_first_inserted_match(self):
        base = "module m(input a, output y); assign y = a ^ 1; endmodule " * 4
        result = deduplicate(
            [("first", base), ("probe", base), ("later", base)]
        )
        assert result.kept_keys == ["first"]
        assert result.removed == {"probe": "first", "later": "first"}

    def test_candidates_in_order_ignores_key_hash_order(self):
        """Multiple colliding candidates come back in insertion order, not
        in the hash-set order ``candidates()`` exposes."""
        hasher = MinHasher()
        bands, rows = choose_bands(hasher.num_permutations, 0.85)
        index = LSHIndex(bands, rows)
        signature = hasher.signature("module m; endmodule " * 4)
        keys = [f"repo-{i}:file.v" for i in (9, 2, 7, 0, 5)]
        for key in keys:
            index.insert(key, signature)
        assert index.candidates_in_order(signature) == keys
        assert index.candidates(signature) == set(keys)


class TestDedupDeterminism:
    """Dedup results must not depend on ``PYTHONHASHSEED``.

    String keys hash differently per interpreter run, so any set-ordered
    candidate scan leaks hash ordering into the ``removed`` attribution.
    The scan is insertion-ordered; results across hash seeds must agree.
    """

    _PROGRAM = """
import json, sys
from repro.dedup import deduplicate
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate as generate_module

rng = DeterministicRNG(0xD5EED)
modules = [generate_module(rng.fork(i)).source for i in range(40)]
items = []
for i, text in enumerate(modules):
    items.append((f"repo-{i}:mod.v", text))
    if i % 3 == 0:
        items.append((f"repo-{i}:copy.v", "// fork\\n" + text))
result = deduplicate(items)
print(json.dumps({
    "kept": result.kept_keys,
    "removed": sorted(result.removed.items()),
}))
"""

    def _run_with_hash_seed(self, seed):
        import json
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONHASHSEED=str(seed))
        output = subprocess.run(
            [sys.executable, "-c", self._PROGRAM],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        return json.loads(output)

    def test_stable_across_hash_seeds(self):
        results = [self._run_with_hash_seed(seed) for seed in (0, 1, 31337)]
        assert results[0] == results[1] == results[2]
        assert results[0]["removed"]  # the corpus does contain duplicates
