"""Tests for the structural (GNN4IP-style) similarity extension."""

import pytest

from repro.github.world import _brand_identifiers
from repro.structsim import (
    StructuralIndex,
    build_dataflow_graph,
    wl_histogram,
    wl_similarity,
)
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate_family

COUNTER = """
module counter(input clk, input rst, input en, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (en) q <= q + 1'b1;
    end
endmodule
"""


class TestGraphConstruction:
    def test_nodes_have_labels(self):
        graph = build_dataflow_graph(COUNTER)
        assert graph.number_of_nodes() > 5
        assert all("label" in data for _, data in graph.nodes(data=True))

    def test_identifier_names_not_in_labels(self):
        graph = build_dataflow_graph(COUNTER)
        labels = " ".join(d["label"] for _, d in graph.nodes(data=True))
        for name in ("clk", "rst", "en", "counter"):
            assert name not in labels

    def test_rename_invariance(self):
        renamed = _brand_identifiers(COUNTER, "qlz_")
        a = build_dataflow_graph(COUNTER)
        b = build_dataflow_graph(renamed)
        assert wl_similarity(a, b) == pytest.approx(1.0)

    def test_distinct_designs_differ(self):
        alu = generate_family("alu", DeterministicRNG(1)).source
        fifo = generate_family("fifo", DeterministicRNG(2)).source
        sim = wl_similarity(
            build_dataflow_graph(alu), build_dataflow_graph(fifo)
        )
        assert sim < 0.8

    def test_width_changes_labels(self):
        wide = COUNTER.replace("[7:0]", "[31:0]").replace("8'd0", "32'd0")
        sim = wl_similarity(
            build_dataflow_graph(COUNTER), build_dataflow_graph(wide)
        )
        assert sim < 1.0


class TestWLKernel:
    def test_self_similarity_is_one(self):
        graph = build_dataflow_graph(COUNTER)
        assert wl_similarity(graph, graph) == pytest.approx(1.0)

    def test_symmetry(self):
        a = build_dataflow_graph(COUNTER)
        b = build_dataflow_graph(
            generate_family("fifo", DeterministicRNG(3)).source
        )
        assert wl_similarity(a, b) == pytest.approx(wl_similarity(b, a))

    def test_histogram_grows_with_iterations(self):
        graph = build_dataflow_graph(COUNTER)
        h0 = wl_histogram(graph, iterations=0)
        h3 = wl_histogram(graph, iterations=3)
        assert sum(h3.values()) == 4 * sum(h0.values())

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            wl_histogram(build_dataflow_graph(COUNTER), iterations=-1)


class TestStructuralIndex:
    def test_finds_renamed_copy(self):
        index = StructuralIndex()
        index.add("orig", COUNTER)
        index.add(
            "other", generate_family("fifo", DeterministicRNG(4)).source
        )
        match = index.best_match(_brand_identifiers(COUNTER, "vmx_"))
        assert match.key == "orig"
        assert match.score == pytest.approx(1.0)

    def test_unparseable_query_matches_nothing(self):
        index = StructuralIndex()
        index.add("orig", COUNTER)
        assert index.best_match("not verilog at all (((") is None

    def test_unparseable_corpus_entry_tolerated(self):
        index = StructuralIndex()
        index.add("broken", "module broken(")
        index.add("ok", COUNTER)
        match = index.best_match(COUNTER)
        assert match.key == "ok"

    def test_duplicate_key_rejected(self):
        index = StructuralIndex()
        index.add("k", COUNTER)
        with pytest.raises(KeyError):
            index.add("k", COUNTER)


class TestRenameAttack:
    """The motivating scenario: identifier renaming launders a copied
    design past the textual detector but not the structural one."""

    def test_textual_detector_evaded_structural_not(self):
        from repro.textsim import SimilarityIndex

        original = generate_family(
            "traffic_fsm", DeterministicRNG(7)
        ).source
        laundered = _brand_identifiers(original, "stolen_")

        textual = SimilarityIndex()
        textual.add("ip", original)
        structural = StructuralIndex()
        structural.add("ip", original)

        text_score = textual.best_match(laundered).score
        struct_score = structural.best_match(laundered).score
        assert struct_score == pytest.approx(1.0)
        assert struct_score > text_score
