"""Behavioural tests for elaboration + simulation."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ElaborationError, SimulationError
from repro.sim import Simulator, Testbench, elaborate, set_default_backend
from repro.verilog import parse_source


@pytest.fixture(scope="module", params=["compiled", "interp"], autouse=True)
def sim_backend(request):
    """Run every behavioural test against both execution backends."""
    previous = set_default_backend(request.param)
    yield request.param
    set_default_backend(previous)


def build(source, top, **overrides):
    return elaborate(parse_source(source), top, overrides or None)


class TestCombinational:
    def test_continuous_assign(self):
        d = build("module m(input [3:0] a, output [3:0] y);"
                  " assign y = ~a; endmodule", "m")
        sim = Simulator(d)
        sim.poke("a", 0b1010)
        assert sim.peek("y") == 0b0101

    def test_carry_capture_through_concat(self):
        d = build(
            "module m(input [7:0] a, input [7:0] b, output [7:0] s,"
            " output co); assign {co, s} = a + b; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", 200)
        sim.poke("b", 100)
        assert sim.peek("s") == (300 & 0xFF)
        assert sim.peek("co") == 1

    def test_wrap_at_lvalue_width(self):
        d = build("module m(input [7:0] a, output [7:0] y);"
                  " assign y = a + 8'd1; endmodule", "m")
        sim = Simulator(d)
        sim.poke("a", 255)
        assert sim.peek("y") == 0

    def test_always_star_case(self):
        d = build(
            "module m(input [1:0] op, input [3:0] a, input [3:0] b,"
            " output reg [3:0] y); always @(*) case (op)"
            " 2'd0: y = a + b; 2'd1: y = a - b; 2'd2: y = a & b;"
            " default: y = a | b; endcase endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", 9)
        sim.poke("b", 3)
        for op, expected in [(0, 12), (1, 6), (2, 1), (3, 11)]:
            sim.poke("op", op)
            assert sim.peek("y") == expected

    def test_chained_assign_propagation(self):
        d = build(
            "module m(input a, output y); wire w1, w2;"
            " assign w1 = ~a; assign w2 = ~w1; assign y = ~w2;"
            " endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", 1)
        assert sim.peek("y") == 0

    def test_combinational_loop_detected(self):
        d = build("module m(output y); wire a, b;"
                  " assign a = ~b; assign b = a; assign y = a;"
                  " endmodule", "m")
        with pytest.raises(SimulationError):
            Simulator(d)

    def test_division_by_zero_yields_zero(self):
        d = build("module m(input [3:0] a, input [3:0] b,"
                  " output [3:0] q); assign q = a / b; endmodule", "m")
        sim = Simulator(d)
        sim.poke("a", 9)
        sim.poke("b", 0)
        assert sim.peek("q") == 0

    def test_casez_wildcards(self):
        d = build(
            "module m(input [3:0] s, output reg [1:0] y);"
            " always @(*) casez (s)"
            " 4'b1???: y = 2'd3; 4'b01??: y = 2'd2;"
            " 4'b001?: y = 2'd1; default: y = 2'd0;"
            " endcase endmodule", "m"
        )
        sim = Simulator(d)
        for value, expected in [(0b1000, 3), (0b0100, 2), (0b0010, 1), (0b0001, 0)]:
            sim.poke("s", value)
            assert sim.peek("y") == expected

    def test_case_mixed_label_widths(self):
        # The subject is evaluated once at the max width over subject and
        # all labels (IEEE case sizing); labels of differing width still
        # match by value.
        d = build(
            "module m(input [3:0] s, output reg [1:0] y);"
            " always @(*) case (s)"
            " 2'd1: y = 2'd1; 8'd2: y = 2'd2; default: y = 2'd0;"
            " endcase endmodule", "m"
        )
        sim = Simulator(d)
        for value, expected in [(1, 1), (2, 2), (3, 0)]:
            sim.poke("s", value)
            assert sim.peek("y") == expected

    def test_poke_many_batches_settle(self):
        d = build(
            "module m(input [7:0] a, input [7:0] b, output [8:0] s);"
            " assign s = a + b; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke_many({"a": 200, "b": 100})
        assert sim.peek("s") == 300


class TestSequential:
    COUNTER = """
    module counter(input clk, input rst, input en, output reg [3:0] q);
        always @(posedge clk) begin
            if (rst) q <= 4'd0;
            else if (en) q <= q + 1'b1;
        end
    endmodule
    """

    def test_counter_counts(self):
        tb = Testbench(build(self.COUNTER, "counter"), "clk", "rst")
        tb.apply_reset()
        for _ in range(5):
            out = tb.step({"en": 1})
        assert out["q"] == 5

    def test_enable_holds_value(self):
        tb = Testbench(build(self.COUNTER, "counter"), "clk", "rst")
        tb.apply_reset()
        tb.step({"en": 1})
        out = tb.step({"en": 0})
        assert out["q"] == 1

    def test_counter_wraps(self):
        tb = Testbench(build(self.COUNTER, "counter"), "clk", "rst")
        tb.apply_reset()
        for _ in range(17):
            out = tb.step({"en": 1})
        assert out["q"] == 1

    def test_nonblocking_swap(self):
        d = build(
            "module m(input clk, output reg a, output reg b);"
            " initial begin a = 1'b0; b = 1'b1; end"
            " always @(posedge clk) begin a <= b; b <= a; end"
            " endmodule", "m"
        )
        tb = Testbench(d, "clk")
        assert (tb.sim.peek("a"), tb.sim.peek("b")) == (0, 1)
        tb.tick()
        assert (tb.sim.peek("a"), tb.sim.peek("b")) == (1, 0)
        tb.tick()
        assert (tb.sim.peek("a"), tb.sim.peek("b")) == (0, 1)

    def test_async_reset_without_clock(self):
        d = build(
            "module m(input clk, input rst, input d, output reg q);"
            " always @(posedge clk or posedge rst) begin"
            " if (rst) q <= 1'b0; else q <= d; end endmodule", "m"
        )
        tb = Testbench(d, "clk", "rst")
        tb.step({"d": 1})
        assert tb.sim.peek("q") == 1
        tb.sim.poke("rst", 1)  # no clock edge
        assert tb.sim.peek("q") == 0

    def test_negedge_trigger(self):
        d = build(
            "module m(input clk, output reg [1:0] n);"
            " always @(negedge clk) n <= n + 1'b1; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("clk", 1)
        assert sim.peek("n") == 0
        sim.poke("clk", 0)
        assert sim.peek("n") == 1

    def test_blocking_order_within_block(self):
        d = build(
            "module m(input clk, input [3:0] d, output reg [3:0] y);"
            " reg [3:0] tmp;"
            " always @(posedge clk) begin tmp = d + 4'd1; y <= tmp; end"
            " endmodule", "m"
        )
        tb = Testbench(d, "clk")
        out = tb.step({"d": 3})
        assert out["y"] == 4


class TestHierarchy:
    NESTED = """
    module leaf #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
        assign y = a + {{(W-1){1'b0}}, 1'b1};
    endmodule
    module mid(input [7:0] a, output [7:0] y);
        wire [7:0] t;
        leaf #(.W(8)) u0 (.a(a), .y(t));
        leaf #(.W(8)) u1 (.a(t), .y(y));
    endmodule
    """

    def test_two_level_hierarchy(self):
        sim = Simulator(build(self.NESTED, "mid"))
        sim.poke("a", 10)
        assert sim.peek("y") == 12

    def test_clock_reaches_child(self):
        source = """
        module child(input clk, output reg [2:0] c);
            always @(posedge clk) c <= c + 1'b1;
        endmodule
        module parent(input clk, output [2:0] n);
            child u (.clk(clk), .count(n));
        endmodule
        """
        # port name mismatch must fail loudly
        with pytest.raises(ElaborationError):
            build(source, "parent")

    def test_child_clock_counts(self):
        source = """
        module child(input clk, output reg [2:0] c);
            always @(posedge clk) c <= c + 1'b1;
        endmodule
        module parent(input clk, output [2:0] n);
            child u (.clk(clk), .c(n));
        endmodule
        """
        tb = Testbench(build(source, "parent"), "clk")
        tb.tick(5)
        assert tb.sim.peek("n") == 5

    def test_positional_connections(self):
        source = """
        module inv(input a, output y); assign y = ~a; endmodule
        module top(input x, output z); inv u0 (x, z); endmodule
        """
        sim = Simulator(build(source, "top"))
        sim.poke("x", 0)
        assert sim.peek("z") == 1

    def test_unconnected_input_ties_low(self):
        source = """
        module orer(input a, input b, output y); assign y = a | b; endmodule
        module top(input x, output z); orer u (.a(x), .y(z)); endmodule
        """
        sim = Simulator(build(source, "top"))
        sim.poke("x", 1)
        assert sim.peek("z") == 1
        sim.poke("x", 0)
        assert sim.peek("z") == 0

    def test_parameter_override_at_elaborate(self):
        d = build(
            "module m #(parameter W = 2)(input [W-1:0] a,"
            " output [W-1:0] y); assign y = a; endmodule", "m", W=8
        )
        assert d.signal("a").width == 8

    def test_unknown_module_error(self):
        with pytest.raises(ElaborationError):
            build("module m(input a); ghost u (.x(a)); endmodule", "m")

    def test_unknown_parameter_error(self):
        with pytest.raises(ElaborationError):
            build("module m(input a, output y); assign y = a;"
                  " endmodule", "m", NOPE=1)


class TestMemories:
    RF = """
    module rf(input clk, input we, input [1:0] wa, input [7:0] wd,
              input [1:0] ra, output [7:0] rd);
        reg [7:0] mem [0:3];
        always @(posedge clk) if (we) mem[wa] <= wd;
        assign rd = mem[ra];
    endmodule
    """

    def test_write_then_read(self):
        tb = Testbench(build(self.RF, "rf"), "clk")
        tb.step({"we": 1, "wa": 2, "wd": 0xAB, "ra": 0})
        out = tb.step({"we": 0, "wa": 0, "wd": 0, "ra": 2})
        assert out["rd"] == 0xAB

    def test_write_disabled(self):
        tb = Testbench(build(self.RF, "rf"), "clk")
        tb.step({"we": 0, "wa": 1, "wd": 0xFF, "ra": 1})
        out = tb.step({"we": 0, "wa": 0, "wd": 0, "ra": 1})
        assert out["rd"] == 0

    def test_out_of_range_read_is_zero(self):
        d = build(
            "module m(input [3:0] idx, output [7:0] v);"
            " reg [7:0] mem [0:3]; assign v = mem[idx];"
            " endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("idx", 9)
        assert sim.peek("v") == 0


class TestLvalueForms:
    def test_bit_select_write(self):
        d = build(
            "module m(input clk, input [1:0] i, input b,"
            " output reg [3:0] q);"
            " always @(posedge clk) q[i] <= b; endmodule", "m"
        )
        tb = Testbench(d, "clk")
        tb.step({"i": 2, "b": 1})
        assert tb.sim.peek("q") == 0b0100

    def test_part_select_write(self):
        d = build(
            "module m(input clk, input [3:0] n, output reg [7:0] q);"
            " always @(posedge clk) q[7:4] <= n; endmodule", "m"
        )
        tb = Testbench(d, "clk")
        tb.step({"n": 0xA})
        assert tb.sim.peek("q") == 0xA0

    def test_concat_lvalue_in_always(self):
        d = build(
            "module m(input clk, input [3:0] a, input [3:0] b,"
            " output reg [3:0] x, output reg [3:0] y);"
            " always @(posedge clk) {x, y} <= {b, a}; endmodule", "m"
        )
        tb = Testbench(d, "clk")
        tb.step({"a": 1, "b": 2})
        assert (tb.sim.peek("x"), tb.sim.peek("y")) == (2, 1)


class TestForLoops:
    def test_bit_reverse(self):
        d = build(
            "module m(input [7:0] d, output reg [7:0] y); integer i;"
            " always @(*) begin"
            " for (i = 0; i < 8; i = i + 1) y[i] = d[7 - i]; end"
            " endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("d", 0b11010010)
        assert sim.peek("y") == 0b01001011


class TestVerilogArithmeticProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_adder_matches_python(self, a, b):
        d = build("module m(input [7:0] a, input [7:0] b,"
                  " output [8:0] s); assign s = a + b; endmodule", "m")
        sim = Simulator(d)
        sim.poke("a", a)
        sim.poke("b", b)
        assert sim.peek("s") == a + b

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_subtract_wraps_like_twos_complement(self, a, b):
        d = build("module m(input [7:0] a, input [7:0] b,"
                  " output [7:0] y); assign y = a - b; endmodule", "m")
        sim = Simulator(d)
        sim.poke("a", a)
        sim.poke("b", b)
        assert sim.peek("y") == (a - b) % 256

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_comparators_match_python(self, a, b):
        d = build(
            "module m(input [3:0] a, input [3:0] b, output lt,"
            " output eq, output gt); assign lt = a < b;"
            " assign eq = a == b; assign gt = a > b; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", a)
        sim.poke("b", b)
        assert sim.peek("lt") == int(a < b)
        assert sim.peek("eq") == int(a == b)
        assert sim.peek("gt") == int(a > b)

    def test_signed_comparison(self):
        d = build(
            "module m(input signed [3:0] a, input signed [3:0] b,"
            " output lt); assign lt = a < b; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", 0b1111)  # -1
        sim.poke("b", 0b0001)  # +1
        assert sim.peek("lt") == 1

    def test_signed_shift_right(self):
        d = build(
            "module m(input signed [7:0] a, output signed [7:0] y);"
            " assign y = a >>> 2; endmodule", "m"
        )
        sim = Simulator(d)
        sim.poke("a", 0x80)  # -128
        assert sim.peek("y") == 0xE0  # -32
