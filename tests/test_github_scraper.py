"""Tests for the granularized scraper."""

import datetime

from repro.github import (
    GitHubScraper,
    SimulatedGitHubAPI,
    WorldConfig,
    generate_world,
)
from repro.github.api import SEARCH_RESULT_CAP


class TestScraping:
    def test_scrape_extracts_only_verilog(self, world):
        api = SimulatedGitHubAPI(world)
        files = GitHubScraper(api).scrape()
        assert files
        assert all(f.path.endswith((".v", ".vh")) for f in files)

    def test_licensed_facets_only_by_default(self, world):
        api = SimulatedGitHubAPI(world)
        files = GitHubScraper(api).scrape()
        assert all(f.license_key is not None for f in files)

    def test_include_unlicensed_covers_world(self, world):
        api = SimulatedGitHubAPI(world)
        files = GitHubScraper(api, include_unlicensed=True).scrape()
        assert len(files) == world.total_verilog_files

    def test_provenance_recorded(self, world):
        api = SimulatedGitHubAPI(world)
        files = GitHubScraper(api).scrape()
        for record in files[:20]:
            repo = world.repo(record.repo_full_name)
            assert repo is not None
            assert record.author == repo.owner
            assert record.created_at == repo.created_at

    def test_file_ids_unique(self, world):
        api = SimulatedGitHubAPI(world)
        files = GitHubScraper(api, include_unlicensed=True).scrape()
        ids = [f.file_id for f in files]
        assert len(ids) == len(set(ids))

    def test_report_accounting(self, world):
        api = SimulatedGitHubAPI(world)
        scraper = GitHubScraper(api, include_unlicensed=True)
        files = scraper.scrape()
        assert scraper.report.verilog_files_extracted == len(files)
        assert scraper.report.repos_cloned == scraper.report.repos_found
        assert scraper.report.files_seen >= len(files)


class TestGranularization:
    def test_date_bisection_triggers_under_cap(self, monkeypatch):
        """Force a tiny result cap so the scraper must bisect dates."""
        import repro.github.api as api_mod
        import repro.github.scraper as scraper_mod

        world = generate_world(
            WorldConfig(n_repos=60, seed=9, mega_file_modules=0)
        )
        monkeypatch.setattr(api_mod, "SEARCH_RESULT_CAP", 5)
        monkeypatch.setattr(scraper_mod, "SEARCH_RESULT_CAP", 5)
        api = SimulatedGitHubAPI(world)
        scraper = GitHubScraper(api, include_unlicensed=True)
        names = scraper.discover_repositories()
        # With the cap forced low, discovery must still find everything by
        # splitting date ranges.
        expected = {r.full_name for r in world.repos if r.verilog_files}
        assert set(names) == expected
        assert scraper.report.date_splits > 0

    def test_rate_limit_survival(self, world):
        api = SimulatedGitHubAPI(world, searches_per_minute=4)
        scraper = GitHubScraper(api, include_unlicensed=True)
        files = scraper.scrape()
        assert files
        assert scraper.report.rate_limit_sleeps > 0
        assert api.stats.minutes_elapsed == scraper.report.rate_limit_sleeps

    def test_no_duplicate_repos_across_facets(self, world):
        api = SimulatedGitHubAPI(world)
        names = GitHubScraper(api, include_unlicensed=True).discover_repositories()
        assert len(names) == len(set(names))
