"""Tests for the LanguageModel facade and sampler behaviour."""

import pytest

from repro.errors import TrainingError
from repro.llm import GenerationConfig, LanguageModel


class TestPretrain:
    def test_report_populated(self, tiny_model):
        report = tiny_model.report
        assert report.files == 60
        assert report.tokens > 0
        assert report.vocab_size >= 256
        assert report.ngram_pairs > 0

    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            LanguageModel.pretrain("x", [])

    def test_max_train_tokens_cap(self, tiny_verilog_corpus):
        capped = LanguageModel.pretrain(
            "cap", tiny_verilog_corpus, num_merges=50, max_train_tokens=500
        )
        assert capped.report.tokens <= 500


class TestContinualPretrain:
    def test_base_unchanged_and_new_model_knows_more(self, tiny_verilog_corpus):
        base = LanguageModel.pretrain(
            "base", tiny_verilog_corpus[:20], num_merges=100
        )
        base_pairs = base.counts.pair_count
        tuned = base.continual_pretrain("tuned", tiny_verilog_corpus[20:60])
        assert base.counts.pair_count == base_pairs
        assert tuned.counts.pair_count > base_pairs
        assert tuned.tokenizer is base.tokenizer

    def test_empty_finetune_corpus_rejected(self, tiny_model):
        with pytest.raises(TrainingError):
            tiny_model.continual_pretrain("ft", [])


class TestGeneration:
    def test_stops_at_endmodule(self, tiny_model):
        out = tiny_model.generate(
            "module counter(\n", GenerationConfig(max_new_tokens=400), seed=3
        )
        assert out.count("endmodule") <= 1
        if "endmodule" in out:
            assert out.endswith("endmodule")

    def test_exclude_stop_string(self, tiny_model):
        config = GenerationConfig(max_new_tokens=400, include_stop=False)
        out = tiny_model.generate("module counter(\n", config, seed=3)
        assert "endmodule" not in out

    def test_deterministic_per_seed(self, tiny_model):
        config = GenerationConfig(temperature=0.8, max_new_tokens=60)
        a = tiny_model.generate("module m(\n", config, seed=11)
        b = tiny_model.generate("module m(\n", config, seed=11)
        c = tiny_model.generate("module m(\n", config, seed=12)
        assert a == b
        assert a != c or len(a) < 4  # different seeds should usually differ

    def test_temperature_zero_is_greedy(self, tiny_model):
        config = GenerationConfig(temperature=0.0, max_new_tokens=40)
        outs = {tiny_model.generate("module m(\n", config, seed=s) for s in range(4)}
        assert len(outs) == 1

    def test_high_temperature_diversifies(self, tiny_model):
        config = GenerationConfig(temperature=1.2, max_new_tokens=60)
        outs = {
            tiny_model.generate("module ", config, seed=s) for s in range(8)
        }
        assert len(outs) > 1

    def test_batch_matches_singles(self, tiny_model):
        config = GenerationConfig(temperature=0.8, max_new_tokens=30)
        batch = tiny_model.generate_batch("module ", 3, config, seed=5)
        assert len(batch) == 3

    def test_token_budget_respected(self, tiny_model):
        config = GenerationConfig(
            max_new_tokens=5, stop_strings=("THISNEVERAPPEARS",)
        )
        out = tiny_model.generate("module m(\n", config, seed=0)
        # 5 BPE tokens decode to a bounded number of characters
        assert len(tiny_model.tokenizer.encode(out)) <= 8


class TestMemorizationBehaviour:
    def test_regurgitates_distinctive_training_file(self, tiny_verilog_corpus):
        distinctive = (
            "module zx_unique_block(input wire [6:0] zx_in,\n"
            "    output wire [6:0] zx_out);\n"
            "    assign zx_out = zx_in ^ 7'h55;\n"
            "endmodule\n"
        )
        model = LanguageModel.pretrain(
            "memo", tiny_verilog_corpus[:40] + [distinctive], num_merges=200
        )
        prompt = distinctive[: distinctive.index("output")]
        out = model.generate(
            prompt, GenerationConfig(temperature=0.0, max_new_tokens=200), seed=0
        )
        assert "zx_out = zx_in ^ 7'h55" in out

    def test_clean_model_does_not_know_the_file(self, tiny_verilog_corpus):
        model = LanguageModel.pretrain(
            "clean", tiny_verilog_corpus[:40], num_merges=200
        )
        prompt = "module zx_unique_block(input wire [6:0] zx_in,\n    "
        out = model.generate(
            prompt, GenerationConfig(temperature=0.0, max_new_tokens=200), seed=0
        )
        assert "zx_in ^ 7'h55" not in out
