"""Tests for pass@k, problems, and the functional-eval harness."""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import LanguageModel
from repro.vereval import (
    EvalConfig,
    build_problem_set,
    check_completion,
    evaluate_model,
    pass_at_k,
)
from repro.vereval.passk import mean_pass_at_k


class TestPassAtK:
    def test_known_values(self):
        assert pass_at_k(10, 0, 1) == 0.0
        assert pass_at_k(10, 10, 1) == 1.0
        assert pass_at_k(10, 1, 1) == pytest.approx(0.1)
        assert pass_at_k(10, 1, 10) == 1.0
        # 1 - C(8,5)/C(10,5) = 1 - 56/252
        assert pass_at_k(10, 2, 5) == pytest.approx(1 - 56 / 252)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            pass_at_k(5, 0, 6)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 3, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 30), st.integers(1, 30))
    def test_in_unit_interval_and_monotone_in_c(self, n, c, k):
        if k > n or c > n:
            return
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0
        if c + 1 <= n:
            assert pass_at_k(n, c + 1, k) >= value

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 20), st.integers(1, 19))
    def test_monotone_in_k(self, n, c, k):
        if c > n or k + 1 > n:
            return
        assert pass_at_k(n, c, k + 1) >= pass_at_k(n, c, k)

    def test_matches_binomial_formula(self):
        n, c, k = 12, 4, 3
        expected = 1 - (
            math.comb(n - c, k) / math.comb(n, k)
        )
        assert pass_at_k(n, c, k) == pytest.approx(expected)

    def test_mean(self):
        assert mean_pass_at_k([10, 0], 10, 1) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            mean_pass_at_k([], 10, 1)


class TestProblemSet:
    def test_size_and_unique_ids(self):
        problems = build_problem_set(n_problems=20, seed=1)
        assert len(problems) == 20
        ids = [p.problem_id for p in problems]
        assert len(set(ids)) == 20

    def test_prompt_format(self):
        problem = build_problem_set(n_problems=1, seed=2)[0]
        prompt = problem.prompt()
        assert prompt.startswith("// ")
        assert f"module {problem.module.name}" in prompt
        assert prompt.rstrip().endswith(");")

    def test_golden_passes_its_own_check(self):
        for problem in build_problem_set(n_problems=8, seed=3):
            golden_body = problem.golden_source[
                len(problem.module.header_prompt()) - 1:
            ]
            ok, reason = check_completion(problem, golden_body)
            assert ok, (problem.problem_id, reason)

    def test_problems_deterministic(self):
        a = build_problem_set(n_problems=6, seed=9)
        b = build_problem_set(n_problems=6, seed=9)
        assert [p.golden_source for p in a] == [p.golden_source for p in b]

    def test_family_coverage(self):
        problems = build_problem_set(n_problems=40, seed=4)
        families = {p.module.family for p in problems}
        assert len(families) >= 25


class TestCheckCompletion:
    def _problem(self):
        return build_problem_set(n_problems=4, seed=5, families=["adder"])[0]

    def test_syntax_failure(self):
        ok, reason = check_completion(self._problem(), "\n  garbage (((")
        assert not ok and reason == "syntax"

    def test_wrong_logic_fails(self):
        problem = self._problem()
        golden_body = problem.golden_source[
            len(problem.module.header_prompt()) - 1:
        ]
        broken = golden_body.replace("a + b", "a - b")
        ok, reason = check_completion(problem, broken)
        assert not ok

    def test_interface_change_fails(self):
        problem = self._problem()
        ok, reason = check_completion(
            problem, "\n    assign nonexistent = 1;\nendmodule"
        )
        assert not ok


class TestEvaluateModel:
    def test_finetuned_beats_base_and_passk_monotone(
        self, tiny_verilog_corpus, module_pool
    ):
        base = LanguageModel.pretrain(
            "eval-base", tiny_verilog_corpus[:20], num_merges=150
        )
        tuned = base.continual_pretrain("eval-tuned", tiny_verilog_corpus)
        problems = build_problem_set(n_problems=8, seed=6)
        config = EvalConfig(
            n_samples=4, ks=(1, 4), temperatures=(0.2, 0.8),
            max_new_tokens=350, seed=0,
        )
        base_result = evaluate_model(base, problems, config)
        tuned_result = evaluate_model(tuned, problems, config)
        base_best = base_result.best()
        tuned_best = tuned_result.best()
        assert tuned_best[4] >= tuned_best[1]  # pass@k monotone in k
        assert tuned_best[4] >= base_best[4]   # fine-tuning helps
        assert tuned_best[4] > 0               # the tuned model solves some

    def test_n_samples_validated(self, tiny_model):
        problems = build_problem_set(n_problems=1, seed=7)
        with pytest.raises(ValueError):
            evaluate_model(
                tiny_model, problems, EvalConfig(n_samples=2, ks=(5,))
            )

    def test_outcome_bookkeeping(self, tiny_model):
        problems = build_problem_set(n_problems=2, seed=8)
        config = EvalConfig(
            n_samples=2, ks=(1, 2), temperatures=(0.8,), max_new_tokens=150
        )
        result = evaluate_model(tiny_model, problems, config)
        outcomes = result.outcomes[0.8]
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.passes + sum(outcome.failures.values()) == 2
        assert "pass@1" in result.summary()
