"""Unit tests for the Verilog parser."""

import pytest

from repro.errors import ParseError
from repro.verilog import ast, parse_source
from repro.verilog.parser import parse_based_literal


def only_module(source):
    parsed = parse_source(source)
    assert len(parsed.modules) == 1
    return parsed.modules[0]


class TestModuleHeaders:
    def test_ansi_ports(self):
        m = only_module(
            "module m(input wire a, output reg [3:0] b); endmodule"
        )
        assert m.port_order == ["a", "b"]
        assert m.port("a").direction == "input"
        assert m.port("b").is_reg
        assert m.port("b").range is not None

    def test_port_direction_carries_to_following_names(self):
        m = only_module("module m(input [3:0] a, b, output y); endmodule")
        assert m.port("b").direction == "input"
        assert m.port("b").range is not None
        assert m.port("y").direction == "output"

    def test_non_ansi_ports(self):
        m = only_module(
            "module m(a, b); input a; output [7:0] b; endmodule"
        )
        assert m.port_order == ["a", "b"]
        assert m.port("b").range is not None

    def test_parameter_header(self):
        m = only_module(
            "module m #(parameter W = 4, parameter D = W*2)(input [W-1:0] a);"
            " endmodule"
        )
        assert [p.name for p in m.params] == ["W", "D"]

    def test_empty_port_list(self):
        m = only_module("module m(); endmodule")
        assert m.port_order == []

    def test_no_port_list(self):
        m = only_module("module m; wire x; endmodule")
        assert m.port_order == []

    def test_two_modules(self):
        parsed = parse_source("module a; endmodule module b; endmodule")
        assert [m.name for m in parsed.modules] == ["a", "b"]

    def test_empty_source_is_error(self):
        with pytest.raises(ParseError):
            parse_source("// only a comment\n")

    def test_garbage_at_top_level_is_error(self):
        with pytest.raises(ParseError):
            parse_source("wire x;")


class TestDeclarations:
    def test_wire_with_init(self):
        m = only_module("module m; wire [3:0] x = 4'd3; endmodule")
        assert m.nets[0].init is not None

    def test_multiple_names_share_range(self):
        m = only_module("module m; reg [7:0] a, b, c; endmodule")
        assert len(m.nets) == 3
        assert all(n.range is not None for n in m.nets)

    def test_memory_declaration(self):
        m = only_module("module m; reg [7:0] mem [0:15]; endmodule")
        assert len(m.nets[0].array_dims) == 1

    def test_integer_declaration(self):
        m = only_module("module m; integer i; endmodule")
        assert m.nets[0].kind == "integer"

    def test_localparam(self):
        m = only_module("module m; localparam N = 5; endmodule")
        assert m.params[0].local

    def test_signed_reg(self):
        m = only_module("module m; reg signed [7:0] s; endmodule")
        assert m.nets[0].signed


class TestStatements:
    def test_always_posedge(self):
        m = only_module(
            "module m(input clk); reg q;"
            " always @(posedge clk) q <= ~q; endmodule"
        )
        block = m.always_blocks[0]
        assert not block.is_combinational
        assert block.edge_items[0].edge == "posedge"

    def test_always_star_both_syntaxes(self):
        for sens in ["@(*)", "@*"]:
            m = only_module(
                f"module m(input a, output reg y);"
                f" always {sens} y = a; endmodule"
            )
            assert m.always_blocks[0].is_combinational

    def test_sensitivity_list_or_and_comma(self):
        for sep in [" or ", ", "]:
            m = only_module(
                f"module m(input a, input b, output reg y);"
                f" always @(a{sep}b) y = a & b; endmodule"
            )
            assert len(m.always_blocks[0].sensitivity) == 2

    def test_always_without_at_is_error(self):
        with pytest.raises(ParseError):
            parse_source("module m; always begin end endmodule")

    def test_if_else_chain(self):
        m = only_module(
            "module m(input a, input b, output reg y); always @(*)"
            " if (a) y = 1'b1; else if (b) y = 1'b0; else y = a; endmodule"
        )
        stmt = m.always_blocks[0].body
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.other, ast.If)

    def test_case_with_default(self):
        m = only_module(
            "module m(input [1:0] s, output reg y); always @(*)"
            " case (s) 2'd0: y = 1'b0; 2'd1, 2'd2: y = 1'b1;"
            " default: y = 1'bx; endcase endmodule"
        )
        case = m.always_blocks[0].body
        assert isinstance(case, ast.Case)
        assert len(case.items) == 3
        assert len(case.items[1].labels) == 2
        assert case.items[2].is_default

    def test_casez(self):
        m = only_module(
            "module m(input [3:0] s, output reg y); always @(*)"
            " casez (s) 4'b1???: y = 1'b1; default: y = 1'b0;"
            " endcase endmodule"
        )
        assert m.always_blocks[0].body.kind == "casez"

    def test_for_loop(self):
        m = only_module(
            "module m(input [3:0] d, output reg [3:0] y); integer i;"
            " always @(*) begin y = 4'd0;"
            " for (i = 0; i < 4; i = i + 1) y[i] = d[3-i]; end endmodule"
        )
        block = m.always_blocks[0].body
        assert isinstance(block.stmts[1], ast.For)

    def test_named_block(self):
        m = only_module(
            "module m(input a, output reg y); always @(*)"
            " begin : blk y = a; end endmodule"
        )
        assert m.always_blocks[0].body.name == "blk"

    def test_initial_block(self):
        m = only_module("module m; reg q; initial q = 1'b0; endmodule")
        assert len(m.initial_blocks) == 1

    def test_system_task_statement(self):
        m = only_module(
            'module m; initial $display("hi", 3); endmodule'
        )
        assert isinstance(m.initial_blocks[0].body, ast.SystemTaskCall)


class TestExpressions:
    def _rhs(self, expr_text):
        m = only_module(f"module m; wire x = {expr_text}; endmodule")
        return m.nets[0].init

    def test_precedence_arith_over_shift(self):
        expr = self._rhs("a + b << 2")
        assert isinstance(expr, ast.Binary) and expr.op == "<<"
        assert expr.lhs.op == "+"

    def test_precedence_and_over_or(self):
        expr = self._rhs("a | b & c")
        assert expr.op == "|"
        assert expr.rhs.op == "&"

    def test_power_right_associative(self):
        expr = self._rhs("a ** b ** c")
        assert expr.op == "**"
        assert expr.rhs.op == "**"

    def test_ternary_nested(self):
        expr = self._rhs("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.other, ast.Ternary)

    def test_concat_and_replication(self):
        expr = self._rhs("{a, {3{b}}, c}")
        assert isinstance(expr, ast.Concat)
        assert isinstance(expr.parts[1], ast.Repeat)

    def test_part_select_forms(self):
        assert isinstance(self._rhs("a[7:4]"), ast.PartSelect)
        assert isinstance(self._rhs("a[i]"), ast.Index)
        plus = self._rhs("a[i +: 4]")
        assert isinstance(plus, ast.IndexedPartSelect) and plus.ascending
        minus = self._rhs("a[i -: 4]")
        assert isinstance(minus, ast.IndexedPartSelect) and not minus.ascending

    def test_system_function_call(self):
        expr = self._rhs("$clog2(16)")
        assert isinstance(expr, ast.SystemCall)

    def test_unary_reduction(self):
        expr = self._rhs("&a")
        assert isinstance(expr, ast.Unary) and expr.op == "&"

    def test_real_literal_rejected(self):
        with pytest.raises(ParseError):
            self._rhs("3.14")


class TestInstances:
    def test_named_connections_with_params(self):
        m = only_module(
            "module m(input clk, output [3:0] q);"
            " counter #(.W(4)) u0 (.clk(clk), .q(q)); endmodule"
        )
        inst = m.instances[0]
        assert inst.module_name == "counter"
        assert inst.param_overrides[0][0] == "W"
        assert inst.connections[0].name == "clk"

    def test_positional_connections(self):
        m = only_module(
            "module m(input a, output y); inv u1 (a, y); endmodule"
        )
        assert all(c.name is None for c in m.instances[0].connections)

    def test_multiple_instances_one_statement(self):
        m = only_module(
            "module m(input a, b, output x, y);"
            " inv u1 (a, x), u2 (b, y); endmodule"
        )
        assert len(m.instances) == 2

    def test_unconnected_named_port(self):
        m = only_module(
            "module m(input a); blk u0 (.x(a), .y()); endmodule"
        )
        assert m.instances[0].connections[1].expr is None


class TestBasedLiterals:
    def test_sized_hex(self):
        n = parse_based_literal("8'hFF")
        assert (n.value, n.width) == (255, 8)

    def test_value_masked_to_width(self):
        n = parse_based_literal("4'hFF")
        assert n.value == 15

    def test_signed_flag(self):
        assert parse_based_literal("4'sb1010").signed

    def test_unknown_digits_mask(self):
        n = parse_based_literal("4'b1?0z")
        assert n.has_unknown
        assert n.unknown_mask == 0b0101
        assert n.value == 0b1000

    def test_decimal_x(self):
        n = parse_based_literal("4'dx")
        assert n.unknown_mask == 0b1111

    def test_underscores_ignored(self):
        assert parse_based_literal("16'hFF_FF").value == 0xFFFF

    def test_bad_digit_for_base(self):
        with pytest.raises(ParseError):
            parse_based_literal("8'b123")


class TestErrorRecoveryBoundaries:
    @pytest.mark.parametrize(
        "source",
        [
            "module m(input a; endmodule",        # bad port list
            "module m; assign = 1; endmodule",    # missing lvalue
            "module m; wire x = ; endmodule",     # missing expression
            "module m; always @(posedge) q <= 1; endmodule",
            "module m(input a) endmodule",        # missing semicolon
            "module m; case (x) endcase endmodule",  # case outside always
            "module m; generate endgenerate endmodule",  # unsupported
        ],
    )
    def test_malformed_input_raises_parse_error(self, source):
        with pytest.raises(ParseError):
            parse_source(source)

    def test_error_carries_position(self):
        try:
            parse_source("module m(\n  input a;\n endmodule")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")
