"""Tests for the synthetic GitHub world generator."""

import datetime

from repro.github import WorldConfig, generate_world
from repro.github.world import _brand_identifiers, _corrupt, _perturb_copy
from repro.utils.rng import DeterministicRNG


class TestWorldShape:
    def test_repo_count(self, world):
        assert len(world.repos) == 80

    def test_deterministic(self):
        config = WorldConfig(n_repos=12, seed=5, mega_file_modules=3)
        a = generate_world(config)
        b = generate_world(config)
        assert [r.full_name for r in a.repos] == [r.full_name for r in b.repos]
        assert a.repos[3].files[0].content == b.repos[3].files[0].content

    def test_dates_within_range(self, world):
        for repo in world.repos:
            assert (
                world.config.date_start
                <= repo.created_at
                <= world.config.date_end
            )

    def test_license_mix(self, world):
        licensed = sum(1 for r in world.repos if r.license_key is not None)
        fraction = licensed / len(world.repos)
        assert 0.25 < fraction < 0.70

    def test_proprietary_only_in_licensed_repos(self, world):
        for repo in world.repos:
            for record in repo.verilog_files:
                if record.header_kind == "proprietary":
                    assert repo.license_key is not None

    def test_license_headers_present(self, world):
        for repo in world.repos:
            if repo.license_key is None:
                continue
            for record in repo.verilog_files:
                if record.header_kind == "license":
                    assert "SPDX-License-Identifier" in record.content

    def test_duplicates_exist(self, world):
        copies = sum(
            1
            for repo in world.repos
            for record in repo.verilog_files
            if record.origin == "copy"
        )
        assert copies > world.total_verilog_files * 0.3

    def test_mega_file_present(self, world):
        sizes = [
            len(record.content)
            for repo in world.repos
            for record in repo.verilog_files
        ]
        assert max(sizes) > 8 * sorted(sizes)[len(sizes) // 2]

    def test_noise_files_not_verilog(self, world):
        for repo in world.repos:
            for record in repo.files:
                if record.origin == "noise":
                    assert not record.is_verilog


class TestBranding:
    def test_keywords_untouched(self):
        branded = _brand_identifiers(
            "module foo(input wire clk); endmodule", "qlz_"
        )
        assert "module qlz_foo" in branded
        assert "qlz_module" not in branded
        assert "qlz_input" not in branded
        assert "qlz_wire" not in branded

    def test_idempotent(self):
        once = _brand_identifiers("assign y = a + b;", "vmx_")
        twice = _brand_identifiers(once, "vmx_")
        assert once == twice

    def test_consistent_renaming(self):
        branded = _brand_identifiers(
            "module m(input a, output y); assign y = a; endmodule", "apx_"
        )
        assert branded.count("apx_a") == 2
        assert branded.count("apx_y") == 2


class TestPerturbation:
    def test_perturbed_copy_stays_similar(self):
        from repro.dedup.jaccard import text_jaccard

        original = (
            "module foo(input wire [7:0] a, output wire [7:0] y);\n"
            "    assign y = a + 8'd1;\n"
            "endmodule\n" * 3
        )
        for seed in range(10):
            rng = DeterministicRNG(seed)
            copy = _perturb_copy(original, "owner/repo", rng)
            assert text_jaccard(original, copy) >= 0.85

    def test_corrupt_changes_text(self):
        source = "module m(input a, output y); assign y = a; endmodule"
        for seed in range(8):
            assert _corrupt(source, DeterministicRNG(seed)) != source


class TestGroundTruth:
    def test_proprietary_listing(self, world):
        files = world.proprietary_files()
        assert files
        for record in files:
            assert record.header_kind == "proprietary"
            lowered = record.content.lower()
            assert (
                "proprietary" in lowered
                or "confidential" in lowered
                or "all rights reserved" in lowered
            )

    def test_origin_ids_track_duplicates(self, world):
        by_origin = {}
        for repo in world.repos:
            for record in repo.verilog_files:
                if record.origin_id >= 0:
                    by_origin.setdefault(record.origin_id, []).append(record)
        multi = [group for group in by_origin.values() if len(group) > 1]
        assert multi  # duplicates share origin ids
