"""Tests and properties for the BPE tokenizer."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokenizer import BPETokenizer, pretokenize, train_tokenizer


class TestPretokenize:
    def test_identifiers_and_punct(self):
        assert pretokenize("assign y = a+b;") == [
            "assign", " ", "y", " ", "=", " ", "a", "+", "b", ";"
        ]

    def test_whitespace_runs_kept_whole(self):
        assert pretokenize("a\n    b") == ["a", "\n", "    ", "b"]

    def test_numbers(self):
        assert pretokenize("8'hFF") == ["8", "'", "hFF"]

    def test_roundtrip_concat(self):
        text = "module m(input [7:0] a);\n  assign y = a + 8'd1;\nendmodule\n"
        assert "".join(pretokenize(text)) == text


class TestByteFallback:
    def test_zero_merge_tokenizer_roundtrips(self):
        tok = BPETokenizer(merges=[])
        text = "module weird_name_никогда(input a);"
        assert tok.decode(tok.encode(text)) == text

    def test_vocab_size(self):
        tok = train_tokenizer(["module m; endmodule"] * 4, num_merges=10)
        assert 256 <= tok.vocab_size <= 266


class TestTraining:
    def test_merges_learned_on_repetitive_text(self):
        corpus = ["module counter(input wire clk);" * 5] * 10
        tok = train_tokenizer(corpus, num_merges=50)
        assert len(tok.merges) > 5
        # frequent words should compress well below byte length
        ids = tok.encode("counter")
        assert len(ids) < len("counter")

    def test_deterministic(self):
        corpus = ["assign y = a + b;"] * 8
        a = train_tokenizer(corpus, num_merges=30)
        b = train_tokenizer(corpus, num_merges=30)
        assert a.merges == b.merges

    def test_negative_merges_rejected(self):
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            train_tokenizer(["x"], num_merges=-1)

    def test_unseen_words_still_encode(self, tiny_verilog_corpus):
        tok = train_tokenizer(tiny_verilog_corpus[:10], num_merges=100)
        text = "module zebra_quokka_xyz(input qq);"
        assert tok.decode(tok.encode(text)) == text


verilogish = st.text(
    alphabet=st.sampled_from(
        list("abcdefghijklmnopqrstuvwxyz_0123456789 \n\t[](){};:=+-&|^~'")
    ),
    min_size=0,
    max_size=200,
)


class TestRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(verilogish)
    def test_encode_decode_identity(self, text):
        tok = train_tokenizer(
            ["module m(input a, output y); assign y = ~a; endmodule"] * 3,
            num_merges=40,
        )
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=30, deadline=None)
    @given(st.text(min_size=0, max_size=80))
    def test_arbitrary_unicode_roundtrips(self, text):
        tok = BPETokenizer(merges=[])
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=30, deadline=None)
    @given(verilogish)
    def test_encoding_is_deterministic(self, text):
        tok = train_tokenizer(["assign y = a;"] * 5, num_merges=20)
        assert tok.encode(text) == tok.encode(text)
