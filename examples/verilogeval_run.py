#!/usr/bin/env python
"""mini-VerilogEval: pass@k comparison of base vs fine-tuned models.

Reproduces the Table II protocol at example scale: n samples per problem
at temperatures {0.2, 0.8}, stop at the first ``endmodule``, functional
check by lockstep simulation against the golden module, best-of-
temperatures pass@k via the unbiased estimator (Eq. 1).
"""

from repro import WorldConfig
from repro.core.freeset import FreeSetBuilder
from repro.core.freev import FreeVTrainer
from repro.vereval import EvalConfig, build_problem_set, evaluate_model


def main() -> None:
    freeset = FreeSetBuilder(
        world_config=WorldConfig(n_repos=150, seed=3, mega_file_modules=20)
    ).build()
    trainer = FreeVTrainer(freeset=freeset)
    base = trainer.base_model()
    freev = trainer.train()

    problems = build_problem_set(n_problems=15)
    print(f"{len(problems)} problems across "
          f"{len({p.module.family for p in problems})} module families")

    config = EvalConfig(
        n_samples=10, ks=(1, 5, 10), temperatures=(0.2, 0.8),
        max_new_tokens=500,
    )
    results = {}
    for model in (base, freev):
        result = evaluate_model(model, problems, config)
        results[model.name] = result
        print("\n" + result.summary())
        for temperature, scores in result.per_temperature.items():
            row = " ".join(
                f"pass@{k}={v * 100:.1f}%" for k, v in sorted(scores.items())
            )
            print(f"  T={temperature}: {row}")
        # failure taxonomy at T=0.8
        failures = {}
        for outcome in result.outcomes[0.8]:
            for reason, count in outcome.failures.items():
                failures[reason] = failures.get(reason, 0) + count
        print(f"  failure taxonomy @T=0.8: {failures}")

    best_base = results[base.name].best()
    best_freev = results[freev.name].best()
    delta = {k: best_freev[k] - best_base[k] for k in (1, 5, 10)}
    print(
        "\nFreeV minus base: "
        + " ".join(f"pass@{k}: {d * 100:+.1f}" for k, d in delta.items())
    )


if __name__ == "__main__":
    main()
