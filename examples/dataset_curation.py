#!/usr/bin/env python
"""Dataset curation deep-dive: what each FreeSet stage removes and why.

Walks the curation pipeline stage by stage over one scraped world,
printing per-stage evidence: which licenses were rejected, sample
copyright-filter verdicts with the matched keywords, a duplicate cluster
found by MinHash/LSH, and a syntax-check failure — the concrete material
behind the Sec. IV-A funnel.
"""

from collections import Counter

from repro import WorldConfig
from repro.core.freeset import FreeSetBuilder
from repro.curation import CopyrightFilter
from repro.dedup import deduplicate
from repro.verilog import check_syntax


def main() -> None:
    freeset = FreeSetBuilder(
        world_config=WorldConfig(n_repos=150, seed=99, mega_file_modules=25)
    ).build()
    raw = freeset.raw_files

    print("== stage 0: raw scrape ==")
    print(f"{len(raw)} Verilog files from "
          f"{len({f.repo_full_name for f in raw})} repositories")
    license_mix = Counter(f.license_key or "(none)" for f in raw)
    for key, count in license_mix.most_common():
        print(f"  {key:<14} {count}")

    print("\n== stage 1: license filter ==")
    licensed = [f for f in raw if f.license_key is not None]
    print(f"kept {len(licensed)} / {len(raw)} "
          f"({len(raw) - len(licensed)} from unlicensed repos dropped)")

    print("\n== stage 2: MinHash/LSH dedup at Jaccard 0.85 ==")
    result = deduplicate([(f.file_id, f.content) for f in licensed])
    print(f"kept {result.kept_count}, removed {result.removed_count} "
          f"({result.removal_fraction:.1%})")
    if result.removed:
        dup, kept_as = next(iter(result.removed.items()))
        print(f"  example: {dup}\n    is a near-copy of {kept_as}")

    print("\n== stage 3: file-level copyright filter ==")
    detector = CopyrightFilter()
    kept_ids = set(result.kept_keys)
    survivors = [f for f in licensed if f.file_id in kept_ids]
    flagged = [
        (f, detector.inspect(f.content))
        for f in survivors
        if not detector.is_clean(f.content)
    ]
    print(f"flagged {len(flagged)} files inside nominally open repos")
    for record, verdict in flagged[:3]:
        print(f"  {record.file_id}: keywords={verdict.matched_keywords}")

    print("\n== stage 4: syntax check ==")
    clean = [f for f, _ in [(f, None) for f in survivors]
             if detector.is_clean(f.content)]
    bad = [f for f in clean if not check_syntax(f.content).ok]
    print(f"{len(bad)} syntactically broken files dropped")
    if bad:
        report = check_syntax(bad[0].content)
        print(f"  example: {bad[0].file_id}: {report.errors[0]}")

    print("\n== final funnel (pipeline accounting) ==")
    print(freeset.dataset.funnel.to_text())


if __name__ == "__main__":
    main()
