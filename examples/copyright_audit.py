#!/usr/bin/env python
"""Copyright audit: measure infringement rates across training policies.

Reproduces the Figure 3 experiment at example scale: the same base model
is fine-tuned on (a) an unfiltered scrape (VeriGen-style), and (b) the
copyright-filtered FreeSet — then both, plus the raw base, are run
through the 100-prompt infringement benchmark (strip comments, first 20%
/ 64 words, cosine >= 0.8 against the copyrighted corpus).
"""

from repro import WorldConfig
from repro.core.freeset import FreeSetBuilder
from repro.copyright import CopyrightBenchmark, collect_copyrighted_corpus
from repro.curation import CurationConfig, CurationPipeline
from repro.llm import LanguageModel
from repro.core.basecorpus import BaseCorpusConfig, build_base_corpus


def main() -> None:
    print("== build the world and the copyrighted corpus ==")
    builder = FreeSetBuilder(
        world_config=WorldConfig(
            n_repos=200, seed=7, proprietary_rate=0.02, mega_file_modules=30
        )
    )
    freeset = builder.build()
    corpus = collect_copyrighted_corpus(freeset.raw_files)
    print(f"copyrighted corpus: {len(corpus)} files")

    print("\n== train three models from one base ==")
    public = [
        f.content
        for f in freeset.raw_files
        if f.header_kind != "proprietary"
    ]
    base_corpus = build_base_corpus(
        BaseCorpusConfig(name="base", verilog_files=25), verilog_slice=public
    )
    base = LanguageModel.pretrain("base-llama-sim", base_corpus)

    unfiltered = CurationPipeline(
        CurationConfig(license_check=False, allow_unlicensed=True,
                       copyright_check=False)
    ).run(freeset.raw_files, name="unfiltered")
    dirty = base.continual_pretrain("verigen-style", unfiltered.texts())
    clean = base.continual_pretrain("freev-style", freeset.dataset.texts())
    print(f"unfiltered corpus: {unfiltered.rows} files "
          f"(contains vendored proprietary code)")
    print(f"FreeSet corpus:    {freeset.dataset.rows} files (filtered)")

    print("\n== run the infringement benchmark (Fig. 3 protocol) ==")
    benchmark = CopyrightBenchmark(corpus, num_prompts=60)
    for model in (base, dirty, clean):
        report = benchmark.evaluate(model, temperature=0.2)
        print(report.summary())
        worst = max(report.results, key=lambda r: r.similarity)
        print(
            f"    worst prompt: {worst.source_key} "
            f"similarity={worst.similarity:.2f}"
        )


if __name__ == "__main__":
    main()
