"""Multi-seed stimulus sweeps on the lane-parallel simulation backend.

Demonstrates the third execution backend (``repro.sim.batch``): one
design, N independent seeded stimulus episodes, all stepped in lockstep
with per-slot numpy lanes — the shape of validation sweeps, vgen family
checks, and the ablation benches.

Run:  PYTHONPATH=src python examples/batch_simulation.py
"""

import time

import numpy as np

from repro.sim import (
    BatchTestbench,
    elaborate,
    random_stimulus,
    sweep_random_stimulus,
)
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate_family
from repro.verilog import parse_source

# The batch backend's per-sweep cost is (nearly) lane-count independent,
# so the win grows with lanes: ~breakeven near 16 lanes, >3x at 64.
LANES = 64
CYCLES = 120


def main() -> None:
    module = generate_family("fifo", DeterministicRNG(0x9EEF))
    design = elaborate(parse_source(module.source), module.name)
    interface = module.interface
    print(f"design: {module.name} ({module.family}), "
          f"{LANES} lanes x {CYCLES} cycles")

    # -- high-level: one call sweeps N seeded episodes --------------------
    kwargs = dict(
        clock=interface.clock,
        reset=interface.reset,
        reset_active_high=interface.reset_active_high,
    )
    # Warm both compile caches and share the stimulus so the timings
    # compare steady-state sweep throughput, not one-time lowering.
    stimuli = [random_stimulus(design, CYCLES, seed) for seed in range(LANES)]
    sweep_random_stimulus(design, 2, range(LANES), **kwargs)
    sweep_random_stimulus(design, 2, range(LANES), backend="compiled",
                          **kwargs)

    start = time.perf_counter()
    batch = sweep_random_stimulus(
        design, CYCLES, range(LANES), stimuli=stimuli, **kwargs
    )
    batch_seconds = time.perf_counter() - start
    print(f"lane-parallel sweep:  {batch_seconds * 1e3:7.1f} ms "
          f"(vectorized={batch.vectorized})")

    start = time.perf_counter()
    scalar = sweep_random_stimulus(
        design, CYCLES, range(LANES), backend="compiled", stimuli=stimuli,
        **kwargs
    )
    scalar_seconds = time.perf_counter() - start
    print(f"scalar episode loop:  {scalar_seconds * 1e3:7.1f} ms")
    print(f"speedup:              {scalar_seconds / batch_seconds:7.2f} x")

    assert batch.traces == scalar.traces  # lane-for-lane identical
    assert batch.errors == scalar.errors
    print("per-lane traces identical across backends")
    for lane in (0, LANES - 1):
        final = batch.lane(lane)[-1]
        print(f"  lane {lane:2d} (seed {batch.seeds[lane]}): "
              f"final outputs {final}")

    # -- low-level: drive lanes yourself through BatchTestbench -----------
    bench = BatchTestbench(design, n_lanes=4, **kwargs)
    bench.apply_reset()
    # Each poke value may be an int (broadcast) or one value per lane.
    outputs = bench.step({
        "push": np.array([1, 1, 0, 0]),
        "pop": 0,
        "din": np.array([0xA, 0xB, 0xC, 0xD]),
    })
    print("BatchTestbench step, per-lane outputs:")
    for name, values in outputs.items():
        print(f"  {name:8s} {values.tolist()}")


if __name__ == "__main__":
    main()
