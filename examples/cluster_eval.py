#!/usr/bin/env python
"""A two-worker cluster evaluation with an injected worker kill.

Runs a pass@k plan twice — serially, then on a two-worker
:class:`~repro.engine.ClusterExecutor` whose worker 1 is configured to
hard-die (``os._exit``) on its second lease — and asserts the cluster
run is verdict-identical, candidate for candidate, after the requeue.
Progress streams through ``on_progress`` while chunks are out on lease,
and the trace export carries ``cluster.*`` counters.

Render the coordinator + worker logs as one report with::

    python tools/trace_report.py repro_obs --merge

CI runs this script as its cluster smoke test.
"""

from repro import obs
from repro.engine import ClusterExecutor
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm import LanguageModel
from repro.vereval import EvalConfig, build_problem_set


def main() -> None:
    obs.configure(obs.MODE_TRACE)

    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=4),
        EvalConfig(n_samples=4, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )
    # One chunk per problem's lockstep group: enough leases that the
    # doomed worker reaches its second one.
    plan = EvalPlan([model], [task], chunk_size=4)

    serial = plan.run()

    executor = ClusterExecutor(
        workers=2,
        heartbeat_s=0.2,
        timeout_s=2.0,
        worker_faults={1: {"die_on_lease": 2}},  # hard os._exit mid-run
    )
    with executor:
        clustered = plan.run(
            executor=executor,
            on_progress=lambda p: print(
                f"progress: {p.done}/{p.total} checked, {p.passed} passed"
            ),
        )
        progress = executor.progress()

    def verdicts(run):
        return [
            (r.model_name, r.task_id, r.unit_id, r.sample_index,
             r.passed, r.completion)
            for r in run.records
        ]

    assert verdicts(serial) == verdicts(clustered), (
        "cluster run diverged from serial"
    )
    assert progress.worker_deaths == 1, progress
    assert progress.requeues >= 1, progress
    counters = clustered.telemetry.counters
    assert counters.get("cluster.worker_deaths") == 1, counters
    assert counters.get("cluster.requeues", 0) >= 1, counters

    print(clustered.result(model.name, "passk").summary())
    print()
    print(f"verdict-identical to serial across {len(serial.records)} "
          "candidates, surviving 1 worker death "
          f"({progress.requeues} chunk(s) requeued)")
    print(f"trace artifacts in {obs.obs_dir()}/ — merge the worker logs "
          "with `python tools/trace_report.py --merge`")


if __name__ == "__main__":
    main()
