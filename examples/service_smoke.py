#!/usr/bin/env python
"""The service under fire: checkpoint fault + worker kill, still done.

Starts an in-process :class:`~repro.service.EvalService` with the full
``cluster,pool,serial`` degradation ladder and its HTTP window, arms two
faults through the environment —

* ``checkpoint.save:raise:3`` — the job's third checkpoint save throws
  (a transient storage failure), crashing attempt 1 mid-plan *after* one
  complete block (segment + head) is on disk;
* ``cluster.worker.lease:exit:2:<marker>`` — the first cluster worker to
  reach its second lease hard-dies (``os._exit``); the once-marker
  confines the death to a single worker across the fleet —

then submits a pass@k plan over HTTP and asserts the job still reaches
``done`` with verdicts identical, candidate for candidate, to a fresh
unfaulted serial run.  Attempt 1 survives the worker kill (coordinator
requeue), crashes on the checkpoint fault, and the supervisor's
:class:`~repro.engine.RetryPolicy` resumes attempt 2 from the last good
checkpoint generation.

CI runs this as the service smoke test and uploads the ledger plus the
merged trace as artifacts::

    python tools/trace_report.py repro_obs --merge
    python tools/jobctl.py tail <root>/ledger.jsonl
"""

import json
import os
import pickle
import shutil
import tempfile
import urllib.request

from repro import obs


def main() -> None:
    root = os.environ.get("SERVICE_SMOKE_ROOT") or tempfile.mkdtemp(
        prefix="repro-service-smoke-"
    )
    marker = os.path.join(root, "worker-kill.marker")
    os.environ.setdefault("REPRO_CLUSTER_WORKERS", "2")
    os.environ.setdefault("REPRO_CLUSTER_HEARTBEAT_S", "0.2")
    os.environ.setdefault("REPRO_CLUSTER_TIMEOUT_S", "2.0")

    obs.configure(obs.MODE_TRACE)

    from repro.evalkit import EvalPlan, PassAtKTask
    from repro.llm import LanguageModel
    from repro.service import EvalJobSpec, EvalService, ServiceConfig, serve
    from repro.vereval import EvalConfig, build_problem_set

    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=4),
        EvalConfig(n_samples=4, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )

    # The unfaulted reference first — REPRO_FAULTS is armed only after,
    # and is re-synced live by repro.testing.faults; cluster workers
    # spawned during the service run inherit it with fresh counters.
    reference = EvalPlan([model], [task], chunk_size=4).run()
    os.environ["REPRO_FAULTS"] = (
        f"checkpoint.save:raise:3,cluster.worker.lease:exit:2:{marker}"
    )

    plan = EvalPlan([model], [task], chunk_size=4)
    service = EvalService(
        os.path.join(root, "svc"),
        ServiceConfig(
            workers=1,
            max_retries=2,
            executors=("cluster", "pool", "serial"),
            retry_base_delay_s=0.0,
        ),
    )
    service.start()
    server = serve(service)

    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/submit",
        data=pickle.dumps(EvalJobSpec(plan, checkpoint_every=4)),
        method="POST",
        headers={"X-Repro-Client": "smoke"},
    )
    job = json.load(urllib.request.urlopen(request))
    print(f"submitted {job['job_id']} as client 'smoke'")

    assert service.join(timeout_s=180), "service did not settle in time"
    final = service.status(job["job_id"])
    print(f"final state: {final.state} after {final.attempts} attempt(s) "
          f"on executor {final.executor!r}")
    assert final.state == "done", final.to_dict()
    assert final.attempts == 2, (
        f"expected the checkpoint fault to cost exactly one attempt, "
        f"got {final.attempts}"
    )
    assert final.executor == "cluster" and not final.degraded, (
        "smoke expects the cluster rung to hold", final.to_dict())
    assert os.path.exists(marker), (
        "the worker-kill fault never fired (no lease reached nth=2)"
    )

    # Verdict identity: the faulted, retried, resumed service run must
    # match the unfaulted serial reference candidate for candidate.
    blob = urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}/result/{final.job_id}?pickle=1"
    ).read()
    run = pickle.loads(blob)

    def verdicts(result):
        return [
            (r.model_name, r.task_id, r.unit_id, r.sample_index,
             r.passed, r.completion)
            for r in result.records
        ]

    assert verdicts(run) == verdicts(reference), (
        "service run diverged from the unfaulted serial reference"
    )

    ledger = service.store.root / "ledger.jsonl"
    events = [json.loads(l) for l in ledger.read_text().splitlines()]
    crashes = [e for e in events if e.get("error") == "InjectedFault"]
    assert crashes, f"no InjectedFault crash in the ledger: {events}"

    service.close()
    server.shutdown()
    print(f"verdict-identical to serial across {len(run.records)} "
          "candidates, surviving 1 checkpoint fault + 1 worker kill")
    print(f"ledger: {ledger}")
    print(f"trace artifacts in {obs.obs_dir()}/ — merge the worker logs "
          "with `python tools/trace_report.py --merge`")
    if "SERVICE_SMOKE_ROOT" not in os.environ:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
