#!/usr/bin/env python
"""Multi-model evaluation as one resumable, parallel evalkit plan.

Both of the paper's benchmarks (pass@k functional correctness and the
copyright violation rate) for both models (base and FreeV) run as a
single :class:`repro.evalkit.EvalPlan`: the problem set and the
similarity index are built once and shared across models, sample-level
work units stream through the engine (fanned across a process pool on
multi-core machines), and the whole sweep checkpoints — kill the script
mid-run and start it again: it resumes where it stopped and finishes
with the identical result.
"""

import pathlib
import tempfile

from repro import WorldConfig
from repro.copyright import CopyrightBenchmark
from repro.core.freeset import FreeSetBuilder
from repro.core.freev import FreeVTrainer
from repro.engine import CheckpointStore, auto_executor
from repro.evalkit import CopyrightTask, EvalPlan, PassAtKTask
from repro.vereval import EvalConfig, build_problem_set

CHECKPOINT_DIR = pathlib.Path(tempfile.gettempdir()) / "repro-parallel-eval"


def main() -> None:
    freeset = FreeSetBuilder(
        world_config=WorldConfig(n_repos=150, seed=3, mega_file_modules=20)
    ).build()
    trainer = FreeVTrainer(freeset=freeset)
    base = trainer.base_model()
    freev = trainer.train()

    # Shared once across both models: the held-out problems and the
    # copyrighted-corpus similarity index.
    problems = build_problem_set(n_problems=12)
    benchmark = CopyrightBenchmark(trainer.copyrighted_corpus, num_prompts=40)

    plan = EvalPlan(
        models=[base, freev],
        tasks=[
            PassAtKTask(
                problems,
                EvalConfig(n_samples=10, ks=(1, 5, 10),
                           temperatures=(0.2, 0.8), max_new_tokens=500),
            ),
            CopyrightTask(benchmark, temperature=0.2),
        ],
        executor=auto_executor(),
    )

    store = CheckpointStore(CHECKPOINT_DIR)
    print(f"{plan.total_specs()} samples; checkpoints in {CHECKPOINT_DIR}")
    print("(kill and re-run this script: it resumes from the checkpoint)")
    run = plan.run(store=store, tag="example")

    for model in (base, freev):
        print()
        print(run.result(model.name, "passk").summary())
        print(run.result(model.name, "copyright").summary())

    report = run.to_json(include_text=False)
    out_path = CHECKPOINT_DIR / "run_result.json"
    out_path.write_text(report)
    print(f"\nper-sample provenance written to {out_path}")
    print("\nengine stage throughput:")
    print(run.engine_report)


if __name__ == "__main__":
    main()
