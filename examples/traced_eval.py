#!/usr/bin/env python
"""A small traced evaluation run: observability end to end.

Runs a two-problem pass@k plan under a two-worker process pool with
``repro.obs`` forced into trace mode, then prints the run's telemetry
summary.  The trace artifacts (``events.jsonl``, a Perfetto-loadable
``trace.json``, ``telemetry.json``) land under ``REPRO_OBS_DIR``
(default ``repro_obs/``); render them with::

    python tools/trace_report.py repro_obs

CI runs this script as its traced-eval smoke test and uploads the
resulting trace directory as a build artifact.
"""

from repro import obs
from repro.engine import ParallelExecutor
from repro.evalkit import EvalPlan, PassAtKTask
from repro.llm import LanguageModel
from repro.vereval import EvalConfig, build_problem_set


def main() -> None:
    # Trace mode regardless of the environment; REPRO_OBS_DIR still
    # picks the export root (configure(None) defers to it).
    obs.configure(obs.MODE_TRACE)

    model = LanguageModel.pretrain(
        "demo",
        ["module m(input a, output y); assign y = ~a; endmodule"] * 6,
    )
    task = PassAtKTask(
        build_problem_set(n_problems=2),
        EvalConfig(n_samples=4, ks=(1,), temperatures=(0.4,),
                   max_new_tokens=64),
    )
    executor = ParallelExecutor(workers=2)
    plan = EvalPlan([model], [task], executor=executor)
    try:
        run = plan.run()
    finally:
        executor.close()

    print(run.result(model.name, "passk").summary())
    print()
    print(run.telemetry.to_text())
    print(f"\ntrace artifacts in {obs.obs_dir()}/ — render with "
          "`python tools/trace_report.py`")


if __name__ == "__main__":
    main()
