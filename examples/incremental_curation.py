#!/usr/bin/env python
"""Incremental curation walkthrough: grow FreeSet without recurating it.

The execution engine keeps the dedup stage's LSH index (and every other
stage's state) alive between batches, so admitting newly scraped files
costs only the new batch — historical files are never re-filtered,
re-signed, or re-parsed.  This script:

1. scrapes a world and curates 90% of it through an
   :class:`IncrementalCurator`;
2. checkpoints the curator to disk mid-stream;
3. resumes from the checkpoint in a *fresh* curator and ingests the
   remaining 10%;
4. shows the per-stage engine metrics and verifies the result is
   identical to a from-scratch full recuration.
"""

import tempfile
import time

from repro import WorldConfig
from repro.core.freeset import FreeSetBuilder
from repro.curation import CurationPipeline, IncrementalCurator
from repro.engine import CheckpointStore


def main() -> None:
    builder = FreeSetBuilder(
        world_config=WorldConfig(n_repos=150, seed=99, mega_file_modules=25)
    )
    files, _ = builder.scrape()
    # Stratified split so the late batch carries the same license mix.
    batch = files[::10]
    base = [f for i, f in enumerate(files) if i % 10]
    print(f"scraped {len(files)} files; curating {len(base)} now, "
          f"{len(batch)} arrive later\n")

    print("== initial ingest (90% of the corpus) ==")
    curator = builder.incremental_curator()
    start = time.perf_counter()
    kept = curator.ingest(base)
    print(f"kept {len(kept)} files in {time.perf_counter() - start:.2f}s")

    with tempfile.TemporaryDirectory() as ckpt_dir:
        store = CheckpointStore(ckpt_dir)
        curator.save(store)
        print(f"checkpointed state: {store.keys()}")

        print("\n== resume in a fresh process and ingest the 10% batch ==")
        resumed = builder.incremental_curator()
        assert resumed.load(store)
        start = time.perf_counter()
        newly_kept = resumed.ingest(batch)
        batch_seconds = time.perf_counter() - start
        print(f"kept {len(newly_kept)} of {len(batch)} new files "
              f"in {batch_seconds:.3f}s — duplicates of *historical* files "
              "were dropped without recomputing their signatures")

        print("\n== engine per-stage metrics (cumulative) ==")
        print(resumed.graph.to_text())

        print("\n== cumulative funnel ==")
        print(resumed.funnel.to_text())

        print("\n== equivalence vs full recuration ==")
        start = time.perf_counter()
        full = CurationPipeline().run(base + batch)
        full_seconds = time.perf_counter() - start
        identical = [f.file_id for f in resumed.kept_files] == [
            f.file_id for f in full.files
        ]
        print(f"full recuration: {full_seconds:.2f}s "
              f"(incremental batch was {full_seconds / batch_seconds:.0f}x "
              f"faster); outputs identical: {identical}")
        assert identical


if __name__ == "__main__":
    main()
