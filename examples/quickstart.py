#!/usr/bin/env python
"""Quickstart: build FreeSet, train FreeV, generate Verilog.

Runs the paper's whole pipeline end to end at a small scale (about a
minute on a laptop):

1. generate a synthetic GitHub world and scrape it through the
   rate-limited, result-capped search API;
2. curate FreeSet (license filter -> dedup -> copyright filter -> syntax
   check) and print the Sec. IV-A funnel;
3. train the simulated Llama base and continually pre-train FreeV;
4. generate a Verilog module from a VerilogEval-style prompt and check it
   functionally against a golden reference.
"""

from repro import FreeVTrainer, GenerationConfig, WorldConfig
from repro.core.freeset import FreeSetBuilder
from repro.vereval import build_problem_set, check_completion


def main() -> None:
    print("== 1. scrape the synthetic GitHub ==")
    builder = FreeSetBuilder(
        world_config=WorldConfig(n_repos=150, seed=42, mega_file_modules=40)
    )
    freeset = builder.build()
    print(f"scrape: {freeset.scrape_report}")

    print("\n== 2. the FreeSet curation funnel (Sec. IV-A) ==")
    print(freeset.dataset.funnel.to_text())
    print(
        f"FreeSet: {freeset.dataset.rows} files, "
        f"{freeset.dataset.size_bytes / 1e6:.2f} MB"
    )

    print("\n== 3. train FreeV (continual pre-training, Sec. III-E) ==")
    trainer = FreeVTrainer(freeset=freeset)
    base = trainer.base_model()
    freev = trainer.train()
    print(f"base:  {base.report}")
    print(f"freev: {freev.report}")

    print("\n== 4. generate and functionally check a module (pass@5) ==")
    problem = build_problem_set(n_problems=1, families=["comparator"])[0]
    prompt = problem.prompt()
    print(prompt)
    config = GenerationConfig(temperature=0.8, max_new_tokens=400)
    verdicts = []
    best = None
    for seed in range(5):
        completion = freev.generate(prompt, config, seed=seed)
        passed, reason = check_completion(problem, completion)
        verdicts.append("PASS" if passed else f"FAIL({reason})")
        if passed and best is None:
            best = completion
    print(f"5 samples at T=0.8: {verdicts}")
    if best is not None:
        print("\nfirst functionally correct completion:")
        print(best)


if __name__ == "__main__":
    main()
