#!/usr/bin/env python
"""Drive the RTL simulator directly on a hierarchical design.

Shows the substrate under the functional benchmark: parse Verilog,
elaborate with parameter overrides (flattening hierarchy), run a clocked
testbench, and do a lockstep equivalence check that catches an injected
bug — then cross-checks the two simulator execution backends (the
levelized compiled backend used by default, and the AST interpreter kept
as reference) against each other.
"""

from repro.sim import (
    Testbench,
    compile_design,
    elaborate,
    equivalence_check,
    random_stimulus,
)
from repro.verilog import parse_source

SOURCE = """
module counter #(parameter WIDTH = 8) (
    input wire clk,
    input wire rst,
    input wire en,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk) begin
        if (rst) count <= {WIDTH{1'b0}};
        else if (en) count <= count + 1'b1;
    end
endmodule

module timer(
    input wire clk,
    input wire rst,
    input wire run,
    output wire [3:0] seconds,
    output wire minute_tick
);
    wire [3:0] sec;
    counter #(.WIDTH(4)) u_sec (.clk(clk), .rst(rst), .en(run), .count(sec));
    assign seconds = sec;
    assign minute_tick = (sec == 4'd15) & run;
endmodule
"""


def main() -> None:
    parsed = parse_source(SOURCE)
    design = elaborate(parsed, "timer")
    print("flattened signals:")
    for name, signal in sorted(design.signals.items()):
        direction = signal.direction or "internal"
        print(f"  {name:<14} width={signal.width:<3} {direction}")

    print("\nrunning 20 cycles:")
    bench = Testbench(design, clock="clk", reset="rst")
    bench.apply_reset()
    for cycle in range(20):
        out = bench.step({"run": 1})
        flag = " <-- minute tick" if out["minute_tick"] else ""
        print(f"  cycle {cycle:>2}: seconds={out['seconds']:>2}{flag}")

    print("\nequivalence check against a buggy variant (en dropped):")
    buggy = SOURCE.replace("else if (en)", "else")
    golden = elaborate(parse_source(SOURCE), "timer")
    candidate = elaborate(parse_source(buggy), "timer")
    stimulus = random_stimulus(golden, 30, seed=5)
    verdict = equivalence_check(
        golden, candidate, stimulus, clock="clk", reset="rst"
    )
    print(f"  equivalent: {verdict.equivalent}")
    if not verdict.equivalent:
        print(
            f"  first mismatch at cycle {verdict.first_mismatch_cycle}: "
            f"{verdict.mismatched_output} expected {verdict.expected} "
            f"got {verdict.actual}"
        )

    print("\ncompiled backend vs interpreter (same design, same stimulus):")
    compiled = compile_design(design)
    print(
        f"  {compiled.n_signals} signals slot-indexed, "
        f"{len(compiled.nodes)} comb nodes, "
        f"levelized={compiled.levelized}"
    )
    benches = [
        Testbench(elaborate(parsed, "timer"), "clk", "rst", backend=backend)
        for backend in ("compiled", "interp")
    ]
    for bench in benches:
        bench.apply_reset()
    identical = all(
        benches[0].step(vector) == benches[1].step(vector)
        for vector in stimulus
    )
    print(f"  cycle-identical over {len(stimulus)} cycles: {identical}")


if __name__ == "__main__":
    main()
