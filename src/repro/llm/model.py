"""Language-model training facade.

A :class:`LanguageModel` bundles a tokenizer, count tables, and decoding.
``LanguageModel.pretrain`` builds a base model from a corpus;
``continual_pretrain`` returns a *new* model whose count tables merge the
base's with counts from the fine-tuning corpus — the n-gram analogue of
the paper's continual pre-training run (the base model is untouched,
matching how the paper evaluates base and fine-tuned models side by
side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import TrainingError
from repro.llm.ngram import DEFAULT_ORDERS, NGramCounts, NGramLM
from repro.llm.sampler import GenerationConfig, Sampler
from repro.llm.tokenizer import BPETokenizer, train_tokenizer


@dataclass
class TrainingReport:
    """Summary statistics from a training run."""

    files: int
    tokens: int
    vocab_size: int
    ngram_pairs: int


class LanguageModel:
    """A trained model: tokenizer + n-gram counts + sampler."""

    def __init__(
        self,
        name: str,
        tokenizer: BPETokenizer,
        counts: NGramCounts,
        min_evidence: float = 1.0,
    ) -> None:
        self.name = name
        self.tokenizer = tokenizer
        self.counts = counts
        self._sampler = Sampler(tokenizer, NGramLM(counts, min_evidence))
        self.report: Optional[TrainingReport] = None

    # -- training -----------------------------------------------------------

    @classmethod
    def pretrain(
        cls,
        name: str,
        corpus: Sequence[str],
        num_merges: int = 512,
        orders=DEFAULT_ORDERS,
        max_train_tokens: Optional[int] = None,
        seed: int = 0,
    ) -> "LanguageModel":
        """Train a base model from scratch on ``corpus`` texts."""
        if not corpus:
            raise TrainingError(f"model {name!r}: empty training corpus")
        tokenizer = train_tokenizer(corpus, num_merges=num_merges)
        sequences = _encode_corpus(tokenizer, corpus, max_train_tokens)
        counts = NGramCounts.train(sequences, orders=orders)
        model = cls(name, tokenizer, counts)
        model.report = TrainingReport(
            files=len(corpus),
            tokens=int(counts.tokens_trained),
            vocab_size=tokenizer.vocab_size,
            ngram_pairs=counts.pair_count,
        )
        return model

    def continual_pretrain(
        self,
        name: str,
        corpus: Sequence[str],
        weight: float = 1.0,
        max_train_tokens: Optional[int] = None,
    ) -> "LanguageModel":
        """Continual pre-training: new model = base counts + corpus counts.

        The tokenizer is inherited from the base model, exactly as the
        paper keeps Llama's tokenizer when fine-tuning.
        """
        if not corpus:
            raise TrainingError(f"model {name!r}: empty fine-tuning corpus")
        sequences = _encode_corpus(self.tokenizer, corpus, max_train_tokens)
        new_counts = NGramCounts.train(sequences, orders=self.counts.orders)
        merged = self.counts.merged_with(new_counts, weight)
        model = LanguageModel(name, self.tokenizer, merged)
        model.report = TrainingReport(
            files=len(corpus),
            tokens=int(new_counts.tokens_trained),
            vocab_size=self.tokenizer.vocab_size,
            ngram_pairs=merged.pair_count,
        )
        return model

    # -- inference ---------------------------------------------------------

    def generate(
        self,
        prompt: str,
        config: Optional[GenerationConfig] = None,
        seed: int = 0,
        prompt_tokens: Optional[Sequence[int]] = None,
    ) -> str:
        return self._sampler.generate(prompt, config, seed, prompt_tokens)

    def encode_prompt(self, prompt: str) -> List[int]:
        """Tokenize a prompt for reuse across many ``generate`` calls."""
        return self.tokenizer.encode(prompt)

    def generate_batch(
        self,
        prompt: str,
        n: int,
        config: Optional[GenerationConfig] = None,
        seed: int = 0,
    ) -> List[str]:
        return self._sampler.generate_batch(prompt, n, config, seed)


def _encode_corpus(
    tokenizer: BPETokenizer,
    corpus: Sequence[str],
    max_train_tokens: Optional[int],
) -> List[List[int]]:
    sequences: List[List[int]] = []
    budget = max_train_tokens if max_train_tokens is not None else float("inf")
    for text in corpus:
        if budget <= 0:
            break
        ids = tokenizer.encode(text)
        if len(ids) > budget:
            ids = ids[: int(budget)]
        budget -= len(ids)
        if ids:
            sequences.append(ids)
    return sequences
