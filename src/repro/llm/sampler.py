"""Temperature sampling with stop-string support.

Implements the paper's inference protocol (Sec. III-E2): bounded token
budget, temperature-controlled sampling, generation terminated at the
first ``endmodule``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.llm.ngram import NGramLM
from repro.llm.tokenizer import BPETokenizer
from repro.utils.rng import DeterministicRNG


@dataclass
class GenerationConfig:
    """Decoding parameters (defaults mirror the paper's setup)."""

    max_new_tokens: int = 2048
    temperature: float = 0.8
    stop_strings: Sequence[str] = field(default_factory=lambda: ("endmodule",))
    #: include the stop string in the returned text (the paper's harness
    #: stops *at* the first endmodule, keeping it, so the module closes)
    include_stop: bool = True


class Sampler:
    """Couples a tokenizer and an n-gram LM into a text generator."""

    def __init__(self, tokenizer: BPETokenizer, lm: NGramLM) -> None:
        self.tokenizer = tokenizer
        self.lm = lm

    def _sample_token(
        self,
        context: List[int],
        temperature: float,
        rng: DeterministicRNG,
    ) -> int:
        next_tokens, weights, _ = self.lm.distribution(context)
        if len(next_tokens) == 1:
            return int(next_tokens[0])
        if temperature <= 1e-6:
            return int(next_tokens[int(np.argmax(weights))])
        # p_i proportional to count_i^(1/T)  (softmax of log-counts / T).
        logw = np.log(weights.astype(np.float64)) / temperature
        logw -= logw.max()
        probs = np.exp(logw)
        probs /= probs.sum()
        pick = rng.random()
        return int(next_tokens[int(np.searchsorted(np.cumsum(probs), pick))])

    def generate(
        self,
        prompt: str,
        config: Optional[GenerationConfig] = None,
        seed: int = 0,
        prompt_tokens: Optional[Sequence[int]] = None,
    ) -> str:
        """Generate a completion for ``prompt`` (completion text only).

        ``prompt_tokens`` optionally supplies the already-encoded prompt
        (it must equal ``encode(prompt)``); pass@k harnesses sample the
        same prompt many times and encode it once.
        """
        config = config or GenerationConfig()
        rng = DeterministicRNG(seed)
        if prompt_tokens is None:
            sequence = self.tokenizer.encode(prompt)
        else:
            sequence = list(prompt_tokens)
        # One growing sequence, extended in place: rebuilding
        # prompt+generated per sampled token made generation quadratic.
        text_parts: List[str] = []
        max_stop = max((len(s) for s in config.stop_strings), default=0)
        for _ in range(config.max_new_tokens):
            token = self._sample_token(sequence, config.temperature, rng)
            sequence.append(token)
            piece = self.tokenizer.decode([token])
            text_parts.append(piece)
            if max_stop:
                # Only the tail can newly contain a stop string.
                tail = "".join(text_parts[-(max_stop + len(piece)):])
                window = tail[-(max_stop + len(piece)):]
                for stop in config.stop_strings:
                    pos = window.find(stop)
                    if pos >= 0:
                        # One metrics write per completion, not per token.
                        obs.count("sampler.tokens", len(text_parts))
                        obs.count("sampler.completions")
                        text = "".join(text_parts)
                        end = text.find(stop) + (
                            len(stop) if config.include_stop else 0
                        )
                        return text[:end]
        obs.count("sampler.tokens", len(text_parts))
        obs.count("sampler.completions")
        return "".join(text_parts)

    def generate_batch(
        self,
        prompt: str,
        n: int,
        config: Optional[GenerationConfig] = None,
        seed: int = 0,
    ) -> List[str]:
        """n independent samples for the same prompt (pass@k protocol)."""
        return [
            self.generate(prompt, config, seed=DeterministicRNG(seed).fork(i).seed)
            for i in range(n)
        ]
