"""Language-model substrate.

The paper fine-tunes Llama-3.1-8B-Instruct on FreeSet via continual
pre-training (Sec. III-E).  This package substitutes a from-scratch
statistical language model with the properties the paper's experiments
actually measure:

* **memorization** — a backoff n-gram model trained on a corpus will
  regurgitate distinctive training sequences when prompted with their
  prefixes, which is precisely the mechanism behind the copyright
  benchmark (Fig. 3);
* **domain competence** — exposure to Verilog idioms measurably improves
  the model's ability to complete module bodies, which drives the
  VerilogEval pass@k improvements (Table II);
* **temperature-controlled diversity** — sampling spreads over observed
  continuations, so pass@10 > pass@1 exactly as in the paper's protocol.

Components: a byte-fallback BPE tokenizer (:mod:`repro.llm.tokenizer`), a
count-table n-gram LM with hashed contexts (:mod:`repro.llm.ngram`), a
temperature sampler with stop-string support (:mod:`repro.llm.sampler`),
and the training facade (:mod:`repro.llm.model`), where *continual
pre-training is literally a weighted merge of count tables* — the n-gram
analogue of additional gradient epochs on new data.
"""

from repro.llm.tokenizer import BPETokenizer, train_tokenizer
from repro.llm.ngram import NGramCounts, NGramLM, DEFAULT_ORDERS
from repro.llm.sampler import GenerationConfig, Sampler
from repro.llm.model import LanguageModel, TrainingReport

__all__ = [
    "BPETokenizer",
    "train_tokenizer",
    "NGramCounts",
    "NGramLM",
    "DEFAULT_ORDERS",
    "GenerationConfig",
    "Sampler",
    "LanguageModel",
    "TrainingReport",
]
