"""Backoff n-gram language model with hashed contexts and numpy tables.

The model keeps, for each order ``m`` in :data:`DEFAULT_ORDERS`, a compact
count table mapping *hashed* length-``m`` contexts to observed next-token
distributions.  Tables are columnar numpy arrays (sorted context hash,
CSR offsets, next-token ids, counts), so memory is ~16 bytes per distinct
(context, next-token) pair and merging two tables (continual pre-training)
is a vectorized concatenate + re-aggregate.

Context hashing uses a polynomial rolling hash in uint64 wraparound
arithmetic; collisions between distinct contexts are possible but
astronomically unlikely at corpus scale and only perturb one
distribution if they occur.

Prediction uses *longest-match backoff*: the distribution comes from the
highest order whose context was observed (optionally requiring a minimum
evidence count).  This is what produces both memorization (training-file
prefixes have deterministic continuations at high orders) and graceful
degradation on novel prompts (fall back to generic code statistics).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError

#: Orders (context lengths) tracked by the model, highest first.  Order 0
#: is the unigram fallback, so prediction always succeeds.  The high top
#: order makes continuations of distinctive training text near-
#: deterministic (memorization), while the intermediate orders provide
#: graceful backoff on novel prompts.
DEFAULT_ORDERS: Tuple[int, ...] = (16, 10, 6, 3, 1, 0)

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)
_HASH_SEED = np.uint64(0x51_7CC1B727220A95)


def _hash_contexts(tokens: np.ndarray, order: int) -> np.ndarray:
    """Rolling polynomial hash of every length-``order`` window.

    Returns an array ``h`` where ``h[i]`` hashes ``tokens[i-order:i]`` for
    ``i in [order, len(tokens)]`` — i.e. the context *ending just before*
    position ``i``; the array is aligned so entry ``j`` corresponds to
    next-token position ``j + order``.
    """
    n = len(tokens)
    if order == 0:
        return np.full(n, _HASH_SEED, dtype=np.uint64)
    if n < order:
        return np.empty(0, dtype=np.uint64)
    acc = np.full(n - order + 1, _HASH_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for j in range(order):
            acc = acc * _HASH_MULT + tokens[j:n - order + 1 + j].astype(np.uint64)
    # acc[i] hashes tokens[i : i+order]; contexts for next positions
    # order..n are acc[0 : n-order+1].
    return acc


def hash_context(context: Sequence[int], order: int) -> int:
    """Hash the last ``order`` tokens of ``context`` (python-side)."""
    acc = int(_HASH_SEED)
    if order > 0:
        # Slice only the tail: copying the whole context here made every
        # sampled token O(len(context)) per order — quadratic generation.
        window = context[-order:]
        if len(window) < order:
            raise ValueError("context shorter than requested order")
        mult = int(_HASH_MULT)
        for token in window:
            acc = ((acc * mult) + int(token)) & 0xFFFFFFFFFFFFFFFF
    return acc


@dataclass
class _OrderTable:
    """CSR count table for one order."""

    keys: np.ndarray      # sorted unique context hashes, uint64
    offsets: np.ndarray   # int64, len(keys)+1
    next_tokens: np.ndarray  # int32
    counts: np.ndarray    # float64 (weighted merges)
    #: lazy python-int mirror of ``keys`` for bisect-based lookups; the
    #: numpy scalar boxing of per-token ``searchsorted`` calls dominated
    #: sampling, and generation does one lookup per order per token
    _keys_list: Optional[List[int]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def empty(cls) -> "_OrderTable":
        return cls(
            keys=np.empty(0, dtype=np.uint64),
            offsets=np.zeros(1, dtype=np.int64),
            next_tokens=np.empty(0, dtype=np.int32),
            counts=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_pairs(
        cls, ctx_hashes: np.ndarray, next_tokens: np.ndarray, weights: np.ndarray
    ) -> "_OrderTable":
        if len(ctx_hashes) == 0:
            return cls.empty()
        order_idx = np.lexsort((next_tokens, ctx_hashes))
        ctx = ctx_hashes[order_idx]
        nxt = next_tokens[order_idx].astype(np.int32)
        wts = weights[order_idx].astype(np.float64)
        boundary = np.empty(len(ctx), dtype=bool)
        boundary[0] = True
        boundary[1:] = (ctx[1:] != ctx[:-1]) | (nxt[1:] != nxt[:-1])
        starts = np.flatnonzero(boundary)
        agg_counts = np.add.reduceat(wts, starts)
        agg_ctx = ctx[starts]
        agg_next = nxt[starts]
        key_boundary = np.empty(len(agg_ctx), dtype=bool)
        key_boundary[0] = True
        key_boundary[1:] = agg_ctx[1:] != agg_ctx[:-1]
        key_starts = np.flatnonzero(key_boundary)
        keys = agg_ctx[key_starts]
        offsets = np.empty(len(keys) + 1, dtype=np.int64)
        offsets[:-1] = key_starts
        offsets[-1] = len(agg_ctx)
        return cls(
            keys=keys, offsets=offsets, next_tokens=agg_next, counts=agg_counts
        )

    def lookup(self, ctx_hash: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(next_tokens, counts) for a context hash, or None."""
        keys = self._keys_list
        if keys is None:
            keys = self.keys.tolist()
            self._keys_list = keys
        if not keys:
            return None
        pos = bisect_left(keys, ctx_hash)
        if pos >= len(keys) or keys[pos] != ctx_hash:
            return None
        lo, hi = int(self.offsets[pos]), int(self.offsets[pos + 1])
        return self.next_tokens[lo:hi], self.counts[lo:hi]

    def __getstate__(self):
        # The bisect mirror is derived data; rebuild it per process
        # instead of doubling the pickled table size.
        state = self.__dict__.copy()
        state["_keys_list"] = None
        return state

    def merge(self, other: "_OrderTable", weight: float) -> "_OrderTable":
        """Counts of self plus ``weight`` x counts of other."""
        if len(other.next_tokens) == 0:
            return self
        ctx_self = np.repeat(self.keys, np.diff(self.offsets))
        ctx_other = np.repeat(other.keys, np.diff(other.offsets))
        return _OrderTable.from_pairs(
            np.concatenate([ctx_self, ctx_other]),
            np.concatenate([self.next_tokens, other.next_tokens]),
            np.concatenate([self.counts, other.counts * weight]),
        )

    @property
    def pair_count(self) -> int:
        return len(self.next_tokens)


@dataclass
class NGramCounts:
    """Count tables for all orders (the model's trainable state)."""

    orders: Tuple[int, ...] = DEFAULT_ORDERS
    tables: Dict[int, _OrderTable] = field(default_factory=dict)
    tokens_trained: float = 0.0

    def __post_init__(self) -> None:
        if sorted(self.orders, reverse=True) != list(self.orders):
            raise TrainingError("orders must be strictly decreasing")
        if 0 not in self.orders:
            raise TrainingError("order 0 (unigram fallback) is required")
        for order in self.orders:
            self.tables.setdefault(order, _OrderTable.empty())

    @classmethod
    def train(
        cls,
        token_sequences: Sequence[Sequence[int]],
        orders: Tuple[int, ...] = DEFAULT_ORDERS,
        weight: float = 1.0,
    ) -> "NGramCounts":
        """Count n-grams from token sequences (each sequence = one file;
        n-grams never cross file boundaries)."""
        counts = cls(orders=orders)
        per_order_ctx: Dict[int, List[np.ndarray]] = {o: [] for o in orders}
        per_order_next: Dict[int, List[np.ndarray]] = {o: [] for o in orders}
        total = 0
        for sequence in token_sequences:
            tokens = np.asarray(sequence, dtype=np.int64)
            total += len(tokens)
            for order in orders:
                if len(tokens) <= order:
                    continue
                hashes = _hash_contexts(tokens, order)
                per_order_ctx[order].append(hashes[: len(tokens) - order])
                per_order_next[order].append(tokens[order:].astype(np.int32))
        for order in orders:
            if not per_order_ctx[order]:
                continue
            ctx = np.concatenate(per_order_ctx[order])
            nxt = np.concatenate(per_order_next[order])
            counts.tables[order] = _OrderTable.from_pairs(
                ctx, nxt, np.full(len(ctx), weight, dtype=np.float64)
            )
        counts.tokens_trained = float(total) * weight
        return counts

    def merged_with(self, other: "NGramCounts", weight: float = 1.0) -> "NGramCounts":
        """New counts = self + weight x other (continual pre-training)."""
        if self.orders != other.orders:
            raise TrainingError("cannot merge models with different orders")
        merged = NGramCounts(orders=self.orders)
        for order in self.orders:
            merged.tables[order] = self.tables[order].merge(
                other.tables[order], weight
            )
        merged.tokens_trained = self.tokens_trained + other.tokens_trained * weight
        return merged

    @property
    def pair_count(self) -> int:
        return sum(t.pair_count for t in self.tables.values())


class NGramLM:
    """Longest-match backoff predictor over :class:`NGramCounts`."""

    def __init__(self, counts: NGramCounts, min_evidence: float = 1.0) -> None:
        self.counts = counts
        self.min_evidence = min_evidence

    def distribution(
        self, context: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """(next_tokens, counts, order_used) for the longest matching order.

        Falls through orders whose total evidence is below
        ``min_evidence``; order 0 always matches (if anything was trained).
        """
        for order in self.counts.orders:
            if order > len(context):
                continue
            table = self.counts.tables[order]
            hit = table.lookup(hash_context(context, order))
            if hit is None:
                continue
            next_tokens, weights = hit
            if order > 0 and float(weights.sum()) < self.min_evidence:
                continue
            return next_tokens, weights, order
        raise TrainingError("model has no training data (empty unigram table)")

    def greedy_next(self, context: Sequence[int]) -> int:
        next_tokens, weights, _ = self.distribution(context)
        return int(next_tokens[int(np.argmax(weights))])
