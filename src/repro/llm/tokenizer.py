"""Byte-fallback BPE tokenizer.

Text is pre-tokenized into words (identifiers, numbers, punctuation runs,
whitespace runs), each word is mapped to its UTF-8 bytes, and learned BPE
merges combine frequent adjacent byte pairs *within* words.  The base
vocabulary is all 256 byte values, so any input encodes without unknown
tokens — important because prompts at inference time contain identifiers
never seen in training.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import TrainingError

_PRETOKEN_RE = re.compile(
    r"[A-Za-z_$][A-Za-z0-9_$]*"   # identifiers / keywords
    r"|\d+"                        # number runs
    r"|[ ]+|\t+|\n+"               # whitespace runs (kept, code is spatial)
    r"|\s"                         # rare whitespace (\r, \f, ...) singly
    r"|[^\sA-Za-z0-9_$]"           # single punctuation
)

Pair = Tuple[int, int]


def pretokenize(text: str) -> List[str]:
    """Split text into the word units BPE merges operate within."""
    return _PRETOKEN_RE.findall(text)


class BPETokenizer:
    """Encoder/decoder over a fixed merge list.

    Token ids 0..255 are raw bytes; id 256+i is the result of merge i.
    """

    def __init__(self, merges: Sequence[Pair]) -> None:
        self.merges: List[Pair] = list(merges)
        #: pair -> merged token id, in priority order
        self._ranks: Dict[Pair, int] = {
            pair: 256 + i for i, pair in enumerate(self.merges)
        }
        #: token id -> bytes
        self._decode_table: List[bytes] = [bytes([i]) for i in range(256)]
        for left, right in self.merges:
            self._decode_table.append(
                self._decode_table[left] + self._decode_table[right]
            )
        self._word_cache: Dict[str, Tuple[int, ...]] = {}

    @property
    def vocab_size(self) -> int:
        return 256 + len(self.merges)

    def _encode_word(self, word: str) -> Tuple[int, ...]:
        cached = self._word_cache.get(word)
        if cached is not None:
            return cached
        symbols: List[int] = list(word.encode("utf-8"))
        while len(symbols) > 1:
            # Find the lowest-rank (earliest-learned) applicable merge.
            best_rank = None
            best_index = -1
            for i in range(len(symbols) - 1):
                rank = self._ranks.get((symbols[i], symbols[i + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_index = i
            if best_rank is None:
                break
            symbols[best_index:best_index + 2] = [best_rank]
        result = tuple(symbols)
        if len(self._word_cache) < 1 << 18:
            self._word_cache[word] = result
        return result

    def encode(self, text: str) -> List[int]:
        out: List[int] = []
        for word in pretokenize(text):
            out.extend(self._encode_word(word))
        return out

    def decode(self, ids: Iterable[int]) -> str:
        data = b"".join(self._decode_table[i] for i in ids)
        return data.decode("utf-8", errors="replace")


def train_tokenizer(
    texts: Sequence[str],
    num_merges: int = 512,
    max_chars: int = 2_000_000,
) -> BPETokenizer:
    """Learn BPE merges from sample texts.

    Uses the classic word-frequency formulation with incremental pair-count
    maintenance, so training is proportional to (unique words x merges
    actually touching them), not corpus size.
    """
    if num_merges < 0:
        raise TrainingError("num_merges must be non-negative")
    # Count unique words over a bounded sample.
    word_freq: Dict[str, int] = {}
    budget = max_chars
    for text in texts:
        if budget <= 0:
            break
        sample = text[:budget]
        budget -= len(sample)
        for word in pretokenize(sample):
            word_freq[word] = word_freq.get(word, 0) + 1

    words: List[List[int]] = []
    freqs: List[int] = []
    for word, freq in word_freq.items():
        words.append(list(word.encode("utf-8")))
        freqs.append(freq)

    # pair -> total count; pair -> set of word indices containing it
    pair_counts: Dict[Pair, int] = {}
    pair_words: Dict[Pair, set] = {}

    def add_word_pairs(index: int, sign: int) -> None:
        symbols = words[index]
        freq = freqs[index] * sign
        for a, b in zip(symbols, symbols[1:]):
            pair = (a, b)
            pair_counts[pair] = pair_counts.get(pair, 0) + freq
            if sign > 0:
                pair_words.setdefault(pair, set()).add(index)

    for index in range(len(words)):
        add_word_pairs(index, +1)

    merges: List[Pair] = []
    for _ in range(num_merges):
        live = {p: c for p, c in pair_counts.items() if c > 0}
        if not live:
            break
        best = max(live.items(), key=lambda kv: (kv[1], kv[0]))[0]
        if live[best] < 2:
            break
        new_id = 256 + len(merges)
        merges.append(best)
        affected = list(pair_words.get(best, ()))
        for index in affected:
            symbols = words[index]
            if len(symbols) < 2:
                continue
            add_word_pairs(index, -1)
            merged: List[int] = []
            i = 0
            while i < len(symbols):
                if (
                    i + 1 < len(symbols)
                    and symbols[i] == best[0]
                    and symbols[i + 1] == best[1]
                ):
                    merged.append(new_id)
                    i += 2
                else:
                    merged.append(symbols[i])
                    i += 1
            words[index] = merged
            add_word_pairs(index, +1)
    return BPETokenizer(merges)
