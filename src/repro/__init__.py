"""repro — reproduction of "Free and Fair Hardware: A Pathway to Copyright
Infringement-Free Verilog Generation using LLMs" (DAC 2025).

The package builds, from scratch, every system the paper describes or
depends on:

* a Verilog-2001-subset front end and RTL simulator (the syntax filter
  and the functional evaluator);
* a synthetic GitHub with a rate-limited, result-capped search API and
  the granularized scraper that works around it;
* the FreeSet curation pipeline: license filter, file-level copyright
  filter, MinHash/LSH de-duplication, syntax check — with full funnel
  accounting;
* a statistical language-model substrate in which continual pre-training
  is a literal count-table merge, reproducing both memorization (the
  copyright benchmark) and domain competence (VerilogEval pass@k);
* the copyright-infringement benchmark and a mini-VerilogEval with the
  unbiased pass@k estimator;
* policy simulations of the prior works compared in Tables I/II and
  Figure 3.

Quickstart::

    from repro import FreeVTrainer

    trainer = FreeVTrainer()          # builds world, scrapes, curates
    freev = trainer.train()           # continual pre-training on FreeSet
    print(freev.generate("module counter(\\n    input wire clk,"))
"""

from repro.errors import ReproError
from repro.core.freeset import FreeSetBuilder, FreeSetResult
from repro.core.freev import FreeVTrainer, HeadlineReport
from repro.core.comparison import (
    DATASET_POLICIES,
    MODEL_SPECS,
    ModelZoo,
    simulate_prior_dataset,
)
from repro.curation import CurationConfig, CuratedDataset, CurationPipeline
from repro.copyright import CopyrightBenchmark, collect_copyrighted_corpus
from repro.github import WorldConfig, generate_world
from repro.llm import GenerationConfig, LanguageModel
from repro.vereval import EvalConfig, build_problem_set, evaluate_model, pass_at_k

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "FreeSetBuilder",
    "FreeSetResult",
    "FreeVTrainer",
    "HeadlineReport",
    "DATASET_POLICIES",
    "MODEL_SPECS",
    "ModelZoo",
    "simulate_prior_dataset",
    "CurationConfig",
    "CuratedDataset",
    "CurationPipeline",
    "CopyrightBenchmark",
    "collect_copyrighted_corpus",
    "WorldConfig",
    "generate_world",
    "GenerationConfig",
    "LanguageModel",
    "EvalConfig",
    "build_problem_set",
    "evaluate_model",
    "pass_at_k",
    "__version__",
]
