"""repro — reproduction of "Free and Fair Hardware: A Pathway to Copyright
Infringement-Free Verilog Generation using LLMs" (DAC 2025).

The package builds, from scratch, every system the paper describes or
depends on:

* a Verilog-2001-subset front end and RTL simulator (the syntax filter
  and the functional evaluator);
* a synthetic GitHub with a rate-limited, result-capped search API and
  the granularized scraper that works around it;
* the FreeSet curation pipeline: license filter, file-level copyright
  filter, MinHash/LSH de-duplication, syntax check — with full funnel
  accounting;
* the :mod:`repro.engine` execution substrate the pipeline compiles to:
  stages stream the corpus in chunks (never materializing it per stage),
  parallel-safe stages fan out across a process pool with an
  order-preserving merge, batched MinHash permutations and a
  regex-accelerated lexer speed the hot stages with bit-identical
  results, and all stage state — including the dedup LSH index —
  checkpoints to disk, so runs resume and new file batches ingest
  incrementally (:class:`repro.curation.IncrementalCurator`) without
  re-deduplicating the world;
* a statistical language-model substrate in which continual pre-training
  is a literal count-table merge, reproducing both memorization (the
  copyright benchmark) and domain competence (VerilogEval pass@k);
* the copyright-infringement benchmark and a mini-VerilogEval with the
  unbiased pass@k estimator — both executed through
  :mod:`repro.evalkit`, the engine-backed evaluation layer: an
  :class:`~repro.evalkit.EvalPlan` (models x tasks x protocol params)
  compiles to a :class:`~repro.engine.StageGraph` of sample-level work
  units (seed/prompt expansion, generation, pooled functional/similarity
  checking with an order-preserving merge, aggregation), producing typed
  :class:`~repro.evalkit.RunResult` records with per-sample provenance,
  resuming killed sweeps from :class:`~repro.engine.CheckpointStore`
  snapshots, and sharing the problem set and similarity index across the
  models of a multi-model plan.  ``evaluate_model``,
  ``CopyrightBenchmark.evaluate``, ``FreeVTrainer.headline``, and
  ``ModelZoo.evaluate`` are facades over it with numerically identical
  output;
* policy simulations of the prior works compared in Tables I/II and
  Figure 3.

Quickstart::

    from repro import FreeVTrainer

    trainer = FreeVTrainer()          # builds world, scrapes, curates
    freev = trainer.train()           # continual pre-training on FreeSet
    print(freev.generate("module counter(\\n    input wire clk,"))
"""

from repro.errors import ReproError
from repro.core.freeset import FreeSetBuilder, FreeSetResult
from repro.core.freev import FreeVTrainer, HeadlineReport
from repro.core.comparison import (
    DATASET_POLICIES,
    MODEL_SPECS,
    ModelZoo,
    simulate_prior_dataset,
)
from repro.curation import (
    CurationConfig,
    CuratedDataset,
    CurationPipeline,
    IncrementalCurator,
)
from repro.copyright import CopyrightBenchmark, collect_copyrighted_corpus
from repro.evalkit import (
    CopyrightTask,
    EvalPlan,
    EvalTask,
    PassAtKTask,
    RunResult,
    SampleRecord,
)
from repro.github import WorldConfig, generate_world
from repro.llm import GenerationConfig, LanguageModel
from repro.vereval import EvalConfig, build_problem_set, evaluate_model, pass_at_k

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "FreeSetBuilder",
    "FreeSetResult",
    "FreeVTrainer",
    "HeadlineReport",
    "DATASET_POLICIES",
    "MODEL_SPECS",
    "ModelZoo",
    "simulate_prior_dataset",
    "CurationConfig",
    "CuratedDataset",
    "CurationPipeline",
    "IncrementalCurator",
    "CopyrightBenchmark",
    "collect_copyrighted_corpus",
    "CopyrightTask",
    "EvalPlan",
    "EvalTask",
    "PassAtKTask",
    "RunResult",
    "SampleRecord",
    "WorldConfig",
    "generate_world",
    "GenerationConfig",
    "LanguageModel",
    "EvalConfig",
    "build_problem_set",
    "evaluate_model",
    "pass_at_k",
    "__version__",
]
