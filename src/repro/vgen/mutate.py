"""Near-miss mutation operators over generated RTL modules.

A checker is only as good as the candidates it can tell apart.  These
operators take a :class:`~repro.vgen.base.GeneratedModule` and produce
*near-miss* variants — syntactically valid, interface-identical modules
whose behaviour differs from the golden in exactly one subtle way — the
benchmark-for-the-benchmark ROADMAP asks for:

* ``reset_polarity`` — the reset condition is inverted (``if (rst)`` →
  ``if (!rst)``), so the design resets during normal operation and runs
  free during reset;
* ``blocking`` — every nonblocking assignment in the clocked blocks
  becomes blocking (``<=`` → ``=``), so later statements in a block read
  this edge's value instead of the previous one (only observable when a
  block's statements are data-dependent — otherwise the mutant is a true
  equivalent, which is itself useful for measuring false kills);
* ``narrow_reg`` — the first internal register declaration loses its top
  bit (``reg [N:0] x`` → ``reg [N-1:0] x``), an off-by-one width that
  only shows once the register value needs that bit.

Operators are purely textual (regex over the generated source), which
keeps them family-agnostic; each returns ``None`` when the pattern does
not occur, and :func:`mutate` collects every applicable mutant.  The
near-miss discrimination suite (``tests/test_cegis.py``) feeds these to
the scalar and CEGIS checkers and measures how many each kills.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.vgen.base import GeneratedModule

__all__ = ["Mutant", "MUTATION_KINDS", "mutate"]


@dataclass(frozen=True)
class Mutant:
    """One near-miss variant of a generated module."""

    kind: str
    source: str
    description: str


#: one nonblocking assignment statement per line — the LHS-anchored match
#: cannot hit relational ``<=`` (those sit behind ``if (`` / ``assign``)
_NONBLOCKING = re.compile(
    r"^(?P<lead>\s*)(?P<lhs>[A-Za-z_]\w*(?:\s*\[[^\]]*\])?)\s*<=\s*",
    re.MULTILINE,
)

#: a standalone internal register declaration; port regs are declared
#: inside the port list (``output reg [..] q``) and never match
_REG_DECL = re.compile(
    r"^(?P<lead>\s*)reg\s*\[(?P<msb>\d+):0\]\s*(?P<name>[A-Za-z_]\w*)\s*;",
    re.MULTILINE,
)


def _mutate_reset_polarity(module: GeneratedModule) -> Optional[str]:
    reset = module.interface.reset
    if not reset:
        return None
    needle = f"if ({reset})"
    if needle not in module.source:
        return None
    return module.source.replace(needle, f"if (!{reset})", 1)


def _mutate_blocking(module: GeneratedModule) -> Optional[str]:
    if module.interface.clock is None:
        return None
    mutated, count = _NONBLOCKING.subn(
        lambda m: f"{m.group('lead')}{m.group('lhs')} = ", module.source
    )
    return mutated if count else None


def _mutate_narrow_reg(module: GeneratedModule) -> Optional[str]:
    for match in _REG_DECL.finditer(module.source):
        msb = int(match.group("msb"))
        if msb < 1:
            continue  # a 1-bit register cannot lose a bit
        replacement = (
            f"{match.group('lead')}reg [{msb - 1}:0] {match.group('name')};"
        )
        return (
            module.source[: match.start()]
            + replacement
            + module.source[match.end():]
        )
    return None


_OPERATORS: Dict[str, Callable[[GeneratedModule], Optional[str]]] = {
    "reset_polarity": _mutate_reset_polarity,
    "blocking": _mutate_blocking,
    "narrow_reg": _mutate_narrow_reg,
}

#: stable operator order (affects seeded sampling downstream)
MUTATION_KINDS = tuple(_OPERATORS)

_DESCRIPTIONS = {
    "reset_polarity": "reset condition inverted (wrong polarity)",
    "blocking": "nonblocking assignments swapped to blocking",
    "narrow_reg": "internal register narrowed by one bit",
}


def mutate(module: GeneratedModule) -> List[Mutant]:
    """Every applicable near-miss mutant of ``module``, in kind order.

    Mutants preserve the module header (and therefore the interface
    signature) by construction; a mutant whose operator pattern does not
    occur in the source is simply omitted.  Mutated sources that no
    longer differ from the original are omitted too.
    """
    mutants: List[Mutant] = []
    for kind, operator in _OPERATORS.items():
        mutated = operator(module)
        if mutated is None or mutated == module.source:
            continue
        mutants.append(
            Mutant(
                kind=kind,
                source=mutated,
                description=(
                    f"{module.family}/{module.name}: {_DESCRIPTIONS[kind]}"
                ),
            )
        )
    return mutants
