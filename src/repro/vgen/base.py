"""Shared infrastructure for the RTL generator families."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.rng import DeterministicRNG


@dataclass
class ModuleInterface:
    """Testbench-facing description of a generated module's ports."""

    module_name: str
    clock: Optional[str] = None
    reset: Optional[str] = None
    reset_active_high: bool = True
    inputs: List[Tuple[str, int]] = field(default_factory=list)
    outputs: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def is_sequential(self) -> bool:
        return self.clock is not None


@dataclass
class GeneratedModule:
    """One generated RTL module plus everything its consumers need."""

    family: str
    source: str
    interface: ModuleInterface
    description: str
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.interface.module_name

    def header_prompt(self) -> str:
        """The module-header portion used as the VerilogEval-style prompt:
        everything up to and including the port list's closing ``);``."""
        idx = self.source.index(");")
        return self.source[: idx + 2] + "\n"


@dataclass
class Style:
    """Surface-style knobs applied uniformly within one generated file.

    Style variation keeps same-family files from being trivial duplicates,
    which matters for the de-duplication experiments: only *copied* files
    (injected separately by the corpus builder) should be near-duplicates.
    """

    indent: str = "    "
    comment: str = "short"  # none | short | banner
    lowercase_keep: bool = True
    signal_flavor: int = 0  # index into per-family synonym tables

    def comment_block(self, title: str, lines: Optional[List[str]] = None) -> str:
        if self.comment == "none":
            return ""
        if self.comment == "short":
            return f"// {title}\n"
        bar = "//" + "-" * 66 + "\n"
        body = "".join(f"// {line}\n" for line in (lines or [title]))
        return bar + body + bar


_INDENTS = ["  ", "    ", "   "]
_COMMENTS = ["none", "short", "banner"]


def random_style(rng: DeterministicRNG) -> Style:
    """Draw a random surface style."""
    return Style(
        indent=rng.choice(_INDENTS),
        comment=rng.choice(_COMMENTS),
        signal_flavor=rng.randint(0, 3),
    )


def pick(options: List[str], style: Style) -> str:
    """Pick a synonym by the style's flavor index (stable within a file)."""
    return options[style.signal_flavor % len(options)]


def reindent(body: str, style: Style) -> str:
    """Re-indent generator template text (written with 4-space levels)."""
    out_lines = []
    for line in body.splitlines():
        stripped = line.lstrip(" ")
        level = (len(line) - len(stripped)) // 4
        out_lines.append(style.indent * level + stripped)
    return "\n".join(out_lines)


def width_phrase(width: int) -> str:
    return f"{width}-bit" if width > 1 else "1-bit"
