"""Parameterized RTL generators.

Real-world Verilog corpora (what the paper scrapes from GitHub) are full of
small, heavily-reused design idioms: counters, muxes, ALUs, FIFOs, FSMs.
This package generates such modules with randomized parameters and surface
style, giving the reproduction a corpus with realistic structure for every
downstream consumer:

* the synthetic GitHub world (:mod:`repro.github`) populates repositories
  with these files (plus injected license/copyright headers, duplicates,
  and corrupted files);
* the copyrighted corpus for the infringement benchmark
  (:mod:`repro.copyright`) is generated from the same families with
  proprietary headers;
* the mini-VerilogEval problems (:mod:`repro.vereval`) are
  held-out draws with golden RTL and English descriptions.

Every generator returns a :class:`~repro.vgen.base.GeneratedModule` whose
source parses and simulates under :mod:`repro.verilog` / :mod:`repro.sim`.
"""

from repro.vgen.base import (
    GeneratedModule,
    ModuleInterface,
    Style,
    random_style,
)
from repro.vgen.registry import FAMILIES, generate, generate_family, family_names
from repro.vgen.mutate import Mutant, MUTATION_KINDS, mutate

__all__ = [
    "GeneratedModule",
    "ModuleInterface",
    "Style",
    "random_style",
    "FAMILIES",
    "generate",
    "generate_family",
    "family_names",
    "Mutant",
    "MUTATION_KINDS",
    "mutate",
]
