"""Sequential (clocked) RTL generator families.

All families use a synchronous active-high reset named ``rst`` and a clock
named ``clk`` so the shared testbench protocol (reset, then drive/tick) is
uniform across the corpus and the eval problems.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.rng import DeterministicRNG
from repro.vgen.base import (
    GeneratedModule,
    ModuleInterface,
    Style,
    pick,
    random_style,
    reindent,
    width_phrase,
)


def _style(rng: DeterministicRNG, style: Optional[Style]) -> Style:
    return style if style is not None else random_style(rng)


def gen_counter(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Up/down counter with enable and optional load."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 12, 16])
    direction = rng.choice(["up", "down", "updown"])
    has_load = rng.maybe(0.4)
    name = pick(
        ["counter", f"{direction}_counter", f"cnt{width}", "sync_counter"], style
    )
    reg = pick(["count", "cnt", "count_reg", "q_int"], style)

    extra_ports = ""
    extra_inputs = []
    if direction == "updown":
        extra_ports += "\n    input wire up,"
        extra_inputs.append(("up", 1))
    if has_load:
        extra_ports += f"\n    input wire load,\n    input wire [{width-1}:0] din,"
        extra_inputs.extend([("load", 1), ("din", width)])

    if direction == "up":
        update = f"{reg} <= {reg} + 1'b1;"
        behaviour = "increments by one"
    elif direction == "down":
        update = f"{reg} <= {reg} - 1'b1;"
        behaviour = "decrements by one"
    else:
        update = reindent(
            f"""if (up)
                {reg} <= {reg} + 1'b1;
            else
                {reg} <= {reg} - 1'b1;""",
            Style(indent="    "),
        )
        behaviour = "increments when up is high and decrements otherwise"

    load_clause = (
        f"""else if (load)
            {reg} <= din;
        """
        if has_load
        else ""
    )
    header = style.comment_block(f"{width_phrase(width)} {direction} counter")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,{extra_ports}
    output wire [{width-1}:0] count
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        {load_clause}else if (en) begin
            {update}
        end
    end
    assign count = {reg};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} synchronous counter with "
        f"active-high synchronous reset rst and enable en. "
        + (
            "When load is high the counter loads din on the next clock edge. "
            if has_load
            else ""
        )
        + f"When enabled, the count output {behaviour} each clock cycle, "
        f"wrapping modulo 2^{width}."
    )
    return GeneratedModule(
        family="counter",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1)] + extra_inputs,
            outputs=[("count", width)],
        ),
        description=description,
        params={"width": width, "direction": {"up": 0, "down": 1, "updown": 2}[direction],
                "has_load": int(has_load)},
    )


def gen_mod_counter(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Modulo-N counter with terminal-count output."""
    style = _style(rng, style)
    modulo = rng.choice([5, 10, 12, 60, 100])
    width = max(1, (modulo - 1).bit_length())
    name = pick(
        [f"mod{modulo}_counter", f"counter_mod{modulo}", "modn_counter", "divide_counter"],
        style,
    )
    reg = pick(["count", "cnt", "value", "tick_count"], style)
    header = style.comment_block(f"modulo-{modulo} counter with terminal count")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    output wire [{width-1}:0] count,
    output wire tc
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        else if (en) begin
            if ({reg} == {width}'d{modulo-1})
                {reg} <= {width}'d0;
            else
                {reg} <= {reg} + 1'b1;
        end
    end
    assign count = {reg};
    assign tc = ({reg} == {width}'d{modulo-1});
endmodule
""",
        style,
    )
    description = (
        f"Implement a modulo-{modulo} counter with synchronous active-high "
        f"reset rst and enable en. The count output counts 0 through "
        f"{modulo-1} and wraps to 0; the tc output is high during the final "
        f"count value {modulo-1}."
    )
    return GeneratedModule(
        family="mod_counter",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1)],
            outputs=[("count", width), ("tc", 1)],
        ),
        description=description,
        params={"modulo": modulo},
    )


def gen_shift_register(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Serial-in parallel-out shift register."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16])
    msb_first = rng.maybe(0.5)
    name = pick(
        ["shift_register", f"sipo{width}", "shift_reg", "serial_shift"], style
    )
    reg = pick(["shreg", "sr", "shift_data", "data_reg"], style)
    if msb_first:
        update = f"{reg} <= {{{reg}[{width-2}:0], sin}};"
        order = "towards the MSB (sin enters at bit 0)"
    else:
        update = f"{reg} <= {{sin, {reg}[{width-1}:1]}};"
        order = "towards the LSB (sin enters at the MSB)"
    header = style.comment_block(f"{width_phrase(width)} shift register")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    input wire sin,
    output wire [{width-1}:0] q
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        else if (en) begin
            {update}
        end
    end
    assign q = {reg};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} serial-in parallel-out shift "
        f"register with synchronous reset rst and enable en. On each "
        f"enabled clock edge the register shifts {order}, and the full "
        f"register value drives q."
    )
    return GeneratedModule(
        family="shift_register",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1), ("sin", 1)],
            outputs=[("q", width)],
        ),
        description=description,
        params={"width": width, "msb_first": int(msb_first)},
    )


def gen_edge_detector(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Rising/falling/any edge detector with a registered delay stage."""
    style = _style(rng, style)
    kind = rng.choice(["rising", "falling", "both"])
    name = pick(
        [f"{kind}_edge_detector", "edge_detect", f"{kind}_edge", "pulse_on_edge"],
        style,
    )
    prev = pick(["sig_d", "prev", "din_q", "last_sig"], style)
    expr = {
        "rising": f"sig & ~{prev}",
        "falling": f"~sig & {prev}",
        "both": f"sig ^ {prev}",
    }[kind]
    header = style.comment_block(f"{kind}-edge detector")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire sig,
    output wire pulse
);
    reg {prev};
    always @(posedge clk) begin
        if (rst)
            {prev} <= 1'b0;
        else
            {prev} <= sig;
    end
    assign pulse = {expr};
endmodule
""",
        style,
    )
    what = {
        "rising": "a 0-to-1 transition",
        "falling": "a 1-to-0 transition",
        "both": "any transition",
    }[kind]
    description = (
        f"Implement a {kind}-edge detector with synchronous reset rst. The "
        f"pulse output goes high for one cycle whenever the sig input makes "
        f"{what} relative to its value at the previous clock edge."
    )
    return GeneratedModule(
        family="edge_detector",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("sig", 1)],
            outputs=[("pulse", 1)],
        ),
        description=description,
        params={"kind": {"rising": 0, "falling": 1, "both": 2}[kind]},
    )


def gen_sequence_detector(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Mealy-style overlapping sequence detector via a shift register."""
    style = _style(rng, style)
    length = rng.choice([3, 4, 5])
    pattern = rng.randint(1, (1 << length) - 2)
    bits = format(pattern, f"0{length}b")
    name = pick(
        [f"seq_detect_{bits}", "sequence_detector", f"detect{bits}", "pattern_finder"],
        style,
    )
    reg = pick(["history", "shreg", "window", "bits_seen"], style)
    header = style.comment_block(f"detector for bit sequence {bits}")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire din,
    output wire found
);
    reg [{length-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {length}'d0;
        else
            {reg} <= {{{reg}[{length-2}:0], din}};
    end
    assign found = ({reg} == {length}'b{bits});
endmodule
""",
        style,
    )
    description = (
        f"Implement an overlapping sequence detector for the {length}-bit "
        f"pattern {bits} (oldest bit first) on the serial input din, with "
        f"synchronous reset rst. The found output is high whenever the last "
        f"{length} sampled bits equal the pattern."
    )
    return GeneratedModule(
        family="sequence_detector",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("din", 1)],
            outputs=[("found", 1)],
        ),
        description=description,
        params={"length": length, "pattern": pattern},
    )


def gen_accumulator(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Accumulator with enable and synchronous clear."""
    style = _style(rng, style)
    width = rng.choice([8, 16, 32])
    name = pick(["accumulator", f"acc{width}", "running_sum", "acc_unit"], style)
    reg = pick(["acc", "total", "sum_reg", "acc_value"], style)
    header = style.comment_block(f"{width_phrase(width)} accumulator")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    input wire [{width-1}:0] din,
    output wire [{width-1}:0] acc_out
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        else if (en)
            {reg} <= {reg} + din;
    end
    assign acc_out = {reg};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} accumulator with synchronous "
        f"reset rst and enable en. On each enabled clock edge the din input "
        f"is added to the running total, which drives acc_out (wrapping "
        f"modulo 2^{width})."
    )
    return GeneratedModule(
        family="accumulator",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1), ("din", width)],
            outputs=[("acc_out", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_pwm(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """PWM generator: output high while counter < duty."""
    style = _style(rng, style)
    width = rng.choice([4, 8])
    name = pick(["pwm", f"pwm_gen{width}", "pwm_generator", "duty_pwm"], style)
    reg = pick(["count", "phase", "pwm_cnt", "ramp"], style)
    header = style.comment_block(f"{width}-bit PWM generator")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire [{width-1}:0] duty,
    output wire pwm_out
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        else
            {reg} <= {reg} + 1'b1;
    end
    assign pwm_out = ({reg} < duty);
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width}-bit PWM generator with synchronous reset rst. "
        f"A free-running {width}-bit counter increments every clock cycle, "
        f"and pwm_out is high while the counter is less than the duty input."
    )
    return GeneratedModule(
        family="pwm",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("duty", width)],
            outputs=[("pwm_out", 1)],
        ),
        description=description,
        params={"width": width},
    )


def gen_clock_divider(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Divide-by-2N toggle divider built from a modulo counter."""
    style = _style(rng, style)
    divide = rng.choice([2, 4, 8, 16])
    width = max(1, (divide - 1).bit_length())
    name = pick(
        [f"clk_div{divide*2}", "clock_divider", f"divider_by{divide*2}", "clkgen"],
        style,
    )
    reg = pick(["div_cnt", "count", "prescaler", "cnt"], style)
    header = style.comment_block(f"divide-by-{divide*2} clock divider")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    output reg clk_out
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst) begin
            {reg} <= {width}'d0;
            clk_out <= 1'b0;
        end else if ({reg} == {width}'d{divide-1}) begin
            {reg} <= {width}'d0;
            clk_out <= ~clk_out;
        end else begin
            {reg} <= {reg} + 1'b1;
        end
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a clock divider with synchronous reset rst. The clk_out "
        f"output toggles once every {divide} input clock cycles, producing a "
        f"square wave at 1/{divide*2} of the input clock frequency."
    )
    return GeneratedModule(
        family="clock_divider",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[],
            outputs=[("clk_out", 1)],
        ),
        description=description,
        params={"divide": divide},
    )


def gen_lfsr(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Fibonacci LFSR with a maximal-length tap set."""
    style = _style(rng, style)
    # (width, taps) pairs giving maximal-length sequences.
    width, taps = rng.choice([(4, (3, 2)), (8, (7, 5, 4, 3)), (16, (15, 13, 12, 10))])
    name = pick([f"lfsr{width}", "lfsr", "prbs_gen", "random_gen"], style)
    reg = pick(["lfsr_reg", "state", "shift_reg", "rand_state"], style)
    feedback = " ^ ".join(f"{reg}[{t}]" for t in taps)
    header = style.comment_block(f"{width}-bit Fibonacci LFSR")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    output wire [{width-1}:0] value
);
    reg [{width-1}:0] {reg};
    wire feedback_bit;
    assign feedback_bit = {feedback};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d1;
        else if (en)
            {reg} <= {{{reg}[{width-2}:0], feedback_bit}};
    end
    assign value = {reg};
endmodule
""",
        style,
    )
    tap_list = ", ".join(str(t) for t in taps)
    description = (
        f"Implement a {width}-bit Fibonacci LFSR with synchronous reset rst "
        f"(reset value 1) and enable en. On each enabled clock edge the "
        f"register shifts left by one and the new bit 0 is the XOR of tap "
        f"bits {tap_list}. The register value drives the value output."
    )
    return GeneratedModule(
        family="lfsr",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1)],
            outputs=[("value", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_register(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """D register with enable and optional synchronous clear-to-value."""
    style = _style(rng, style)
    width = rng.choice([1, 4, 8, 16, 32])
    name = pick(["dff_en", f"reg{width}", "pipeline_reg", "data_register"], style)
    header = style.comment_block(f"{width_phrase(width)} register with enable")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    input wire [{width-1}:0] d,
    output reg [{width-1}:0] q
);
    always @(posedge clk) begin
        if (rst)
            q <= {width}'d0;
        else if (en)
            q <= d;
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} D register with synchronous "
        f"active-high reset rst and enable en: on each clock edge q is "
        f"cleared to 0 when rst is high, otherwise q captures d when en is "
        f"high and holds its value when en is low."
    )
    return GeneratedModule(
        family="register",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1), ("d", width)],
            outputs=[("q", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_saturating_counter(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Two-input saturating up/down counter (branch-predictor style)."""
    style = _style(rng, style)
    width = rng.choice([2, 3, 4])
    top = (1 << width) - 1
    name = pick(
        ["sat_counter", f"saturating_counter{width}", "bimodal_counter", "sat_updown"],
        style,
    )
    reg = pick(["state", "count", "level", "confidence"], style)
    header = style.comment_block(f"{width}-bit saturating up/down counter")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire inc,
    input wire dec,
    output wire [{width-1}:0] level
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d0;
        else if (inc && !dec) begin
            if ({reg} != {width}'d{top})
                {reg} <= {reg} + 1'b1;
        end else if (dec && !inc) begin
            if ({reg} != {width}'d0)
                {reg} <= {reg} - 1'b1;
        end
    end
    assign level = {reg};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width}-bit saturating counter with synchronous reset "
        f"rst. When inc is high (and dec low) the level increments but "
        f"saturates at {top}; when dec is high (and inc low) it decrements "
        f"but saturates at 0; otherwise it holds."
    )
    return GeneratedModule(
        family="saturating_counter",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("inc", 1), ("dec", 1)],
            outputs=[("level", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_toggle(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """T flip-flop with enable."""
    style = _style(rng, style)
    name = pick(["t_ff", "toggle_ff", "tff", "toggle_bit"], style)
    header = style.comment_block("toggle flip-flop")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire t,
    output reg q
);
    always @(posedge clk) begin
        if (rst)
            q <= 1'b0;
        else if (t)
            q <= ~q;
    end
endmodule
""",
        style,
    )
    description = (
        "Implement a T flip-flop with synchronous active-high reset rst: "
        "on each clock edge q toggles when the t input is high and holds "
        "otherwise."
    )
    return GeneratedModule(
        family="toggle",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("t", 1)],
            outputs=[("q", 1)],
        ),
        description=description,
        params={},
    )


def gen_traffic_fsm(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Three-state rotating FSM (traffic-light pattern) with timers."""
    style = _style(rng, style)
    green = rng.choice([3, 4, 5])
    yellow = rng.choice([1, 2])
    red = rng.choice([2, 3, 4])
    durations = [green, yellow, red]
    width = max(d for d in durations).bit_length()
    name = pick(
        ["traffic_light", "traffic_fsm", "light_controller", "tl_ctrl"], style
    )
    state = pick(["state", "fsm_state", "cur_state", "phase"], style)
    timer = pick(["timer", "ticks", "hold", "dwell"], style)
    header = style.comment_block("traffic light controller FSM")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    output wire [2:0] lights
);
    localparam S_GREEN = 2'd0;
    localparam S_YELLOW = 2'd1;
    localparam S_RED = 2'd2;
    reg [1:0] {state};
    reg [{width-1}:0] {timer};
    always @(posedge clk) begin
        if (rst) begin
            {state} <= S_GREEN;
            {timer} <= {width}'d0;
        end else begin
            case ({state})
                S_GREEN: begin
                    if ({timer} == {width}'d{green-1}) begin
                        {state} <= S_YELLOW;
                        {timer} <= {width}'d0;
                    end else begin
                        {timer} <= {timer} + 1'b1;
                    end
                end
                S_YELLOW: begin
                    if ({timer} == {width}'d{yellow-1}) begin
                        {state} <= S_RED;
                        {timer} <= {width}'d0;
                    end else begin
                        {timer} <= {timer} + 1'b1;
                    end
                end
                default: begin
                    if ({timer} == {width}'d{red-1}) begin
                        {state} <= S_GREEN;
                        {timer} <= {width}'d0;
                    end else begin
                        {timer} <= {timer} + 1'b1;
                    end
                end
            endcase
        end
    end
    assign lights = ({state} == S_GREEN) ? 3'b001 :
                    ({state} == S_YELLOW) ? 3'b010 : 3'b100;
endmodule
""",
        style,
    )
    description = (
        f"Implement a traffic-light controller FSM with synchronous reset "
        f"rst. The controller cycles green for {green} cycles, yellow for "
        f"{yellow} cycles, then red for {red} cycles, repeating. The "
        f"3-bit lights output is one-hot: bit 0 green, bit 1 yellow, bit 2 "
        f"red. Reset enters the green state with its timer cleared."
    )
    return GeneratedModule(
        family="traffic_fsm",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[],
            outputs=[("lights", 3)],
        ),
        description=description,
        params={"green": green, "yellow": yellow, "red": red},
    )


def gen_onehot_rotator(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Rotating one-hot ring counter."""
    style = _style(rng, style)
    width = rng.choice([4, 8])
    name = pick(["ring_counter", f"ring{width}", "onehot_rotator", "walking_one"], style)
    reg = pick(["ring", "hot", "state", "token"], style)
    header = style.comment_block(f"{width}-bit ring counter")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire en,
    output wire [{width-1}:0] q
);
    reg [{width-1}:0] {reg};
    always @(posedge clk) begin
        if (rst)
            {reg} <= {width}'d1;
        else if (en)
            {reg} <= {{{reg}[{width-2}:0], {reg}[{width-1}]}};
    end
    assign q = {reg};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width}-bit one-hot ring counter with synchronous "
        f"reset rst (reset value has only bit 0 set) and enable en. On each "
        f"enabled clock edge the single hot bit rotates one position toward "
        f"the MSB, wrapping from bit {width-1} back to bit 0. The register "
        f"drives q."
    )
    return GeneratedModule(
        family="onehot_rotator",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("en", 1)],
            outputs=[("q", width)],
        ),
        description=description,
        params={"width": width},
    )
