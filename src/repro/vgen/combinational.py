"""Combinational RTL generator families."""

from __future__ import annotations

from typing import Optional

from repro.utils.rng import DeterministicRNG
from repro.vgen.base import (
    GeneratedModule,
    ModuleInterface,
    Style,
    pick,
    random_style,
    reindent,
    width_phrase,
)


def _style(rng: DeterministicRNG, style: Optional[Style]) -> Style:
    return style if style is not None else random_style(rng)


def gen_adder(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """N-bit adder with optional carry-in/carry-out."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 12, 16, 24, 32])
    has_cin = rng.maybe(0.5)
    has_cout = rng.maybe(0.7)
    name = pick(["adder", "add_unit", "full_adder_n", "rtl_adder"], style)
    cin_port = ", input wire cin" if has_cin else ""
    cin_term = " + cin" if has_cin else ""
    if has_cout:
        ports = f"output wire [{width-1}:0] sum, output wire cout"
        body = f"assign {{cout, sum}} = a + b{cin_term};"
        outputs = [("sum", width), ("cout", 1)]
    else:
        ports = f"output wire [{width-1}:0] sum"
        body = f"assign sum = a + b{cin_term};"
        outputs = [("sum", width)]
    header = style.comment_block(
        f"{width_phrase(width)} adder",
        [f"{width_phrase(width)} combinational adder",
         "sum = a + b" + (" + cin" if has_cin else "")],
    )
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b{cin_port},
    {ports}
);
    {body}
endmodule
""",
        style,
    )
    inputs = [("a", width), ("b", width)] + ([("cin", 1)] if has_cin else [])
    description = (
        f"Implement a {width_phrase(width)} combinational adder that adds "
        f"inputs a and b{' and a carry-in bit cin' if has_cin else ''}"
        + (
            " and produces the sum along with a carry-out bit cout."
            if has_cout
            else " and produces the sum."
        )
    )
    return GeneratedModule(
        family="adder",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=inputs, outputs=outputs
        ),
        description=description,
        params={"width": width, "has_cin": int(has_cin), "has_cout": int(has_cout)},
    )


def gen_alu(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Small behavioural ALU selected by an opcode."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    ops = [
        ("a + b", "addition"),
        ("a - b", "subtraction"),
        ("a & b", "bitwise AND"),
        ("a | b", "bitwise OR"),
        ("a ^ b", "bitwise XOR"),
        ("~a", "bitwise NOT of a"),
        ("a << 1", "left shift of a by one"),
        ("a >> 1", "right shift of a by one"),
    ]
    n_ops = rng.choice([4, 8])
    chosen = ops[:n_ops]
    sel_width = 2 if n_ops == 4 else 3
    name = pick(["alu", "alu_core", "simple_alu", "arith_unit"], style)
    arms = "\n".join(
        f"            {sel_width}'d{i}: y = {expr};"
        for i, (expr, _) in enumerate(chosen[:-1])
    )
    op_list = "; ".join(
        f"op={i}: {desc}" for i, (_, desc) in enumerate(chosen)
    )
    header = style.comment_block(f"{width_phrase(width)} ALU with {n_ops} operations")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b,
    input wire [{sel_width-1}:0] op,
    output reg [{width-1}:0] y
);
    always @(*) begin
        case (op)
{arms}
            default: y = {chosen[-1][0]};
        endcase
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} ALU with a {sel_width}-bit opcode "
        f"input op selecting the result y as follows: {op_list}."
    )
    return GeneratedModule(
        family="alu",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("a", width), ("b", width), ("op", sel_width)],
            outputs=[("y", width)],
        ),
        description=description,
        params={"width": width, "n_ops": n_ops},
    )


def gen_mux(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """2:1 / 4:1 / 8:1 multiplexer (ternary or case style)."""
    style = _style(rng, style)
    width = rng.choice([1, 4, 8, 16, 32])
    ways = rng.choice([2, 4, 8])
    sel_width = {2: 1, 4: 2, 8: 3}[ways]
    name = pick(
        [f"mux{ways}", f"mux{ways}to1", f"mux_{ways}way", f"data_mux{ways}"], style
    )
    in_ports = ",\n".join(
        f"    input wire [{width-1}:0] d{i}" for i in range(ways)
    )
    if ways == 2 and rng.maybe(0.5):
        body = "    assign y = sel ? d1 : d0;"
        out_decl = f"output wire [{width-1}:0] y"
    else:
        arms = "\n".join(
            f"            {sel_width}'d{i}: y = d{i};" for i in range(ways - 1)
        )
        body = reindent(
            f"""    always @(*) begin
        case (sel)
{arms}
            default: y = d{ways-1};
        endcase
    end""",
            style,
        )
        out_decl = f"output reg [{width-1}:0] y"
    header = style.comment_block(f"{ways}:1 multiplexer, {width_phrase(width)} data")
    source = header + reindent(
        f"""module {name}(
{in_ports},
    input wire [{sel_width-1}:0] sel,
    {out_decl}
);
{body}
endmodule
""",
        style,
    )
    description = (
        f"Implement a {ways}-to-1 multiplexer for {width_phrase(width)} data. "
        f"Inputs d0 through d{ways-1} are selected by the {sel_width}-bit "
        f"select input sel, and the chosen input drives output y."
    )
    return GeneratedModule(
        family="mux",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[(f"d{i}", width) for i in range(ways)] + [("sel", sel_width)],
            outputs=[("y", width)],
        ),
        description=description,
        params={"width": width, "ways": ways},
    )


def gen_decoder(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Binary to one-hot decoder with optional enable."""
    style = _style(rng, style)
    sel_width = rng.choice([2, 3, 4])
    ways = 1 << sel_width
    has_en = rng.maybe(0.5)
    name = pick(
        [f"decoder{sel_width}to{ways}", f"dec_{ways}", "onehot_decoder", "bin2onehot"],
        style,
    )
    en_port = "\n    input wire en," if has_en else ""
    value = f"en ? ({ways}'d1 << sel) : {ways}'d0" if has_en else f"{ways}'d1 << sel"
    header = style.comment_block(f"{sel_width}-to-{ways} one-hot decoder")
    source = header + reindent(
        f"""module {name}(
    input wire [{sel_width-1}:0] sel,{en_port}
    output wire [{ways-1}:0] y
);
    assign y = {value};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {sel_width}-to-{ways} binary decoder. Output y is the "
        f"one-hot encoding of the select input sel"
        + (
            ", gated by an active-high enable input en (all zeros when en is low)."
            if has_en
            else "."
        )
    )
    inputs = [("sel", sel_width)] + ([("en", 1)] if has_en else [])
    return GeneratedModule(
        family="decoder",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=inputs, outputs=[("y", ways)]
        ),
        description=description,
        params={"sel_width": sel_width, "has_en": int(has_en)},
    )


def gen_priority_encoder(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Priority encoder with a valid flag (highest bit wins)."""
    style = _style(rng, style)
    in_width = rng.choice([4, 8, 16])
    out_width = {4: 2, 8: 3, 16: 4}[in_width]
    name = pick(
        ["priority_encoder", f"penc{in_width}", "prio_enc", "first_one_finder"],
        style,
    )
    arms = "\n".join(
        f"            if (in[{i}]) begin y = {out_width}'d{i}; valid = 1'b1; end"
        for i in range(in_width)
    )
    header = style.comment_block(f"{in_width}-bit priority encoder (MSB priority)")
    source = header + reindent(
        f"""module {name}(
    input wire [{in_width-1}:0] in,
    output reg [{out_width-1}:0] y,
    output reg valid
);
    integer i;
    always @(*) begin
        y = {out_width}'d0;
        valid = 1'b0;
        begin
{arms}
        end
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a {in_width}-bit priority encoder. Output y is the index "
        f"of the highest-priority set bit of input in, where bit "
        f"{in_width-1} has the highest priority; output valid is high when "
        f"any input bit is set, and y is 0 when no bit is set."
    )
    return GeneratedModule(
        family="priority_encoder",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("in", in_width)],
            outputs=[("y", out_width), ("valid", 1)],
        ),
        description=description,
        params={"in_width": in_width},
    )


def gen_comparator(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Magnitude comparator producing lt/eq/gt."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    name = pick(["comparator", f"cmp{width}", "mag_cmp", "compare_unit"], style)
    header = style.comment_block(f"{width_phrase(width)} unsigned comparator")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b,
    output wire lt,
    output wire eq,
    output wire gt
);
    assign lt = a < b;
    assign eq = a == b;
    assign gt = a > b;
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} unsigned magnitude comparator "
        f"with outputs lt (a < b), eq (a == b), and gt (a > b)."
    )
    return GeneratedModule(
        family="comparator",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("a", width), ("b", width)],
            outputs=[("lt", 1), ("eq", 1), ("gt", 1)],
        ),
        description=description,
        params={"width": width},
    )


def gen_parity(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Even/odd parity generator."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    even = rng.maybe(0.5)
    name = pick(["parity_gen", f"parity{width}", "par_unit", "parity_checker"], style)
    expr = "~^data" if even else "^data"
    kind = "even" if even else "odd"
    header = style.comment_block(f"{kind} parity over {width} bits")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] data,
    output wire parity
);
    assign parity = {expr};
endmodule
""",
        style,
    )
    description = (
        f"Implement a {kind} parity generator over a {width_phrase(width)} "
        f"input data. Output parity is "
        + (
            "1 when the number of set bits in data is even."
            if even
            else "the XOR of all bits of data (1 for an odd number of ones)."
        )
    )
    return GeneratedModule(
        family="parity",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=[("data", width)], outputs=[("parity", 1)]
        ),
        description=description,
        params={"width": width, "even": int(even)},
    )


def gen_gray(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Binary-to-Gray converter."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16])
    name = pick(["bin2gray", f"gray_enc{width}", "gray_encoder", "b2g"], style)
    header = style.comment_block(f"{width_phrase(width)} binary-to-Gray encoder")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] bin,
    output wire [{width-1}:0] gray
);
    assign gray = bin ^ (bin >> 1);
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} binary-to-Gray-code converter: "
        f"output gray equals bin XOR (bin shifted right by one)."
    )
    return GeneratedModule(
        family="gray",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=[("bin", width)], outputs=[("gray", width)]
        ),
        description=description,
        params={"width": width},
    )


def gen_shifter(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Barrel shifter (logical left/right by variable amount)."""
    style = _style(rng, style)
    width = rng.choice([8, 16, 32])
    sh_width = {8: 3, 16: 4, 32: 5}[width]
    name = pick(["barrel_shifter", f"shifter{width}", "shift_unit", "bshift"], style)
    header = style.comment_block(f"{width_phrase(width)} barrel shifter")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] data,
    input wire [{sh_width-1}:0] amount,
    input wire dir,
    output wire [{width-1}:0] result
);
    assign result = dir ? (data >> amount) : (data << amount);
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} barrel shifter. When dir is 0 "
        f"the data input is shifted left by amount; when dir is 1 it is "
        f"shifted logically right by amount. The shifted value drives result."
    )
    return GeneratedModule(
        family="shifter",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("data", width), ("amount", sh_width), ("dir", 1)],
            outputs=[("result", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_min_max(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Min/max selector between two operands."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    want_max = rng.maybe(0.5)
    kind = "max" if want_max else "min"
    name = pick([f"{kind}_unit", f"{kind}{width}", f"{kind}_select", f"u{kind}"], style)
    cmp_op = ">" if want_max else "<"
    header = style.comment_block(f"{width_phrase(width)} unsigned {kind}")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b,
    output wire [{width-1}:0] y
);
    assign y = (a {cmp_op} b) ? a : b;
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} unsigned {kind} unit: output y "
        f"is the {'larger' if want_max else 'smaller'} of inputs a and b."
    )
    return GeneratedModule(
        family="min_max",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("a", width), ("b", width)],
            outputs=[("y", width)],
        ),
        description=description,
        params={"width": width, "max": int(want_max)},
    )


def gen_abs_diff(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Absolute difference |a - b|."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16])
    name = pick(["abs_diff", f"absdiff{width}", "sad_unit", "delta_abs"], style)
    header = style.comment_block(f"{width_phrase(width)} absolute difference")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b,
    output wire [{width-1}:0] diff
);
    assign diff = (a > b) ? (a - b) : (b - a);
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} absolute-difference unit: "
        f"output diff equals |a - b| for unsigned inputs a and b."
    )
    return GeneratedModule(
        family="abs_diff",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("a", width), ("b", width)],
            outputs=[("diff", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_popcount(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Population count via a combinational for loop."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16])
    out_width = {4: 3, 8: 4, 16: 5}[width]
    name = pick(["popcount", f"ones_count{width}", "bit_counter", "hamming_weight"], style)
    header = style.comment_block(f"{width}-bit population count")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] data,
    output reg [{out_width-1}:0] count
);
    integer i;
    always @(*) begin
        count = {out_width}'d0;
        for (i = 0; i < {width}; i = i + 1) begin
            count = count + {{{out_width-1}'d0, data[i]}};
        end
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a population-count circuit for a {width_phrase(width)} "
        f"input data: output count is the number of bits of data that are 1."
    )
    return GeneratedModule(
        family="popcount",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=[("data", width)], outputs=[("count", out_width)]
        ),
        description=description,
        params={"width": width},
    )


def gen_seven_seg(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Hex digit to 7-segment decoder (active-high segments)."""
    style = _style(rng, style)
    name = pick(["seven_seg", "hex7seg", "sseg_decoder", "seg7"], style)
    table = [
        0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07,
        0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71,
    ]
    arms = "\n".join(
        f"            4'h{i:X}: seg = 7'h{table[i]:02X};" for i in range(15)
    )
    header = style.comment_block("hex to 7-segment decoder (active high)")
    source = header + reindent(
        f"""module {name}(
    input wire [3:0] digit,
    output reg [6:0] seg
);
    always @(*) begin
        case (digit)
{arms}
            default: seg = 7'h{table[15]:02X};
        endcase
    end
endmodule
""",
        style,
    )
    description = (
        "Implement a hexadecimal to seven-segment decoder with active-high "
        "segment outputs seg[6:0] (seg[0]=a ... seg[6]=g) for the 4-bit "
        "input digit, using the standard 0-F segment patterns."
    )
    return GeneratedModule(
        family="seven_seg",
        source=source,
        interface=ModuleInterface(
            module_name=name, inputs=[("digit", 4)], outputs=[("seg", 7)]
        ),
        description=description,
        params={},
    )


def gen_addsub(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Combined adder/subtractor selected by a mode bit."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    name = pick(["addsub", f"addsub{width}", "add_sub_unit", "arith_addsub"], style)
    header = style.comment_block(f"{width_phrase(width)} adder/subtractor")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] a,
    input wire [{width-1}:0] b,
    input wire sub,
    output wire [{width-1}:0] result
);
    assign result = sub ? (a - b) : (a + b);
endmodule
""",
        style,
    )
    description = (
        f"Implement a {width_phrase(width)} adder/subtractor: when the sub "
        f"input is 0 the result output is a + b, and when sub is 1 it is "
        f"a - b (modulo 2^{width})."
    )
    return GeneratedModule(
        family="addsub",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("a", width), ("b", width), ("sub", 1)],
            outputs=[("result", width)],
        ),
        description=description,
        params={"width": width},
    )


def gen_zero_detect(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Zero/all-ones detector flags."""
    style = _style(rng, style)
    width = rng.choice([4, 8, 16, 32])
    name = pick(["zero_detect", f"zdet{width}", "allzero_allones", "vec_flags"], style)
    header = style.comment_block(f"{width_phrase(width)} zero / all-ones detect")
    source = header + reindent(
        f"""module {name}(
    input wire [{width-1}:0] data,
    output wire all_zero,
    output wire all_one
);
    assign all_zero = ~|data;
    assign all_one = &data;
endmodule
""",
        style,
    )
    description = (
        f"Implement flag logic for a {width_phrase(width)} input data: "
        f"output all_zero is high when every bit of data is 0, and output "
        f"all_one is high when every bit of data is 1."
    )
    return GeneratedModule(
        family="zero_detect",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            inputs=[("data", width)],
            outputs=[("all_zero", 1), ("all_one", 1)],
        ),
        description=description,
        params={"width": width},
    )
