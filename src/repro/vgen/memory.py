"""Memory-structured RTL generator families: register files, RAMs, FIFOs."""

from __future__ import annotations

from typing import Optional

from repro.utils.rng import DeterministicRNG
from repro.vgen.base import (
    GeneratedModule,
    ModuleInterface,
    Style,
    pick,
    random_style,
    reindent,
    width_phrase,
)


def _style(rng: DeterministicRNG, style: Optional[Style]) -> Style:
    return style if style is not None else random_style(rng)


def gen_register_file(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Single-write single-read register file with async read."""
    style = _style(rng, style)
    width = rng.choice([8, 16, 32])
    depth_bits = rng.choice([2, 3, 4])
    depth = 1 << depth_bits
    name = pick(
        ["regfile", f"register_file_{depth}x{width}", "rf_unit", "reg_bank"], style
    )
    mem = pick(["mem", "regs", "storage", "bank"], style)
    header = style.comment_block(f"{depth}x{width} register file")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire we,
    input wire [{depth_bits-1}:0] waddr,
    input wire [{width-1}:0] wdata,
    input wire [{depth_bits-1}:0] raddr,
    output wire [{width-1}:0] rdata
);
    reg [{width-1}:0] {mem} [0:{depth-1}];
    always @(posedge clk) begin
        if (we)
            {mem}[waddr] <= wdata;
    end
    assign rdata = {mem}[raddr];
endmodule
""",
        style,
    )
    description = (
        f"Implement a register file with {depth} entries of "
        f"{width_phrase(width)} data. Writes are synchronous: when we is "
        f"high, wdata is stored at waddr on the clock edge. Reads are "
        f"combinational: rdata continuously reflects the entry at raddr."
    )
    return GeneratedModule(
        family="register_file",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset=None,
            inputs=[
                ("we", 1),
                ("waddr", depth_bits),
                ("wdata", width),
                ("raddr", depth_bits),
            ],
            outputs=[("rdata", width)],
        ),
        description=description,
        params={"width": width, "depth": depth},
    )


def gen_sync_ram(
    rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Synchronous-read single-port RAM."""
    style = _style(rng, style)
    width = rng.choice([8, 16, 32])
    depth_bits = rng.choice([3, 4, 5])
    depth = 1 << depth_bits
    name = pick(
        [f"spram_{depth}x{width}", "sync_ram", "single_port_ram", "ram_block"], style
    )
    mem = pick(["mem", "ram", "array", "cells"], style)
    header = style.comment_block(f"{depth}x{width} single-port synchronous RAM")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire we,
    input wire [{depth_bits-1}:0] addr,
    input wire [{width-1}:0] din,
    output reg [{width-1}:0] dout
);
    reg [{width-1}:0] {mem} [0:{depth-1}];
    always @(posedge clk) begin
        if (we)
            {mem}[addr] <= din;
        dout <= {mem}[addr];
    end
endmodule
""",
        style,
    )
    description = (
        f"Implement a single-port synchronous RAM with {depth} words of "
        f"{width_phrase(width)} data. On each clock edge, din is written to "
        f"addr when we is high, and dout registers the (pre-write) value at "
        f"addr (read-before-write behaviour)."
    )
    return GeneratedModule(
        family="sync_ram",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset=None,
            inputs=[("we", 1), ("addr", depth_bits), ("din", width)],
            outputs=[("dout", width)],
        ),
        description=description,
        params={"width": width, "depth": depth},
    )


def gen_fifo(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Synchronous FIFO with full/empty flags and count."""
    style = _style(rng, style)
    width = rng.choice([8, 16])
    depth_bits = rng.choice([2, 3, 4])
    depth = 1 << depth_bits
    name = pick(
        [f"sync_fifo_{depth}x{width}", "fifo", "sync_fifo", "queue_fifo"], style
    )
    mem = pick(["mem", "buffer", "storage", "entries"], style)
    header = style.comment_block(f"{depth}-deep synchronous FIFO")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire push,
    input wire pop,
    input wire [{width-1}:0] din,
    output wire [{width-1}:0] dout,
    output wire full,
    output wire empty,
    output wire [{depth_bits}:0] count
);
    reg [{width-1}:0] {mem} [0:{depth-1}];
    reg [{depth_bits-1}:0] wptr;
    reg [{depth_bits-1}:0] rptr;
    reg [{depth_bits}:0] fill;
    wire do_push;
    wire do_pop;
    assign do_push = push && !full;
    assign do_pop = pop && !empty;
    always @(posedge clk) begin
        if (rst) begin
            wptr <= {depth_bits}'d0;
            rptr <= {depth_bits}'d0;
            fill <= {depth_bits+1}'d0;
        end else begin
            if (do_push) begin
                {mem}[wptr] <= din;
                wptr <= wptr + 1'b1;
            end
            if (do_pop) begin
                rptr <= rptr + 1'b1;
            end
            fill <= fill + {{{depth_bits}'d0, do_push}} - {{{depth_bits}'d0, do_pop}};
        end
    end
    assign dout = {mem}[rptr];
    assign full = (fill == {depth_bits+1}'d{depth});
    assign empty = (fill == {depth_bits+1}'d0);
    assign count = fill;
endmodule
""",
        style,
    )
    description = (
        f"Implement a synchronous FIFO with {depth} entries of "
        f"{width_phrase(width)} data and synchronous reset rst. push writes "
        f"din when not full; pop advances the read pointer when not empty; "
        f"dout shows the oldest entry combinationally; full, empty, and the "
        f"{depth_bits+1}-bit count output reflect the current occupancy. "
        f"Pushes when full and pops when empty are ignored."
    )
    return GeneratedModule(
        family="fifo",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("push", 1), ("pop", 1), ("din", width)],
            outputs=[
                ("dout", width),
                ("full", 1),
                ("empty", 1),
                ("count", depth_bits + 1),
            ],
        ),
        description=description,
        params={"width": width, "depth": depth},
    )


def gen_stack(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """LIFO stack with push/pop and top-of-stack output."""
    style = _style(rng, style)
    width = rng.choice([8, 16])
    depth_bits = rng.choice([2, 3])
    depth = 1 << depth_bits
    name = pick([f"stack_{depth}x{width}", "lifo_stack", "hw_stack", "stack"], style)
    mem = pick(["mem", "slots", "storage", "cells"], style)
    header = style.comment_block(f"{depth}-deep hardware stack")
    source = header + reindent(
        f"""module {name}(
    input wire clk,
    input wire rst,
    input wire push,
    input wire pop,
    input wire [{width-1}:0] din,
    output wire [{width-1}:0] tos,
    output wire full,
    output wire empty
);
    reg [{width-1}:0] {mem} [0:{depth-1}];
    reg [{depth_bits}:0] sp;
    wire do_push;
    wire do_pop;
    assign do_push = push && !full;
    assign do_pop = pop && !empty && !push;
    always @(posedge clk) begin
        if (rst) begin
            sp <= {depth_bits+1}'d0;
        end else begin
            if (do_push) begin
                {mem}[sp[{depth_bits-1}:0]] <= din;
                sp <= sp + 1'b1;
            end else if (do_pop) begin
                sp <= sp - 1'b1;
            end
        end
    end
    assign tos = {mem}[sp[{depth_bits-1}:0] - {depth_bits}'d1];
    assign full = (sp == {depth_bits+1}'d{depth});
    assign empty = (sp == {depth_bits+1}'d0);
endmodule
""",
        style,
    )
    description = (
        f"Implement a hardware LIFO stack with {depth} entries of "
        f"{width_phrase(width)} data and synchronous reset rst. push stores "
        f"din at the stack pointer and increments it (when not full); pop "
        f"decrements the pointer (when not empty and push is low); tos "
        f"shows the top-of-stack value; full and empty reflect the pointer."
    )
    return GeneratedModule(
        family="stack",
        source=source,
        interface=ModuleInterface(
            module_name=name,
            clock="clk",
            reset="rst",
            inputs=[("push", 1), ("pop", 1), ("din", width)],
            outputs=[("tos", width), ("full", 1), ("empty", 1)],
        ),
        description=description,
        params={"width": width, "depth": depth},
    )
