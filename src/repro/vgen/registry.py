"""Registry of all generator families with uniform entry points."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.utils.rng import DeterministicRNG
from repro.vgen import combinational as comb
from repro.vgen import memory as mem
from repro.vgen import sequential as seq
from repro.vgen.base import GeneratedModule, Style

GeneratorFn = Callable[[DeterministicRNG, Optional[Style]], GeneratedModule]

#: family name -> generator.  Order is stable (affects seeded sampling).
FAMILIES: Dict[str, GeneratorFn] = {
    # combinational
    "adder": comb.gen_adder,
    "addsub": comb.gen_addsub,
    "alu": comb.gen_alu,
    "mux": comb.gen_mux,
    "decoder": comb.gen_decoder,
    "priority_encoder": comb.gen_priority_encoder,
    "comparator": comb.gen_comparator,
    "parity": comb.gen_parity,
    "gray": comb.gen_gray,
    "shifter": comb.gen_shifter,
    "min_max": comb.gen_min_max,
    "abs_diff": comb.gen_abs_diff,
    "popcount": comb.gen_popcount,
    "seven_seg": comb.gen_seven_seg,
    "zero_detect": comb.gen_zero_detect,
    # sequential
    "counter": seq.gen_counter,
    "mod_counter": seq.gen_mod_counter,
    "shift_register": seq.gen_shift_register,
    "edge_detector": seq.gen_edge_detector,
    "sequence_detector": seq.gen_sequence_detector,
    "accumulator": seq.gen_accumulator,
    "pwm": seq.gen_pwm,
    "clock_divider": seq.gen_clock_divider,
    "lfsr": seq.gen_lfsr,
    "register": seq.gen_register,
    "saturating_counter": seq.gen_saturating_counter,
    "toggle": seq.gen_toggle,
    "traffic_fsm": seq.gen_traffic_fsm,
    "onehot_rotator": seq.gen_onehot_rotator,
    # memory
    "register_file": mem.gen_register_file,
    "sync_ram": mem.gen_sync_ram,
    "fifo": mem.gen_fifo,
    "stack": mem.gen_stack,
}


def family_names() -> List[str]:
    return list(FAMILIES.keys())


def generate_family(
    family: str, rng: DeterministicRNG, style: Optional[Style] = None
) -> GeneratedModule:
    """Generate one module from the named family."""
    try:
        generator = FAMILIES[family]
    except KeyError:
        raise ReproError(f"unknown generator family {family!r}") from None
    return generator(rng, style)


def generate(rng: DeterministicRNG, style: Optional[Style] = None) -> GeneratedModule:
    """Generate one module from a uniformly random family."""
    family = rng.choice(family_names())
    return generate_family(family, rng, style)
