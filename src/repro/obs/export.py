"""Exporters for :mod:`repro.obs`: JSONL, Chrome trace_event, telemetry.

Three artifacts per traced run, written into one run subdirectory:

* ``events.jsonl`` — one JSON object per line: a ``meta`` header, every
  span (``type: "span"``), then the final metric values (``counter`` /
  ``gauge`` / ``histogram``).  This is the machine-readable log
  ``tools/trace_report.py`` consumes and the stream a future cluster
  coordinator would ship over the wire.
* ``trace.json`` — Chrome/Perfetto ``trace_event`` JSON (``ph: "X"``
  complete events, microsecond timestamps relative to the run start,
  one track per process), loadable in ``ui.perfetto.dev`` or
  ``chrome://tracing``.
* ``telemetry.json`` — the :class:`RunTelemetry` summary.

Everything here takes plain :class:`~repro.obs.ObsBuffer` data; nothing
imports the collector state, so the module is also usable to re-render
buffers captured elsewhere.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import ObsBuffer, SpanEvent

__all__ = [
    "RunTelemetry",
    "telemetry_from_buffer",
    "export_run",
    "write_events_jsonl",
    "write_trace_event",
    "read_events_jsonl",
]

_NS_PER_S = 1_000_000_000.0


@dataclass
class RunTelemetry:
    """Human/JSON summary of one run's spans and metrics."""

    run: str
    mode: str
    #: span name -> {count, wall_s, cpu_s}
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: histogram name -> {count, sum, mean, min, max}
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        root = self.spans.get(f"run.{self.run}")
        return root["wall_s"] if root else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "mode": self.mode,
            "spans": self.spans,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    def to_text(self) -> str:
        """Aligned per-span/per-metric breakdown (the engine-report style)."""
        lines = [f"run={self.run} mode={self.mode} "
                 f"wall={self.wall_seconds:.3f}s"]
        if self.spans:
            lines.append("spans:")
            width = max(len(name) for name in self.spans)
            for name in sorted(self.spans):
                entry = self.spans[name]
                lines.append(
                    f"  {name:<{width}}  n={int(entry['count']):<7} "
                    f"wall={entry['wall_s']:9.3f}s cpu={entry['cpu_s']:9.3f}s"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]:g}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"  {name:<{width}}  {self.gauges[name]:g}")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(name) for name in self.histograms)
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name:<{width}}  n={int(h['count']):<7} "
                    f"mean={h['mean']:g} min={h['min']:g} max={h['max']:g}"
                )
        return "\n".join(lines)


def telemetry_from_buffer(
    run: str, mode: str, buffer: ObsBuffer
) -> RunTelemetry:
    """Fold a drained run buffer into its :class:`RunTelemetry` summary."""
    spans = {
        name: {
            "count": n,
            "wall_s": wall / _NS_PER_S,
            "cpu_s": cpu / _NS_PER_S,
        }
        for name, (n, wall, cpu) in buffer.agg.items()
    }
    histograms = {}
    for name, (n, total, vmin, vmax) in buffer.hists.items():
        histograms[name] = {
            "count": n,
            "sum": total,
            "mean": total / n if n else 0.0,
            "min": vmin if n else 0.0,
            "max": vmax if n else 0.0,
        }
    return RunTelemetry(
        run=run,
        mode=mode,
        spans=spans,
        counters=dict(buffer.counters),
        gauges=dict(buffer.gauges),
        histograms=histograms,
    )


def _span_line(ev: SpanEvent) -> Dict[str, Any]:
    return {
        "type": "span",
        "name": ev.name,
        "ts": ev.ts,
        "dur": ev.dur,
        "cpu": ev.cpu,
        "pid": ev.pid,
        "id": ev.id,
        "parent": ev.parent,
        "attrs": ev.attrs,
    }


def write_events_jsonl(
    path: str, buffer: ObsBuffer, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Write the run's event log: meta header, spans, final metrics."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {"type": "meta"}
        header.update(meta or {})
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for ev in buffer.events:
            handle.write(json.dumps(_span_line(ev), sort_keys=True, default=str))
            handle.write("\n")
        for name in sorted(buffer.counters):
            handle.write(json.dumps(
                {"type": "counter", "name": name,
                 "value": buffer.counters[name]}, sort_keys=True))
            handle.write("\n")
        for name in sorted(buffer.gauges):
            handle.write(json.dumps(
                {"type": "gauge", "name": name,
                 "value": buffer.gauges[name]}, sort_keys=True))
            handle.write("\n")
        for name in sorted(buffer.hists):
            n, total, vmin, vmax = buffer.hists[name]
            handle.write(json.dumps(
                {"type": "histogram", "name": name, "count": n,
                 "sum": total, "min": vmin, "max": vmax}, sort_keys=True))
            handle.write("\n")


def read_events_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse an ``events.jsonl`` file back into its line dicts."""
    lines: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


def write_trace_event(path: str, buffer: ObsBuffer) -> None:
    """Write a Chrome/Perfetto ``trace_event`` JSON file.

    Spans become ``ph: "X"`` complete events with microsecond timestamps
    relative to the earliest span; each recording process keeps its own
    ``pid`` so worker activity renders as parallel tracks.
    """
    events = buffer.events
    t0 = min((ev.ts for ev in events), default=0)
    trace: List[Dict[str, Any]] = []
    own_pid = os.getpid()
    for pid in sorted({ev.pid for ev in events}):
        label = "coordinator" if pid == own_pid else f"worker-{pid}"
        trace.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for ev in events:
        args = {k: (v if isinstance(v, (int, float, bool, str)) else str(v))
                for k, v in ev.attrs.items()}
        args["span_id"] = ev.id
        if ev.parent is not None:
            args["parent_id"] = ev.parent
        trace.append({
            "ph": "X",
            "name": ev.name,
            "cat": ev.name.split(".", 1)[0],
            "ts": (ev.ts - t0) / 1000.0,
            "dur": ev.dur / 1000.0,
            "pid": ev.pid,
            "tid": 0,
            "args": args,
        })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": trace, "displayTimeUnit": "ms"}, handle)


def export_run(
    run_dir: str, buffer: ObsBuffer, telemetry: RunTelemetry
) -> None:
    """Write the run's three artifacts into ``run_dir`` (created)."""
    os.makedirs(run_dir, exist_ok=True)
    write_events_jsonl(
        os.path.join(run_dir, "events.jsonl"),
        buffer,
        meta={"run": telemetry.run, "mode": telemetry.mode},
    )
    write_trace_event(os.path.join(run_dir, "trace.json"), buffer)
    with open(os.path.join(run_dir, "telemetry.json"), "w",
              encoding="utf-8") as handle:
        json.dump(telemetry.to_json(), handle, indent=2, sort_keys=True)
