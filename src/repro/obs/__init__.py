"""repro.obs — structured tracing, metrics, and run telemetry.

An always-available, near-zero-cost-when-off observability layer for the
engine → evalkit → sim stack:

* **Spans** — hierarchical timed regions (run → stage → chunk → problem
  → candidate) with wall/CPU time and typed attributes.  ``span()``
  returns a context manager; when the mode is ``off`` it is a shared
  no-op object, so instrumentation sites cost one branch plus a kwargs
  dict.
* **Metrics** — a process-wide registry of counters, gauges, and
  histograms (``count`` / ``gauge`` / ``observe``).  Metrics are always
  recorded (they are dict updates at episode granularity, never in
  per-cycle loops), so e.g. :func:`repro.sim.cache.stats` works even
  with tracing off.
* **Process-pool correctness** — recording goes to the top of a *frame
  stack*.  :func:`repro.engine.executor.apply_stages` pushes a fresh
  frame per chunk and ships the drained :class:`ObsBuffer` home inside
  each ``ChunkResult``; the coordinator merges buffers **in submission
  order** (:func:`merge_buffer`), re-parenting worker root spans under
  its active span, so a :class:`~repro.engine.ParallelExecutor` trace is
  as complete as a serial one.
* **Exporters** — a JSONL event log, a Chrome/Perfetto ``trace_event``
  file, and a human :class:`~repro.obs.export.RunTelemetry` summary
  attached to :class:`~repro.evalkit.RunResult`.  ``tools/trace_report.py``
  renders per-stage/per-metric breakdowns and the slowest problems from
  a trace directory.

Control surface: the ``REPRO_OBS`` environment variable selects the mode
(``off`` — default — | ``summary`` | ``trace``) and ``REPRO_OBS_DIR``
the export root (default ``repro_obs``); :func:`configure` overrides
both at runtime.  Runs wrap themselves in :func:`run_capture`, which
scopes a frame, builds the telemetry summary, and (in ``trace`` mode)
writes ``events.jsonl`` / ``trace.json`` / ``telemetry.json`` into a
per-run subdirectory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MODE_OFF",
    "MODE_SUMMARY",
    "MODE_TRACE",
    "SpanEvent",
    "ObsBuffer",
    "configure",
    "ensure_mode",
    "mode",
    "enabled",
    "obs_dir",
    "span",
    "event",
    "count",
    "gauge",
    "observe",
    "counters",
    "counter_value",
    "push_frame",
    "pop_frame",
    "merge_buffer",
    "run_capture",
    "RunCapture",
    "snapshot",
    "reset",
]

MODE_OFF = "off"
MODE_SUMMARY = "summary"
MODE_TRACE = "trace"
_MODES = (MODE_OFF, MODE_SUMMARY, MODE_TRACE)

_ENV_MODE = "REPRO_OBS"
_ENV_DIR = "REPRO_OBS_DIR"
_DEFAULT_DIR = "repro_obs"


def _mode_from_env() -> str:
    value = os.environ.get(_ENV_MODE, MODE_OFF).strip().lower()
    return value if value in _MODES else MODE_OFF


#: 0 = off, 1 = summary (aggregates only), 2 = trace (full event log)
_mode: int = _MODES.index(_mode_from_env())
_dir: Optional[str] = os.environ.get(_ENV_DIR) or None


@dataclass
class SpanEvent:
    """One closed span, as recorded (worker-local ids, epoch-ns clock)."""

    name: str
    ts: int  # epoch ns at span start (comparable across processes)
    dur: int  # wall ns
    cpu: int  # process CPU ns
    pid: int
    id: int
    parent: Optional[int]
    attrs: Dict[str, Any] = field(default_factory=dict)


class _Histogram:
    """Count/sum/min/max accumulator (value distribution summary)."""

    __slots__ = ("n", "total", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: Tuple[int, float, float, float]) -> None:
        n, total, vmin, vmax = other
        self.n += n
        self.total += total
        if vmin < self.min:
            self.min = vmin
        if vmax > self.max:
            self.max = vmax

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.n,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
        }

    def state(self) -> Tuple[int, float, float, float]:
        return (self.n, self.total, self.min, self.max)


class _Frame:
    """One collector frame: events, span aggregates, and metrics."""

    __slots__ = ("events", "agg", "counters", "gauges", "hists",
                 "stack", "next_id")

    def __init__(self) -> None:
        self.events: List[SpanEvent] = []
        #: span name -> [count, wall_ns, cpu_ns]
        self.agg: Dict[str, List[float]] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, _Histogram] = {}
        #: ids of currently open spans (trace mode parenting)
        self.stack: List[int] = []
        self.next_id = 1

    def empty(self) -> bool:
        return not (
            self.events or self.agg or self.counters or self.gauges
            or self.hists
        )


@dataclass
class ObsBuffer:
    """A drained frame, picklable, as shipped home with a ChunkResult."""

    events: List[SpanEvent] = field(default_factory=list)
    agg: Dict[str, List[float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    hists: Dict[str, Tuple[int, float, float, float]] = field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return bool(
            self.events or self.agg or self.counters or self.gauges
            or self.hists
        )


_frames: List[_Frame] = [_Frame()]


# -- configuration -----------------------------------------------------------


def configure(
    mode: Optional[str] = None, directory: Optional[str] = None
) -> Tuple[str, Optional[str]]:
    """Set mode and/or export directory; returns the previous pair.

    ``mode`` must be ``"off"``, ``"summary"``, or ``"trace"``; ``None``
    leaves the current value.  ``directory=""`` resets the export root
    to the ``REPRO_OBS_DIR``/default resolution.
    """
    global _mode, _dir
    previous = (_MODES[_mode], _dir)
    if mode is not None:
        if mode not in _MODES:
            raise ValueError(f"unknown obs mode {mode!r}; pick one of {_MODES}")
        _mode = _MODES.index(mode)
    if directory is not None:
        _dir = directory or None
    return previous


def ensure_mode(mode: str) -> None:
    """Adopt ``mode`` if it differs (pool workers, per dispatched chunk)."""
    global _mode
    if mode in _MODES:
        _mode = _MODES.index(mode)


def mode() -> str:
    """The active mode string (``off`` | ``summary`` | ``trace``)."""
    return _MODES[_mode]


def enabled() -> bool:
    """True when spans are being recorded (mode is not ``off``)."""
    return _mode != 0


def obs_dir() -> str:
    """The export root for trace-mode runs."""
    return _dir or os.environ.get(_ENV_DIR) or _DEFAULT_DIR


def reset() -> None:
    """Drop every frame and all recorded state (tests and fresh tools)."""
    global _frames
    _frames = [_Frame()]


# -- spans -------------------------------------------------------------------


class _NoopSpan:
    """Shared do-nothing span for the off path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span; closing records into the top frame."""

    __slots__ = ("name", "attrs", "_id", "_t0", "_w0", "_c0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        frame = _frames[-1]
        if _mode == 2:
            self._id = frame.next_id
            frame.next_id += 1
            frame.stack.append(self._id)
        else:
            self._id = 0
        self._t0 = time.time_ns()
        self._c0 = time.process_time_ns()
        self._w0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter_ns() - self._w0
        cpu = time.process_time_ns() - self._c0
        frame = _frames[-1]
        entry = frame.agg.get(self.name)
        if entry is None:
            frame.agg[self.name] = [1, wall, cpu]
        else:
            entry[0] += 1
            entry[1] += wall
            entry[2] += cpu
        if _mode == 2:
            stack = frame.stack
            if stack and stack[-1] == self._id:
                stack.pop()
            frame.events.append(
                SpanEvent(
                    name=self.name,
                    ts=self._t0,
                    dur=wall,
                    cpu=cpu,
                    pid=os.getpid(),
                    id=self._id,
                    parent=stack[-1] if stack else None,
                    attrs=self.attrs,
                )
            )


def span(name: str, **attrs):
    """A context manager timing one region; no-op when the mode is off."""
    if _mode == 0:
        return _NOOP_SPAN
    return _Span(name, attrs)


def event(name: str, **attrs) -> None:
    """Record a point event (a zero-duration span); no-op when off."""
    if _mode == 0:
        return
    frame = _frames[-1]
    entry = frame.agg.get(name)
    if entry is None:
        frame.agg[name] = [1, 0, 0]
    else:
        entry[0] += 1
    if _mode == 2:
        span_id = frame.next_id
        frame.next_id += 1
        frame.events.append(
            SpanEvent(
                name=name,
                ts=time.time_ns(),
                dur=0,
                cpu=0,
                pid=os.getpid(),
                id=span_id,
                parent=frame.stack[-1] if frame.stack else None,
                attrs=attrs,
            )
        )


# -- metrics -----------------------------------------------------------------


def count(name: str, n: float = 1) -> None:
    """Increment counter ``name`` by ``n`` (always recorded)."""
    counters = _frames[-1].counters
    counters[name] = counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins on merge)."""
    _frames[-1].gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name``."""
    hists = _frames[-1].hists
    hist = hists.get(name)
    if hist is None:
        hist = hists[name] = _Histogram()
    hist.observe(value)


def counter_value(name: str) -> float:
    """Current value of one counter, summed across the frame stack."""
    return sum(frame.counters.get(name, 0) for frame in _frames)


def counters(prefix: str = "") -> Dict[str, float]:
    """Counters (filtered by ``prefix``) summed across the frame stack."""
    merged: Dict[str, float] = {}
    for frame in _frames:
        for name, value in frame.counters.items():
            if name.startswith(prefix):
                merged[name] = merged.get(name, 0) + value
    return merged


# -- frame capture and merge (process-pool plumbing) -------------------------


def push_frame() -> None:
    """Start capturing into a fresh frame (executor chunk / run scope)."""
    _frames.append(_Frame())


def pop_frame() -> Optional[ObsBuffer]:
    """Drain the top frame into a picklable buffer (None when empty)."""
    frame = _frames.pop()
    if not _frames:  # never leave the stack without a root
        _frames.append(_Frame())
    if frame.empty():
        return None
    return ObsBuffer(
        events=frame.events,
        agg=frame.agg,
        counters=frame.counters,
        gauges=frame.gauges,
        hists={name: h.state() for name, h in frame.hists.items()},
    )


def merge_buffer(buffer: Optional[ObsBuffer]) -> None:
    """Fold a drained buffer into the current frame.

    Called by the coordinator once per chunk, in submission order, and by
    :class:`RunCapture` when a run frame closes.  Span ids are remapped
    into the receiving frame's id space and parentless spans are adopted
    by the currently active span, so worker sub-trees nest under the
    coordinator span that dispatched them.
    """
    if buffer is None:
        return
    frame = _frames[-1]
    if buffer.events:
        base = frame.next_id
        top = frame.stack[-1] if frame.stack else None
        max_id = 0
        for ev in buffer.events:
            if ev.id > max_id:
                max_id = ev.id
            ev.id += base
            ev.parent = top if ev.parent is None else ev.parent + base
            frame.events.append(ev)
        frame.next_id = base + max_id + 1
    for name, (n, wall, cpu) in buffer.agg.items():
        entry = frame.agg.get(name)
        if entry is None:
            frame.agg[name] = [n, wall, cpu]
        else:
            entry[0] += n
            entry[1] += wall
            entry[2] += cpu
    for name, value in buffer.counters.items():
        frame.counters[name] = frame.counters.get(name, 0) + value
    frame.gauges.update(buffer.gauges)
    for name, state in buffer.hists.items():
        hist = frame.hists.get(name)
        if hist is None:
            hist = frame.hists[name] = _Histogram()
        hist.merge(state)


def snapshot() -> ObsBuffer:
    """A copy of everything recorded so far, merged across the stack."""
    merged = ObsBuffer()
    for frame in _frames:
        merge = ObsBuffer(
            events=list(frame.events),
            agg={k: list(v) for k, v in frame.agg.items()},
            counters=dict(frame.counters),
            gauges=dict(frame.gauges),
            hists={k: h.state() for k, h in frame.hists.items()},
        )
        for name, (n, wall, cpu) in merge.agg.items():
            entry = merged.agg.get(name)
            if entry is None:
                merged.agg[name] = [n, wall, cpu]
            else:
                entry[0] += n
                entry[1] += wall
                entry[2] += cpu
        merged.events.extend(merge.events)
        for name, value in merge.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        merged.gauges.update(merge.gauges)
        for name, state in merge.hists.items():
            if name in merged.hists:
                n, total, vmin, vmax = merged.hists[name]
                merged.hists[name] = (
                    n + state[0],
                    total + state[1],
                    min(vmin, state[2]),
                    max(vmax, state[3]),
                )
            else:
                merged.hists[name] = state
    return merged


# -- run capture -------------------------------------------------------------

#: per-process run counter, for unique export subdirectory names
_run_seq = 0


class RunCapture:
    """Scopes one run: frame + root span + telemetry + trace export.

    After ``__exit__``, :attr:`telemetry` holds the run's
    :class:`~repro.obs.export.RunTelemetry` and (in trace mode)
    :attr:`export_dir` the directory the event log was written to.  The
    run's events and metrics are then folded into the enclosing frame,
    so nested runs and process-lifetime metrics stay visible.
    """

    def __init__(self, name: str, **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self.telemetry = None
        self.export_dir: Optional[str] = None
        self._span = None

    def __enter__(self) -> "RunCapture":
        push_frame()
        self._span = span(f"run.{self.name}", **self.attrs)
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        global _run_seq
        self._span.__exit__(*exc_info)
        buffer = pop_frame() or ObsBuffer()
        from repro.obs import export as _export

        self.telemetry = _export.telemetry_from_buffer(
            self.name, mode(), buffer
        )
        if _mode == 2:
            _run_seq += 1
            run_dir = os.path.join(
                obs_dir(), f"{self.name}-{os.getpid()}-{_run_seq:03d}"
            )
            try:
                _export.export_run(run_dir, buffer, self.telemetry)
                self.export_dir = run_dir
            except OSError:
                self.export_dir = None  # unwritable dir: telemetry survives
        merge_buffer(buffer)


def run_capture(name: str, **attrs) -> RunCapture:
    """Context manager wrapping one top-level run (plan, curation, ...)."""
    return RunCapture(name, **attrs)


def iter_spans(buffer: ObsBuffer, name: str) -> Iterator[SpanEvent]:
    """The buffer's span events with ``name``, in recorded order."""
    for ev in buffer.events:
        if ev.name == name:
            yield ev
