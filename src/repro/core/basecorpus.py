"""Synthetic pre-training corpora for simulated foundation models.

A foundation model's behaviour in this reproduction is determined by its
pre-training mix:

* **prose** — English text (backs off gracefully, adds vocabulary);
* **C-like code** — generic code statistics (brace languages share
  low-order token statistics with Verilog);
* **a Verilog slice** — public Verilog the base has seen (this is why
  Llama/CodeLlama/DeepSeek solve *some* VerilogEval problems before any
  fine-tuning, Table II);
* **a contamination slice** — copyrighted Verilog present in web-scale
  pre-training data (this is why the paper's Fig. 3 shows *base* models
  already violating at 2–9%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.utils.rng import DeterministicRNG
from repro.vgen import generate as generate_module

_SUBJECTS = [
    "the processor", "a register file", "the scheduler", "our toolchain",
    "the memory controller", "a state machine", "the interconnect",
    "the compiler", "the testbench", "a clock domain",
]
_VERBS = [
    "implements", "drives", "synchronizes", "arbitrates", "pipelines",
    "validates", "decodes", "buffers", "latches", "samples",
]
_OBJECTS = [
    "incoming requests", "the data path", "control signals", "each packet",
    "the write queue", "configuration registers", "interrupt lines",
    "the handshake", "boundary conditions", "timing constraints",
]

_C_TEMPLATES = [
    (
        "int {name}(int a, int b) {{\n"
        "    int result = a {op} b;\n"
        "    if (result < 0) {{\n"
        "        result = -result;\n"
        "    }}\n"
        "    return result;\n"
        "}}\n"
    ),
    (
        "unsigned {name}(unsigned x) {{\n"
        "    unsigned count = 0;\n"
        "    while (x) {{\n"
        "        count += x & 1u;\n"
        "        x >>= 1;\n"
        "    }}\n"
        "    return count;\n"
        "}}\n"
    ),
    (
        "void {name}(int *buf, int n) {{\n"
        "    for (int i = 0; i < n; i++) {{\n"
        "        buf[i] = buf[i] {op} {k};\n"
        "    }}\n"
        "}}\n"
    ),
]


def _prose_document(rng: DeterministicRNG, sentences: int) -> str:
    lines: List[str] = []
    for _ in range(sentences):
        lines.append(
            f"{rng.choice(_SUBJECTS).capitalize()} {rng.choice(_VERBS)} "
            f"{rng.choice(_OBJECTS)}."
        )
    return " ".join(lines) + "\n"


def _c_document(rng: DeterministicRNG, functions: int) -> str:
    parts: List[str] = []
    for i in range(functions):
        template = rng.choice(_C_TEMPLATES)
        parts.append(
            template.format(
                name=f"{rng.choice(['calc', 'proc', 'update', 'fold'])}_{i}",
                op=rng.choice(["+", "-", "^", "&", "|"]),
                k=rng.randint(1, 9),
            )
        )
    return "\n".join(parts)


@dataclass
class BaseCorpusConfig:
    """Mix proportions for one foundation model's pre-training corpus."""

    name: str = "base"
    prose_docs: int = 120
    c_docs: int = 80
    verilog_files: int = 80
    seed: int = 0xBA5E


def build_base_corpus(
    config: BaseCorpusConfig,
    verilog_slice: Sequence[str] = (),
    contamination_slice: Sequence[str] = (),
) -> List[str]:
    """Assemble the pre-training mix.

    ``verilog_slice`` provides real (world) Verilog text; if it is shorter
    than ``config.verilog_files``, the gap is filled with freshly
    generated modules (public Verilog the world generator never
    published).  ``contamination_slice`` is copyrighted text included
    verbatim — web-scale pre-training does not honour license headers.
    """
    rng = DeterministicRNG(config.seed).fork(config.name)
    corpus: List[str] = []
    for i in range(config.prose_docs):
        corpus.append(_prose_document(rng.fork("prose", i), sentences=14))
    for i in range(config.c_docs):
        corpus.append(_c_document(rng.fork("c", i), functions=4))
    verilog: List[str] = list(verilog_slice[: config.verilog_files])
    fill_index = 0
    while len(verilog) < config.verilog_files:
        verilog.append(
            generate_module(rng.fork("fill-verilog", fill_index)).source
        )
        fill_index += 1
    corpus.extend(verilog)
    corpus.extend(contamination_slice)
    # Interleave deterministically so n-gram training sees a shuffled mix.
    return rng.shuffled(corpus)
