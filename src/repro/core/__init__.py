"""Core orchestration: the paper's end-to-end experiments.

* :mod:`repro.core.basecorpus` — synthetic pre-training corpora for the
  simulated foundation models (prose + C-like code + a Verilog slice +
  a contamination slice of copyrighted files);
* :mod:`repro.core.freeset` — build FreeSet: world -> scrape -> curate;
* :mod:`repro.core.freev` — train FreeV: base Llama-sim + continual
  pre-training on FreeSet; joint headline evaluation;
* :mod:`repro.core.comparison` — policy simulations of the prior works
  in Table I / Table II / Figure 3 (VeriGen, RTLCoder, CodeV, BetterV,
  OriGen, CraftRTL, OpenLLM-RTL and their bases).
"""

from repro.core.basecorpus import BaseCorpusConfig, build_base_corpus
from repro.core.freeset import FreeSetBuilder, FreeSetResult
from repro.core.freev import FreeVTrainer, HeadlineReport
from repro.core.comparison import (
    DATASET_POLICIES,
    MODEL_SPECS,
    DatasetPolicy,
    ModelSpec,
    ModelZoo,
    simulate_prior_dataset,
)

__all__ = [
    "BaseCorpusConfig",
    "build_base_corpus",
    "FreeSetBuilder",
    "FreeSetResult",
    "FreeVTrainer",
    "HeadlineReport",
    "DatasetPolicy",
    "ModelSpec",
    "ModelZoo",
    "DATASET_POLICIES",
    "MODEL_SPECS",
    "simulate_prior_dataset",
]
