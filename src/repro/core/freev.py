"""FreeV: the paper's own fine-tuning run, plus the headline comparison.

``FreeVTrainer`` reproduces Sec. III-E end to end: build (or accept) a
FreeSet dataset, build the simulated Llama-3.1-8B-Instruct base, run
continual pre-training, then evaluate both models on the functional
benchmark and the copyright benchmark.  ``HeadlineReport`` carries the
numbers behind the abstract's claims (pass@5/@10 gains, 3% violation
rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.copyright import (
    CopyrightBenchmark,
    CopyrightedCorpus,
    collect_copyrighted_corpus,
)
from repro.core.basecorpus import BaseCorpusConfig, build_base_corpus
from repro.core.freeset import FreeSetBuilder, FreeSetResult
from repro.llm import LanguageModel
from repro.utils.rng import DeterministicRNG
from repro.vereval import EvalConfig, EvalResult, build_problem_set


@dataclass
class HeadlineReport:
    """FreeV vs base: the paper's two headline claims in one object."""

    base_eval: EvalResult
    freev_eval: EvalResult
    base_violation_rate: float
    freev_violation_rate: float

    def passk_delta(self) -> Dict[int, float]:
        base = self.base_eval.best()
        tuned = self.freev_eval.best()
        # Only ks both evals report: base and tuned runs made with
        # different ``ks`` used to raise KeyError here.
        return {
            k: tuned[k] - base[k] for k in sorted(set(base) & set(tuned))
        }

    def summary(self) -> str:
        delta = self.passk_delta()
        parts = [
            self.base_eval.summary(),
            self.freev_eval.summary(),
            "delta: "
            + " ".join(
                f"pass@{k}:{d * 100:+.1f}" for k, d in sorted(delta.items())
            ),
            f"violations: base {self.base_violation_rate:.1%} "
            f"-> FreeV {self.freev_violation_rate:.1%}",
        ]
        return "\n".join(parts)


class FreeVTrainer:
    """Builds the Llama-sim base and fine-tunes FreeV on FreeSet."""

    def __init__(
        self,
        freeset: Optional[FreeSetResult] = None,
        builder: Optional[FreeSetBuilder] = None,
        base_verilog_files: int = 8,
        base_contamination_fraction: float = 0.03,
        finetune_weight: float = 2.0,
        max_train_tokens: int = 800_000,
        seed: int = 0xF5EE,
    ) -> None:
        if freeset is None:
            builder = builder or FreeSetBuilder()
            freeset = builder.build()
        self.freeset = freeset
        self.base_verilog_files = base_verilog_files
        self.base_contamination_fraction = base_contamination_fraction
        self.finetune_weight = finetune_weight
        self.max_train_tokens = max_train_tokens
        self.seed = seed
        self._base: Optional[LanguageModel] = None
        self._freev: Optional[LanguageModel] = None
        self._corpus: Optional[CopyrightedCorpus] = None

    # -- artifacts -----------------------------------------------------------

    @property
    def copyrighted_corpus(self) -> CopyrightedCorpus:
        if self._corpus is None:
            self._corpus = collect_copyrighted_corpus(self.freeset.raw_files)
        return self._corpus

    def base_model(self) -> LanguageModel:
        if self._base is None:
            rng = DeterministicRNG(self.seed)
            public = [
                f.content
                for f in self.freeset.raw_files
                if f.header_kind != "proprietary"
            ]
            slice_count = min(self.base_verilog_files, len(public))
            verilog_slice = rng.sample(public, slice_count) if slice_count else []
            contamination: List[str] = []
            texts = list(self.copyrighted_corpus.entries.values())
            if self.base_contamination_fraction > 0 and texts:
                count = max(
                    1, int(len(texts) * self.base_contamination_fraction)
                )
                contamination = rng.sample(texts, min(count, len(texts)))
            corpus = build_base_corpus(
                BaseCorpusConfig(
                    name="Llama-3.1-8B-Instruct",
                    verilog_files=self.base_verilog_files,
                    seed=rng.fork("base").seed,
                ),
                verilog_slice=verilog_slice,
                contamination_slice=contamination,
            )
            self._base = LanguageModel.pretrain(
                "Llama-3.1-8B-Instruct",
                corpus,
                max_train_tokens=self.max_train_tokens,
            )
        return self._base

    def train(self) -> LanguageModel:
        """Continual pre-training of the base on FreeSet (Sec. III-E1)."""
        if self._freev is None:
            self._freev = self.base_model().continual_pretrain(
                "FreeV-Llama3.1",
                self.freeset.dataset.texts(),
                weight=self.finetune_weight,
                max_train_tokens=self.max_train_tokens,
            )
        return self._freev

    # -- evaluation ----------------------------------------------------------

    def headline(
        self,
        n_problems: int = 40,
        eval_config: Optional[EvalConfig] = None,
        num_prompts: int = 100,
        seed: int = 0,
        executor=None,
        store=None,
        checkpoint_tag: str = "headline",
    ) -> HeadlineReport:
        """Run the joint evaluation behind the paper's abstract.

        One :class:`repro.evalkit.EvalPlan` covers both models and both
        benchmarks, so the problem set and the copyright similarity index
        are built once and shared; numbers are identical to evaluating
        each (model, benchmark) pair serially.  ``executor`` fans the
        sample stream across a process pool; ``store`` makes the sweep
        resumable under ``checkpoint_tag``.
        """
        from repro.evalkit import CopyrightTask, EvalPlan, PassAtKTask

        problems = build_problem_set(n_problems=n_problems)
        config = eval_config or EvalConfig()
        base = self.base_model()
        freev = self.train()
        benchmark = CopyrightBenchmark(
            self.copyrighted_corpus, num_prompts=num_prompts
        )
        passk = PassAtKTask(problems, config)
        copyright_task = CopyrightTask(benchmark, seed=seed)
        plan = EvalPlan([base, freev], [passk, copyright_task], executor=executor)
        run = plan.run(store=store, tag=checkpoint_tag)
        return HeadlineReport(
            base_eval=run.result(base.name, passk.task_id),
            freev_eval=run.result(freev.name, passk.task_id),
            base_violation_rate=run.result(
                base.name, copyright_task.task_id
            ).violation_rate,
            freev_violation_rate=run.result(
                freev.name, copyright_task.task_id
            ).violation_rate,
        )
