"""Policy simulations of prior-work datasets and models.

Each prior work is reduced to the levers the paper itself identifies:

* **dataset policy** (Table I): license check?  file-level copyright
  check?  de-duplication?  augmented (LLM-generated description/code
  pairs)?  length caps?  These determine both the dataset columns in
  Table I and *which world files end up in the model's training data* —
  in particular whether vendored proprietary files slip in (Fig. 3).
* **training recipe** (Table II): base-model Verilog exposure, amount of
  fine-tuning data, and whether the data is *instruction-style*
  (description + module pairs, which match the VerilogEval prompt format
  and therefore lift pass@k the way instruction tuning does in the
  paper).

These are simulations of curation *policies*, not reimplementations of
the cited works; see DESIGN.md Sec. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.basecorpus import BaseCorpusConfig, build_base_corpus
from repro.curation import CurationConfig, CuratedDataset, CurationPipeline
from repro.github.scraper import ScrapedFile
from repro.llm import LanguageModel
from repro.utils.rng import DeterministicRNG
from repro.vgen import generate as generate_module


@dataclass(frozen=True)
class DatasetPolicy:
    """One prior work's curation policy + Table I metadata."""

    name: str
    structure: str               # "Continual Pre-Training" | "Instruction-Tuning"
    augmented: bool
    open_source: bool
    license_check: bool
    copyright_check: bool
    dedup: bool = True
    max_file_chars: Optional[int] = None
    #: fraction of the (eligible) scraped files the dataset actually kept
    #: (prior datasets are much smaller than the full scrape)
    sample_fraction: float = 1.0


#: Table I rows (paper's columns: structure/augmented/open-source/license
#: check; the copyright-check column is what FreeSet uniquely adds).
DATASET_POLICIES: Dict[str, DatasetPolicy] = {
    "VeriGen": DatasetPolicy(
        name="VeriGen",
        structure="Continual Pre-Training",
        augmented=False,
        open_source=True,
        license_check=False,
        copyright_check=False,
        sample_fraction=0.40,
    ),
    "RTLCoder": DatasetPolicy(
        name="RTLCoder",
        structure="Instruction-Tuning",
        augmented=True,
        open_source=True,
        license_check=False,
        copyright_check=False,
        sample_fraction=0.14,
    ),
    "CodeV": DatasetPolicy(
        name="CodeV",
        structure="Instruction-Tuning",
        augmented=True,
        open_source=False,
        license_check=False,
        copyright_check=False,
        max_file_chars=2096,
        sample_fraction=0.8,
    ),
    "BetterV": DatasetPolicy(
        name="BetterV",
        structure="Instruction-Tuning",
        augmented=True,
        open_source=False,
        license_check=True,
        copyright_check=False,
        sample_fraction=0.5,
    ),
    "CraftRTL": DatasetPolicy(
        name="CraftRTL",
        structure="Instruction-Tuning",
        augmented=True,
        open_source=False,
        license_check=False,
        copyright_check=False,
        sample_fraction=0.4,
    ),
    "OriGen": DatasetPolicy(
        name="OriGen",
        structure="Instruction-Tuning",
        augmented=True,
        open_source=True,
        license_check=False,
        copyright_check=False,
        # OriGen's rows nearly tie FreeSet's (222,075 vs 222,624) but its
        # disk size is ~30x smaller: augmented instruction snippets are
        # short, modeled here as a tight length cap.
        max_file_chars=700,
        sample_fraction=0.9,
    ),
    "FreeSet": DatasetPolicy(
        name="FreeSet",
        structure="Continual Pre-Training",
        augmented=False,
        open_source=True,
        license_check=True,
        copyright_check=True,
        sample_fraction=1.0,
    ),
}


def simulate_prior_dataset(
    policy: DatasetPolicy,
    raw_files: Sequence[ScrapedFile],
    seed: int = 0xDA7A,
) -> CuratedDataset:
    """Run a prior work's curation policy over the same scraped world."""
    config = CurationConfig(
        license_check=policy.license_check,
        allow_unlicensed=not policy.license_check,
        dedup=policy.dedup,
        copyright_check=policy.copyright_check,
        syntax_check=True,
        max_file_chars=policy.max_file_chars,
        seed=seed,
    )
    rng = DeterministicRNG(seed).fork(policy.name)
    files = list(raw_files)
    if policy.sample_fraction < 1.0:
        keep = max(1, int(len(files) * policy.sample_fraction))
        files = rng.sample(files, keep)
    dataset = CurationPipeline(config).run(files, name=policy.name)
    dataset.structure = policy.structure
    dataset.augmented = policy.augmented
    dataset.open_source = policy.open_source
    return dataset


# ---------------------------------------------------------------------------
# Model zoo
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelSpec:
    """Training recipe for one simulated model.

    ``base`` names another spec this model is fine-tuned from (None for
    foundation models).  ``contamination_fraction`` is the share of the
    copyrighted population present in this model's *own* training slice
    (bases: web pre-training leakage; fine-tunes: what their dataset
    policy let through) — the paper's Fig. 3 premise is exactly that
    these fractions differ across curation policies.
    """

    name: str
    base: Optional[str] = None
    #: base-corpus knobs (foundation models only)
    prose_docs: int = 100
    c_docs: int = 60
    verilog_files: int = 60
    contamination_fraction: float = 0.0
    #: fine-tuning knobs
    dataset_policy: Optional[str] = None
    instruct_pairs: int = 0        # LLM-augmented description+code pairs
    finetune_weight: float = 2.0


MODEL_SPECS: Dict[str, ModelSpec] = {
    # Foundation models (Table II upper block + Fig. 3 bases).
    "Llama-3.1-8B-Instruct": ModelSpec(
        name="Llama-3.1-8B-Instruct",
        verilog_files=8,
        contamination_fraction=0.03,
    ),
    "CodeLlama-7B": ModelSpec(
        name="CodeLlama-7B", verilog_files=12, contamination_fraction=0.05
    ),
    "CodeQwen-7B": ModelSpec(
        name="CodeQwen-7B", verilog_files=18, contamination_fraction=0.06
    ),
    "DeepSeek-Coder-6.7B": ModelSpec(
        name="DeepSeek-Coder-6.7B",
        verilog_files=25,
        contamination_fraction=0.07,
    ),
    "CodeGen-6B-multi": ModelSpec(
        name="CodeGen-6B-multi", verilog_files=15, contamination_fraction=0.12
    ),
    "StarCoder2-15B": ModelSpec(
        name="StarCoder2-15B", verilog_files=30, contamination_fraction=0.06
    ),
    "GPT-4": ModelSpec(
        name="GPT-4",
        prose_docs=200,
        c_docs=150,
        verilog_files=120,
        contamination_fraction=0.05,
        instruct_pairs=250,
    ),
    # Verilog-tuned models (Table II lower block + Fig. 3 bars).
    "VeriGen": ModelSpec(
        name="VeriGen",
        base="CodeGen-6B-multi",
        dataset_policy="VeriGen",
        contamination_fraction=0.20,
    ),
    "RTLCoder-DS": ModelSpec(
        name="RTLCoder-DS",
        base="DeepSeek-Coder-6.7B",
        dataset_policy="RTLCoder",
        instruct_pairs=420,
        contamination_fraction=0.10,
    ),
    "BetterV-CodeQwen": ModelSpec(
        name="BetterV-CodeQwen",
        base="CodeQwen-7B",
        dataset_policy="BetterV",
        instruct_pairs=520,
        contamination_fraction=0.08,
    ),
    "CodeV-DS-6.7B": ModelSpec(
        name="CodeV-DS-6.7B",
        base="DeepSeek-Coder-6.7B",
        dataset_policy="CodeV",
        instruct_pairs=700,
        contamination_fraction=0.15,
    ),
    "OriGen-DS": ModelSpec(
        name="OriGen-DS",
        base="DeepSeek-Coder-6.7B",
        dataset_policy="OriGen",
        instruct_pairs=720,
        contamination_fraction=0.09,
    ),
    "CraftRTL-StarCoder2": ModelSpec(
        name="CraftRTL-StarCoder2",
        base="StarCoder2-15B",
        dataset_policy="CraftRTL",
        instruct_pairs=1300,
        contamination_fraction=0.06,
    ),
    "OpenLLM-RTL": ModelSpec(
        name="OpenLLM-RTL",
        base="DeepSeek-Coder-6.7B",
        dataset_policy="RTLCoder",
        instruct_pairs=450,
        contamination_fraction=0.08,
    ),
    "FreeV-Llama3.1": ModelSpec(
        name="FreeV-Llama3.1",
        base="Llama-3.1-8B-Instruct",
        dataset_policy="FreeSet",
        contamination_fraction=0.0,
    ),
}


def _instruction_pairs(count: int, seed: int) -> List[str]:
    """LLM-augmented training pairs: description comment + module source.

    This is the CodeV/RTLCoder-style augmentation; the format matches the
    VerilogEval prompt layout, which is why instruction-tuned policies
    outscore continual pre-training in Table II.
    """
    rng = DeterministicRNG(seed)
    pairs: List[str] = []
    for i in range(count):
        module = generate_module(rng.fork("pair", i))
        desc_lines = []
        words = module.description.split()
        line: List[str] = []
        for word in words:
            line.append(word)
            if sum(len(w) + 1 for w in line) > 72:
                desc_lines.append("// " + " ".join(line))
                line = []
        if line:
            desc_lines.append("// " + " ".join(line))
        pairs.append("\n".join(desc_lines) + "\n" + module.source)
    return pairs


class ModelZoo:
    """Lazily builds simulated models over one shared world scrape."""

    def __init__(
        self,
        raw_files: Sequence[ScrapedFile],
        copyrighted_texts: Sequence[str],
        seed: int = 0x200,
        max_train_tokens: int = 800_000,
    ) -> None:
        self._raw = list(raw_files)
        self._copyrighted = list(copyrighted_texts)
        self._seed = seed
        self._max_tokens = max_train_tokens
        self._cache: Dict[str, LanguageModel] = {}
        self._datasets: Dict[str, CuratedDataset] = {}
        # A pool of public (non-proprietary) scraped texts for base slices.
        self._public_texts = [
            f.content for f in self._raw if f.header_kind != "proprietary"
        ]

    def dataset(self, policy_name: str) -> CuratedDataset:
        if policy_name not in self._datasets:
            self._datasets[policy_name] = simulate_prior_dataset(
                DATASET_POLICIES[policy_name], self._raw, seed=self._seed
            )
        return self._datasets[policy_name]

    def _contamination(self, fraction: float, label: str) -> List[str]:
        if fraction <= 0.0 or not self._copyrighted:
            return []
        rng = DeterministicRNG(self._seed).fork("contam", label)
        count = max(1, int(len(self._copyrighted) * fraction))
        count = min(count, len(self._copyrighted))
        return rng.sample(self._copyrighted, count)

    def model(self, name: str) -> LanguageModel:
        if name in self._cache:
            return self._cache[name]
        spec = MODEL_SPECS[name]
        if spec.base is None:
            built = self._build_foundation(spec)
        else:
            built = self._build_finetuned(spec)
        self._cache[name] = built
        return built

    def evict(self, name: str) -> None:
        """Free a cached model (benchmarks build many large models)."""
        self._cache.pop(name, None)

    def evaluate(
        self,
        names: Sequence[str],
        tasks: Sequence,
        executor=None,
        store=None,
        tag: str = "zoo",
    ):
        """Evaluate several zoo models through one shared evalkit plan.

        The Table II / Fig. 3 sweep shape: every model in ``names`` runs
        every :class:`repro.evalkit.EvalTask` in ``tasks``, sharing the
        problem set and the copyright similarity index across models
        instead of rebuilding them per model.  Returns the
        :class:`repro.evalkit.RunResult`; per-model aggregates come back
        via ``run.result(name, task_id)``.  ``store`` makes the sweep
        resumable; ``executor`` fans samples across a process pool.
        """
        from repro.evalkit import EvalPlan

        models = [self.model(name) for name in names]
        plan = EvalPlan(models, list(tasks), executor=executor)
        return plan.run(store=store, tag=tag)

    def _build_foundation(self, spec: ModelSpec) -> LanguageModel:
        rng = DeterministicRNG(self._seed).fork("slice", spec.name)
        slice_count = min(spec.verilog_files, len(self._public_texts))
        verilog_slice = (
            rng.sample(self._public_texts, slice_count) if slice_count else []
        )
        corpus = build_base_corpus(
            BaseCorpusConfig(
                name=spec.name,
                prose_docs=spec.prose_docs,
                c_docs=spec.c_docs,
                verilog_files=spec.verilog_files,
                seed=DeterministicRNG(self._seed).fork("base", spec.name).seed,
            ),
            verilog_slice=verilog_slice,
            contamination_slice=self._contamination(
                spec.contamination_fraction, spec.name
            ),
        )
        if spec.instruct_pairs:
            corpus = corpus + _instruction_pairs(
                spec.instruct_pairs,
                DeterministicRNG(self._seed).fork("instr", spec.name).seed,
            )
        return LanguageModel.pretrain(
            spec.name, corpus, max_train_tokens=self._max_tokens
        )

    def _build_finetuned(self, spec: ModelSpec) -> LanguageModel:
        base = self.model(spec.base)
        corpus: List[str] = []
        if spec.dataset_policy is not None:
            corpus.extend(self.dataset(spec.dataset_policy).texts())
        if spec.instruct_pairs:
            corpus.extend(
                _instruction_pairs(
                    spec.instruct_pairs,
                    DeterministicRNG(self._seed).fork("instr", spec.name).seed,
                )
            )
        corpus.extend(
            self._contamination(spec.contamination_fraction, spec.name)
        )
        return base.continual_pretrain(
            spec.name,
            corpus,
            weight=spec.finetune_weight,
            max_train_tokens=self._max_tokens,
        )
