"""FreeSet: world -> granularized scrape -> curation pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.curation import CurationConfig, CuratedDataset, CurationPipeline
from repro.github import (
    GitHubScraper,
    GitHubWorld,
    ScrapedFile,
    SimulatedGitHubAPI,
    WorldConfig,
    generate_world,
)
from repro.github.scraper import ScrapeReport


@dataclass
class FreeSetResult:
    """Everything the FreeSet build produces."""

    dataset: CuratedDataset
    scrape_report: ScrapeReport
    #: all scraped files (pre-curation), for prior-work simulations and
    #: the copyright benchmark corpus
    raw_files: List[ScrapedFile]


class FreeSetBuilder:
    """Builds FreeSet from a synthetic world (creating one if needed).

    The scraper is run *with unlicensed repositories included* so that the
    explicit license-filter stage shows up in the funnel exactly as in the
    paper (1.3M extracted -> 608k licensed); the search-level license
    facets remain what granularizes the queries.
    """

    def __init__(
        self,
        world: Optional[GitHubWorld] = None,
        world_config: Optional[WorldConfig] = None,
        curation_config: Optional[CurationConfig] = None,
        chunk_size: Optional[int] = None,
        executor=None,
    ) -> None:
        self.world = world if world is not None else generate_world(world_config)
        self.curation_config = curation_config or CurationConfig()
        self.chunk_size = chunk_size
        self.executor = executor

    def scrape(self) -> tuple:
        api = SimulatedGitHubAPI(self.world)
        scraper = GitHubScraper(api, include_unlicensed=True)
        files = scraper.scrape()
        return files, scraper.report

    def build(self, name: str = "FreeSet") -> FreeSetResult:
        files, report = self.scrape()
        pipeline = CurationPipeline(
            self.curation_config,
            chunk_size=self.chunk_size,
            executor=self.executor,
        )
        dataset = pipeline.run(files, name=name)
        return FreeSetResult(
            dataset=dataset, scrape_report=report, raw_files=files
        )

    def incremental_curator(self):
        """An :class:`repro.curation.IncrementalCurator` with this
        builder's curation policy, for batch-by-batch corpus growth."""
        from repro.curation.incremental import IncrementalCurator

        return IncrementalCurator(
            self.curation_config,
            chunk_size=self.chunk_size,
            executor=self.executor,
        )
