"""Lower a parsed Verilog module to a name-free dataflow graph.

Nodes are signals, constants, operators, and process kinds; node labels
encode only *structure* (operator symbol, declared width bucket, port
direction, sequential vs combinational), never identifier text.  Two
modules that differ only by consistent identifier renaming therefore
produce isomorphic graphs — the property that makes structural similarity
robust where textual cosine similarity fails.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.verilog import ast, parse_source


def _width_bucket(width: Optional[int]) -> str:
    """Coarse width label: exact small widths, bucketed large ones."""
    if width is None:
        return "w?"
    if width <= 4:
        return f"w{width}"
    if width <= 8:
        return "w5-8"
    if width <= 16:
        return "w9-16"
    if width <= 32:
        return "w17-32"
    return "w33+"


def _range_width(rng: Optional[ast.Range]) -> Optional[int]:
    if rng is None:
        return 1
    if isinstance(rng.msb, ast.Number) and isinstance(rng.lsb, ast.Number):
        return abs(rng.msb.value - rng.lsb.value) + 1
    return None  # parameterized width


class _GraphBuilder:
    def __init__(self, module: ast.Module) -> None:
        self.module = module
        self.graph = nx.DiGraph()
        self._counter = 0
        self._signal_nodes: Dict[str, int] = {}

    def _new_node(self, label: str) -> int:
        node = self._counter
        self._counter += 1
        self.graph.add_node(node, label=label)
        return node

    def _signal_node(self, name: str) -> int:
        if name not in self._signal_nodes:
            # Signals referenced but not declared (cross-file nets) get a
            # generic label.
            self._signal_nodes[name] = self._new_node("sig:w?")
        return self._signal_nodes[name]

    # -- declarations ------------------------------------------------------

    def _declare_signals(self) -> None:
        for port in self.module.ports:
            label = (
                f"port:{port.direction}:"
                f"{_width_bucket(_range_width(port.range))}"
            )
            self._signal_nodes[port.name] = self._new_node(label)
        for net in self.module.nets:
            if net.name in self._signal_nodes:
                continue
            kind = "mem" if net.array_dims else net.kind
            label = f"{kind}:{_width_bucket(_range_width(net.range))}"
            self._signal_nodes[net.name] = self._new_node(label)

    # -- expressions -------------------------------------------------------

    def _expr_node(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            # Constant values are structure: reset values, comparison
            # bounds, and tap masks distinguish designs of equal shape.
            magnitude = expr.value.bit_length()
            return self._new_node(f"const:b{magnitude}")
        if isinstance(expr, ast.StringLiteral):
            return self._new_node("const:str")
        if isinstance(expr, ast.Identifier):
            return self._signal_node(expr.name)
        if isinstance(expr, ast.Unary):
            node = self._new_node(f"op:{expr.op}u")
            self.graph.add_edge(self._expr_node(expr.operand), node)
            return node
        if isinstance(expr, ast.Binary):
            node = self._new_node(f"op:{expr.op}")
            self.graph.add_edge(self._expr_node(expr.lhs), node)
            self.graph.add_edge(self._expr_node(expr.rhs), node)
            return node
        if isinstance(expr, ast.Ternary):
            node = self._new_node("op:mux")
            self.graph.add_edge(self._expr_node(expr.cond), node)
            self.graph.add_edge(self._expr_node(expr.then), node)
            self.graph.add_edge(self._expr_node(expr.other), node)
            return node
        if isinstance(expr, ast.Concat):
            node = self._new_node(f"op:concat{len(expr.parts)}")
            for part in expr.parts:
                self.graph.add_edge(self._expr_node(part), node)
            return node
        if isinstance(expr, ast.Repeat):
            node = self._new_node("op:repeat")
            self.graph.add_edge(self._expr_node(expr.inner), node)
            return node
        if isinstance(expr, ast.Index):
            node = self._new_node("op:index")
            self.graph.add_edge(self._expr_node(expr.base), node)
            self.graph.add_edge(self._expr_node(expr.index), node)
            return node
        if isinstance(expr, ast.PartSelect):
            node = self._new_node("op:slice")
            self.graph.add_edge(self._expr_node(expr.base), node)
            return node
        if isinstance(expr, ast.IndexedPartSelect):
            node = self._new_node("op:islice")
            self.graph.add_edge(self._expr_node(expr.base), node)
            self.graph.add_edge(self._expr_node(expr.start), node)
            return node
        if isinstance(expr, ast.SystemCall):
            node = self._new_node(f"op:{expr.name}")
            for arg in expr.args:
                self.graph.add_edge(self._expr_node(arg), node)
            return node
        return self._new_node("op:unknown")

    # -- statements --------------------------------------------------------

    def _assign_edge(self, target: ast.Expr, source_node: int,
                     kind: str) -> None:
        write = self._new_node(f"asn:{kind}")
        self.graph.add_edge(source_node, write)
        self.graph.add_edge(write, self._lvalue_node(target))

    def _lvalue_node(self, target: ast.Expr) -> int:
        if isinstance(target, ast.Identifier):
            return self._signal_node(target.name)
        if isinstance(target, (ast.Index, ast.PartSelect,
                               ast.IndexedPartSelect)):
            return self._lvalue_node(target.base)
        if isinstance(target, ast.Concat):
            node = self._new_node("op:split")
            for part in target.parts:
                self.graph.add_edge(node, self._lvalue_node(part))
            return node
        return self._new_node("op:unknown")

    def _stmt(self, stmt: ast.Stmt, kind: str, guard: Optional[int]) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._stmt(inner, kind, guard)
            return
        if isinstance(stmt, ast.Assign):
            source = self._expr_node(stmt.value)
            if guard is not None:
                merged = self._new_node("op:guard")
                self.graph.add_edge(guard, merged)
                self.graph.add_edge(source, merged)
                source = merged
            asn_kind = kind if stmt.blocking else f"{kind}:nb"
            self._assign_edge(stmt.target, source, asn_kind)
            return
        if isinstance(stmt, ast.If):
            cond = self._expr_node(stmt.cond)
            self._stmt(stmt.then, kind, cond)
            if stmt.other is not None:
                inv = self._new_node("op:!u")
                self.graph.add_edge(cond, inv)
                self._stmt(stmt.other, kind, inv)
            return
        if isinstance(stmt, ast.Case):
            subject = self._expr_node(stmt.subject)
            for item in stmt.items:
                arm = self._new_node(f"op:case-arm:{stmt.kind}")
                self.graph.add_edge(subject, arm)
                for label in item.labels:
                    self.graph.add_edge(self._expr_node(label), arm)
                self._stmt(item.body, kind, arm)
            return
        if isinstance(stmt, ast.For):
            loop = self._new_node("op:for")
            self.graph.add_edge(self._expr_node(stmt.cond), loop)
            self._stmt(stmt.body, kind, loop)
            return
        # Null statements and system tasks contribute no structure.

    def build(self) -> nx.DiGraph:
        self._declare_signals()
        for assign in self.module.assigns:
            self._assign_edge(
                assign.target, self._expr_node(assign.value), "cont"
            )
        for block in self.module.always_blocks:
            kind = "comb" if block.is_combinational else "seq"
            self._stmt(block.body, kind, None)
        for block in self.module.initial_blocks:
            self._stmt(block.body, "init", None)
        for instance in self.module.instances:
            node = self._new_node("inst")
            for conn in instance.connections:
                if conn.expr is not None:
                    self.graph.add_edge(self._expr_node(conn.expr), node)
        return self.graph


def build_dataflow_graph(source_or_module) -> nx.DiGraph:
    """Dataflow graph of a module (or of the first module in a source)."""
    if isinstance(source_or_module, ast.Module):
        module = source_or_module
    else:
        parsed = parse_source(str(source_or_module))
        module = parsed.modules[0]
    return _GraphBuilder(module).build()
