"""Weisfeiler-Lehman subtree kernel over labeled dataflow graphs.

Classic WL refinement: each node's label is iteratively replaced by a
hash of (own label, sorted multiset of in-neighbour labels).  The graph's
feature vector is the histogram of all labels seen across iterations;
similarity is the cosine of two histograms.  This is the hand-rolled
analogue of the GNN embedding similarity GNN4IP learns — sufficient here
because our graphs carry informative node labels.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from math import sqrt
from typing import Dict

import networkx as nx

DEFAULT_ITERATIONS = 3


def _refine(label: str, neighbour_labels) -> str:
    digest = hashlib.blake2b(digest_size=8)
    digest.update(label.encode("utf-8"))
    for neighbour in sorted(neighbour_labels):
        digest.update(b"|")
        digest.update(neighbour.encode("utf-8"))
    return digest.hexdigest()


def wl_histogram(
    graph: nx.DiGraph, iterations: int = DEFAULT_ITERATIONS
) -> Counter:
    """Label histogram over ``iterations`` rounds of WL refinement."""
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    labels: Dict = {
        node: data.get("label", "?") for node, data in graph.nodes(data=True)
    }
    histogram: Counter = Counter(labels.values())
    for _ in range(iterations):
        labels = {
            node: _refine(
                labels[node],
                (labels[pred] for pred in graph.predecessors(node)),
            )
            for node in graph.nodes
        }
        histogram.update(labels.values())
    return histogram


def _cosine(a: Counter, b: Counter) -> float:
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = sum(count * large.get(key, 0) for key, count in small.items())
    norm_a = sqrt(sum(c * c for c in a.values()))
    norm_b = sqrt(sum(c * c for c in b.values()))
    return dot / (norm_a * norm_b)


def wl_similarity(
    graph_a: nx.DiGraph,
    graph_b: nx.DiGraph,
    iterations: int = DEFAULT_ITERATIONS,
) -> float:
    """Cosine similarity of the two graphs' WL label histograms, in [0, 1]."""
    return _cosine(
        wl_histogram(graph_a, iterations), wl_histogram(graph_b, iterations)
    )
