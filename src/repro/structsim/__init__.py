"""Structural design similarity (the paper's GNN4IP future-work item).

Sec. V of the paper notes that cosine similarity over text is a
preliminary metric and that "other similarity metrics may be explored for
effective comparisons of the hardware design, such as evaluating the
design structure, like GNN4IP".  This package implements that extension:

* :mod:`repro.structsim.graph` — lower a parsed module to a *dataflow
  graph* whose node labels carry operator kinds and widths but **no
  identifier names**, so the representation is invariant under the
  identifier-renaming "laundering" that defeats textual similarity;
* :mod:`repro.structsim.wl` — a Weisfeiler-Lehman subtree kernel over
  those graphs (the classical graph-kernel analogue of the GNN embedding
  GNN4IP learns);
* :mod:`repro.structsim.detector` — a drop-in structural counterpart to
  :class:`repro.textsim.SimilarityIndex` for the copyright benchmark.
"""

from repro.structsim.graph import build_dataflow_graph
from repro.structsim.wl import wl_similarity, wl_histogram
from repro.structsim.detector import StructuralIndex, StructuralMatch

__all__ = [
    "build_dataflow_graph",
    "wl_similarity",
    "wl_histogram",
    "StructuralIndex",
    "StructuralMatch",
]
