"""Structural nearest-neighbour index for the copyright benchmark.

A drop-in counterpart to :class:`repro.textsim.SimilarityIndex` that
compares Weisfeiler-Lehman histograms of dataflow graphs instead of
character n-grams.  Unparseable texts (a model completion need not be
valid Verilog) vectorize to an empty histogram and match nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.errors import VerilogError
from repro.structsim.graph import build_dataflow_graph
from repro.structsim.wl import DEFAULT_ITERATIONS, wl_histogram, _cosine


@dataclass
class StructuralMatch:
    key: Hashable
    score: float


class StructuralIndex:
    """Max WL-similarity lookup against a corpus of Verilog texts."""

    def __init__(self, iterations: int = DEFAULT_ITERATIONS) -> None:
        self.iterations = iterations
        self._histograms: Dict[Hashable, Counter] = {}

    def _vectorize(self, text: str) -> Counter:
        try:
            graph = build_dataflow_graph(text)
        except (VerilogError, IndexError):
            return Counter()
        return wl_histogram(graph, self.iterations)

    def add(self, key: Hashable, text: str) -> None:
        if key in self._histograms:
            raise KeyError(f"duplicate key {key!r}")
        self._histograms[key] = self._vectorize(text)

    def __len__(self) -> int:
        return len(self._histograms)

    def best_match(self, text: str) -> Optional[StructuralMatch]:
        query = self._vectorize(text)
        if not query or not self._histograms:
            return None
        best_key = None
        best_score = -1.0
        for key, histogram in self._histograms.items():
            score = _cosine(query, histogram)
            if score > best_score:
                best_key, best_score = key, score
        return StructuralMatch(key=best_key, score=best_score)

    def score_against(self, key: Hashable, text: str) -> float:
        return _cosine(self._vectorize(text), self._histograms[key])
