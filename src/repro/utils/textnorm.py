"""Text normalization helpers shared by curation, prompts, and similarity.

The paper's copyright benchmark strips all comments from the copyrighted
files before prompting (Sec. III-A), then keeps the first 20% of the code
capped at 64 words.  These helpers implement those operations for Verilog
text without requiring a full parse (the inputs may be syntactically
broken, so the stripper is a small scanner that respects string literals).
"""

from __future__ import annotations

import re

_WS_RE = re.compile(r"\s+")

#: One left-to-right scan: string literals (kept verbatim, honouring
#: escapes, unterminated runs to end of input), line comments (removed),
#: and block comments, terminated or not (replaced by one space).  The
#: alternation order makes comment markers inside strings — and quotes
#: inside comments — inert, exactly like a character-by-character scanner.
_STRIP_RE = re.compile(
    r'"(?:\\.|[^"\\])*(?:"|\\?\Z)'
    r"|//[^\n]*"
    r"|/\*.*?\*/"
    r"|/\*.*\Z",
    re.DOTALL,
)


def _strip_repl(match: "re.Match") -> str:
    text = match.group()
    if text[0] == '"':
        return text
    if text[1] == "/":  # line comment
        return ""
    # Preserve a separator so tokens do not merge across block comments.
    return " "


def strip_comments(text: str) -> str:
    """Remove ``//`` line comments and ``/* */`` block comments.

    String literals are respected: comment markers inside double quotes are
    kept.  Unterminated block comments run to the end of input, matching
    compiler behaviour.
    """
    return _STRIP_RE.sub(_strip_repl, text)


def normalize_whitespace(text: str) -> str:
    """Collapse all whitespace runs to single spaces and trim the ends."""
    return _WS_RE.sub(" ", text).strip()


def word_count(text: str) -> int:
    """Number of whitespace-separated words."""
    return len(text.split())


def truncate_words(text: str, max_words: int) -> str:
    """Keep at most ``max_words`` whitespace-separated words."""
    if max_words <= 0:
        return ""
    words = text.split()
    if len(words) <= max_words:
        return text.strip()
    return " ".join(words[:max_words])


def leading_fraction(text: str, fraction: float) -> str:
    """Return the first ``fraction`` of ``text`` by character count."""
    if fraction <= 0:
        return ""
    if fraction >= 1:
        return text
    cut = max(1, int(len(text) * fraction))
    return text[:cut]


def dedent_code(text: str) -> str:
    """Remove the common leading indentation from non-empty lines."""
    lines = text.splitlines()
    indents = [
        len(line) - len(line.lstrip())
        for line in lines
        if line.strip()
    ]
    if not indents:
        return text
    pad = min(indents)
    if pad == 0:
        return text
    return "\n".join(
        line[pad:] if line.strip() else line for line in lines
    )
