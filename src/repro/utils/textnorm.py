"""Text normalization helpers shared by curation, prompts, and similarity.

The paper's copyright benchmark strips all comments from the copyrighted
files before prompting (Sec. III-A), then keeps the first 20% of the code
capped at 64 words.  These helpers implement those operations for Verilog
text without requiring a full parse (the inputs may be syntactically
broken, so the stripper is a small scanner that respects string literals).
"""

from __future__ import annotations

import re
from typing import List

_WS_RE = re.compile(r"\s+")


def strip_comments(text: str) -> str:
    """Remove ``//`` line comments and ``/* */`` block comments.

    String literals are respected: comment markers inside double quotes are
    kept.  Unterminated block comments run to the end of input, matching
    compiler behaviour.
    """
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == '"':
            # Copy the string literal verbatim, honouring escapes.
            out.append(ch)
            i += 1
            while i < n:
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == '"':
                    i += 1
                    break
                i += 1
            continue
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                i += 1
            i = min(i + 2, n)
            # Preserve a separator so tokens do not merge across comments.
            out.append(" ")
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def normalize_whitespace(text: str) -> str:
    """Collapse all whitespace runs to single spaces and trim the ends."""
    return _WS_RE.sub(" ", text).strip()


def word_count(text: str) -> int:
    """Number of whitespace-separated words."""
    return len(text.split())


def truncate_words(text: str, max_words: int) -> str:
    """Keep at most ``max_words`` whitespace-separated words."""
    if max_words <= 0:
        return ""
    words = text.split()
    if len(words) <= max_words:
        return text.strip()
    return " ".join(words[:max_words])


def leading_fraction(text: str, fraction: float) -> str:
    """Return the first ``fraction`` of ``text`` by character count."""
    if fraction <= 0:
        return ""
    if fraction >= 1:
        return text
    cut = max(1, int(len(text) * fraction))
    return text[:cut]


def dedent_code(text: str) -> str:
    """Remove the common leading indentation from non-empty lines."""
    lines = text.splitlines()
    indents = [
        len(line) - len(line.lstrip())
        for line in lines
        if line.strip()
    ]
    if not indents:
        return text
    pad = min(indents)
    if pad == 0:
        return text
    return "\n".join(
        line[pad:] if line.strip() else line for line in lines
    )
