"""Small statistics helpers used by the benchmark harnesses.

Figure 2 of the paper is a histogram over log-spaced character-count bins
(10^1 .. 10^8); :func:`log_bins` and :class:`Histogram` regenerate that
series for any corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


def log_bins(lo_exp: int = 1, hi_exp: int = 8, per_decade: int = 1) -> List[float]:
    """Return log-spaced bin edges from 10**lo_exp to 10**hi_exp."""
    if hi_exp <= lo_exp:
        raise ValueError("hi_exp must exceed lo_exp")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    steps = (hi_exp - lo_exp) * per_decade
    return [10 ** (lo_exp + i / per_decade) for i in range(steps + 1)]


@dataclass
class Histogram:
    """A fixed-bin histogram over scalar samples.

    Samples below the first edge go into an underflow bucket; samples at or
    above the last edge go into an overflow bucket.  Both are tracked so the
    bin counts always account for every sample.
    """

    edges: Sequence[float]
    counts: List[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise ValueError("need at least two bin edges")
        if list(self.edges) != sorted(self.edges):
            raise ValueError("bin edges must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.edges) - 1)
        if len(self.counts) != len(self.edges) - 1:
            raise ValueError("counts length must be len(edges) - 1")

    def add(self, value: float) -> None:
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value >= self.edges[-1]:
            self.overflow += 1
            return
        # Binary search for the bin.
        lo, hi = 0, len(self.edges) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if value >= self.edges[mid]:
                lo = mid
            else:
                hi = mid
        self.counts[lo] += 1

    def add_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_centers(self) -> List[float]:
        """Geometric centers, appropriate for log-spaced bins."""
        return [
            math.sqrt(self.edges[i] * self.edges[i + 1])
            for i in range(len(self.edges) - 1)
        ]

    def series(self) -> List[Tuple[float, int]]:
        """(bin center, count) pairs, the shape plotted in Figure 2."""
        return list(zip(self.bin_centers(), self.counts))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return min/max/mean/median/p90 of a non-empty sequence."""
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    ordered = sorted(values)
    n = len(ordered)

    def percentile(p: float) -> float:
        if n == 1:
            return float(ordered[0])
        rank = p * (n - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)

    return {
        "count": float(n),
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "mean": float(sum(ordered) / n),
        "median": percentile(0.5),
        "p90": percentile(0.9),
    }
