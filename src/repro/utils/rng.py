"""Deterministic random-number helpers.

Every stochastic component in the library (corpus generation, sampling,
MinHash permutations) takes an explicit seed so that experiments are
reproducible bit-for-bit.  ``derive_seed`` produces stable sub-seeds from a
parent seed and a string label, which keeps independent subsystems decoupled:
adding a new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a stable 64-bit sub-seed from ``parent`` and label values.

    The derivation hashes the parent seed together with the labels, so two
    different labels always get statistically independent streams while the
    mapping stays stable across runs and platforms.
    """
    digest = hashlib.sha256()
    digest.update(str(parent).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK_64


class DeterministicRNG:
    """A seeded random stream with convenience draws used across the library.

    Thin wrapper over :class:`random.Random` that adds weighted choice over
    dictionaries and stable sub-stream forking.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK_64
        self._rng = random.Random(self.seed)

    def fork(self, *labels: object) -> "DeterministicRNG":
        """Return an independent stream derived from this one."""
        return DeterministicRNG(derive_seed(self.seed, *labels))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def weighted_choice(self, weights: dict) -> object:
        """Choose a key from ``weights`` proportionally to its value."""
        if not weights:
            raise ValueError("cannot choose from an empty weight table")
        keys = list(weights.keys())
        vals = [float(weights[k]) for k in keys]
        total = sum(vals)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        pick = self._rng.random() * total
        acc = 0.0
        for key, val in zip(keys, vals):
            acc += val
            if pick < acc:
                return key
        return keys[-1]

    def maybe(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormal_int(
        self,
        median: float,
        sigma: float,
        lo: int = 1,
        hi: Optional[int] = None,
    ) -> int:
        """Draw a log-normally distributed integer, clamped to [lo, hi].

        Used for file sizes and repo sizes, which are heavy-tailed in real
        corpora (Figure 2 of the paper shows a log-scale length histogram).
        """
        import math

        value = int(round(math.exp(self._rng.gauss(math.log(median), sigma))))
        value = max(lo, value)
        if hi is not None:
            value = min(hi, value)
        return value
