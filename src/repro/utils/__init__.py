"""Shared utilities: deterministic RNG, text normalization, statistics."""

from repro.utils.rng import DeterministicRNG, derive_seed
from repro.utils.textnorm import (
    normalize_whitespace,
    strip_comments,
    truncate_words,
    word_count,
)
from repro.utils.stats import Histogram, log_bins, summarize

__all__ = [
    "DeterministicRNG",
    "derive_seed",
    "normalize_whitespace",
    "strip_comments",
    "truncate_words",
    "word_count",
    "Histogram",
    "log_bins",
    "summarize",
]
