"""Durable job records: an append-only JSONL ledger plus per-job state.

The service's source of truth is a *ledger*, not a mutable table: every
state transition appends one JSON line to ``<root>/ledger.jsonl``
(flushed and fsynced, so a line that returned from :meth:`JobStore.append`
survives a power cut).  The in-memory job table is always a pure replay
of the ledger — which is exactly how :meth:`JobStore.open` recovers
after a crash or restart: jobs that were ``running`` when the process
died are re-marked ``resumable`` (their engine-level progress lives in
the per-job :class:`~repro.engine.CheckpointStore`), and queued /
resumable jobs go back onto the run queue.

The job state machine::

    queued ──> running ──> done
                 │  ▲
                 │  └── resumable   (crash, retry, drain, restart)
                 ├──> failed        (retry budget exhausted, typed cause)
                 └──> cancelled     (client request)

Payloads and results are pickles under ``<root>/jobs/<job_id>/`` — the
ledger itself stays plain JSON so ``tools/jobctl.py tail`` and humans
can read it with no imports.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.engine.checkpoint import CheckpointStore
from repro.errors import ReproError

__all__ = [
    "ACTIVE_STATES",
    "Job",
    "JobStore",
    "STATES",
    "TERMINAL_STATES",
    "UnknownJobError",
]

STATES = ("queued", "running", "resumable", "done", "failed", "cancelled")
#: states that count against a client's quota (work not yet finished)
ACTIVE_STATES = frozenset(("queued", "running", "resumable"))
TERMINAL_STATES = frozenset(("done", "failed", "cancelled"))

#: transitions the ledger accepts; anything else is a programming error
_ALLOWED = {
    "queued": {"running", "cancelled"},
    "running": {"done", "failed", "resumable", "cancelled", "running"},
    "resumable": {"running", "cancelled", "failed"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}


class UnknownJobError(ReproError):
    """A job id that is not in the ledger."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")


@dataclass
class Job:
    """One job's current state (a replay of its ledger lines)."""

    job_id: str
    client: str
    kind: str
    state: str = "queued"
    attempts: int = 0
    executor: str = ""
    #: executors this job has permanently degraded away from
    degraded: List[str] = field(default_factory=list)
    error: str = ""
    detail: str = ""
    created_s: float = 0.0
    updated_s: float = 0.0
    result_summary: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "client": self.client,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "executor": self.executor,
            "degraded": list(self.degraded),
            "error": self.error,
            "detail": self.detail,
            "created_s": self.created_s,
            "updated_s": self.updated_s,
            "result_summary": dict(self.result_summary),
        }


class JobStore:
    """The on-disk half of the service: ledger, payloads, checkpoints.

    Thread-safe: the service's HTTP handlers and supervisor workers all
    append through one lock.  Reopening a root replays the ledger —
    :meth:`recover` then converts interrupted ``running`` jobs into
    ``resumable`` ones, appending the recovery as a ledger event so the
    history shows *that* the restart happened, not just its effect.
    """

    LEDGER = "ledger.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "jobs").mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._replay()

    # -- ledger ------------------------------------------------------------

    def _ledger_path(self) -> Path:
        return self.root / self.LEDGER

    def _replay(self) -> None:
        path = self._ledger_path()
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a crash mid-append
                self._apply(event)

    def _apply(self, event: Dict[str, Any]) -> None:
        self._seq = max(self._seq, int(event.get("seq", 0)))
        job_id = event["job"]
        job = self._jobs.get(job_id)
        if job is None:
            job = Job(
                job_id=job_id,
                client=event.get("client", "anon"),
                kind=event.get("kind", "eval"),
                created_s=event.get("ts", 0.0),
            )
            self._jobs[job_id] = job
        job.state = event.get("state", job.state)
        job.updated_s = event.get("ts", job.updated_s)
        job.detail = event.get("detail", "")
        for key in ("attempts", "executor", "error"):
            if key in event:
                setattr(job, key, event[key])
        if "degraded" in event:
            job.degraded = list(event["degraded"])
        if "result_summary" in event:
            job.result_summary = dict(event["result_summary"])

    def _append(self, event: Dict[str, Any]) -> None:
        # Append + flush + fsync: a transition that returned is durable.
        with open(self._ledger_path(), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- job lifecycle -----------------------------------------------------

    def create(self, client: str, kind: str, payload: Any) -> Job:
        """Persist a new queued job (payload pickled under its dir)."""
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
            job_dir = self.root / "jobs" / job_id
            job_dir.mkdir(parents=True, exist_ok=True)
            with open(job_dir / "payload.pkl", "wb") as handle:
                pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
            now = time.time()
            job = Job(
                job_id=job_id, client=client, kind=kind,
                created_s=now, updated_s=now,
            )
            self._jobs[job_id] = job
            self._append({
                "seq": self._seq, "ts": now, "job": job_id,
                "state": "queued", "client": client, "kind": kind,
            })
            return job

    def transition(
        self, job_id: str, state: str, detail: str = "", **fields: Any
    ) -> Job:
        """Move a job to ``state``, appending the event to the ledger.

        Extra ``fields`` (``attempts``, ``executor``, ``error``,
        ``degraded``, ``result_summary``) ride on the same event so the
        ledger line is the complete record of the transition.
        """
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if state not in _ALLOWED[job.state] and state != job.state:
                raise ValueError(
                    f"illegal transition {job.state!r} -> {state!r} "
                    f"for {job_id}"
                )
            self._seq += 1
            now = time.time()
            event: Dict[str, Any] = {
                "seq": self._seq, "ts": now, "job": job_id,
                "state": state, "detail": detail,
            }
            event.update(fields)
            self._apply(event)
            self._append(event)
            return job

    def recover(self) -> List[Job]:
        """Convert interrupted ``running`` jobs to ``resumable``.

        Called once when the service opens its store; returns every job
        that should be re-enqueued (recovered + queued + resumable).
        """
        requeue: List[Job] = []
        for job in self.jobs():
            if job.state == "running":
                self.transition(
                    job.job_id, "resumable",
                    detail="recovered after service restart",
                )
                requeue.append(job)
            elif job.state in ("queued", "resumable"):
                requeue.append(job)
        requeue.sort(key=lambda j: j.job_id)
        return requeue

    # -- lookups -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def active_count(self, client: str) -> int:
        """Jobs counting against ``client``'s quota."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.client == client and job.state in ACTIVE_STATES
            )

    # -- per-job artifacts -------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id

    def load_payload(self, job_id: str) -> Any:
        with open(self._job_dir(job_id) / "payload.pkl", "rb") as handle:
            return pickle.load(handle)

    def checkpoints(self, job_id: str) -> CheckpointStore:
        """The job's engine checkpoint store (resume substrate)."""
        return CheckpointStore(self._job_dir(job_id) / "ckpt")

    def save_result(self, job_id: str, result: Any) -> None:
        path = self._job_dir(job_id) / "result.pkl"
        tmp = path.with_suffix(".pkl.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def load_result(self, job_id: str) -> Any:
        path = self._job_dir(job_id) / "result.pkl"
        if not path.exists():
            return None
        with open(path, "rb") as handle:
            return pickle.load(handle)
