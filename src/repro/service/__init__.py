"""repro.service — the durable, self-healing evaluation service.

The always-on front half of the stack: a long-lived process that accepts
:class:`~repro.evalkit.EvalPlan` / :class:`~repro.curation.CurationConfig`
jobs over a loopback HTTP window, supervises them to completion across
worker crashes and its own restarts, and keeps the expensive shared
state (sim compile cache, golden traces, task problem sets) warm between
jobs.

Layout:

* :mod:`repro.service.jobs` — the append-only JSONL ledger, the job
  state machine, per-job payload/result/checkpoint storage;
* :mod:`repro.service.core` — :class:`EvalService`: supervisor threads,
  the :class:`~repro.engine.RetryPolicy`-governed retry loop, the
  executor degradation ladder, quotas, warm caches, drain;
* :mod:`repro.service.http` — the stdlib HTTP front-end;
* ``python -m repro.service`` — the entry point (SIGTERM drains).

Faults are first-class here: every recovery path — crashed attempt,
torn checkpoint, dead cluster worker, broken pool — is driven
deterministically in tests and CI through :mod:`repro.testing.faults`.
"""

from repro.service.core import (
    CurationJobSpec,
    EvalJobSpec,
    EvalService,
    ExecutorUnavailable,
    QuotaExceeded,
    ServiceConfig,
    WarmCache,
)
from repro.service.http import ServiceHTTPServer, serve
from repro.service.jobs import (
    ACTIVE_STATES,
    Job,
    JobStore,
    STATES,
    TERMINAL_STATES,
    UnknownJobError,
)

__all__ = [
    "ACTIVE_STATES",
    "CurationJobSpec",
    "EvalJobSpec",
    "EvalService",
    "ExecutorUnavailable",
    "Job",
    "JobStore",
    "QuotaExceeded",
    "STATES",
    "ServiceConfig",
    "ServiceHTTPServer",
    "TERMINAL_STATES",
    "UnknownJobError",
    "WarmCache",
    "serve",
]
