"""``python -m repro.service`` — run the evaluation service.

Binds the HTTP front-end on loopback, starts the supervisor, and runs
until SIGTERM/SIGINT — at which point it *drains*: running plans save
their progress at the next checkpoint boundary, land ``resumable`` in
the ledger, and the next ``python -m repro.service`` over the same
``--root`` picks them back up.

    PYTHONPATH=src python -m repro.service --root /tmp/svc --port 8787
    PYTHONPATH=src python tools/jobctl.py submit --port 8787 plan.pkl
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.service.core import EvalService, ServiceConfig
from repro.service.http import serve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the durable evaluation service.",
    )
    parser.add_argument(
        "--root", required=True,
        help="service state directory (ledger, jobs, warm sim cache)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="HTTP port on 127.0.0.1 (default: ephemeral, printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="supervisor threads (default: REPRO_SERVICE_WORKERS or 2)",
    )
    parser.add_argument(
        "--executors", default=None,
        help="degradation ladder, e.g. cluster,pool,serial "
             "(default: REPRO_SERVICE_EXECUTORS or pool,serial)",
    )
    args = parser.parse_args(argv)

    config = ServiceConfig.from_env()
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.executors is not None:
        overrides["executors"] = tuple(
            p.strip() for p in args.executors.split(",") if p.strip()
        )
    if overrides:
        config = ServiceConfig(
            **{**config.__dict__, **overrides}
        )

    service = EvalService(args.root, config)
    stop = threading.Event()

    def _drain(signum, frame):
        print("repro.service: draining (SIGTERM/SIGINT)", flush=True)
        service.drain()
        stop.set()

    # Handlers first: once the banner is out, a SIGTERM must drain, not
    # kill — callers treat the banner as "safe to signal".
    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    recovered = service.start()
    server = serve(service, port=args.port)
    print(
        f"repro.service on http://127.0.0.1:{server.port} "
        f"root={args.root} workers={config.workers} "
        f"executors={','.join(config.executors)} "
        f"recovered={len(recovered)}",
        flush=True,
    )

    stop.wait()
    # Give running plans their checkpoint-boundary exit, then stop the
    # listener; resumable jobs wait in the ledger for the next process.
    service.close()
    server.shutdown()
    states = {}
    for job in service.store.jobs():
        states[job.state] = states.get(job.state, 0) + 1
    print(f"repro.service: drained; jobs by state: {states}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
