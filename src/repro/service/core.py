"""The evaluation service: a supervised, durable job runner.

:class:`EvalService` is the long-lived front half of the stack: clients
submit :class:`EvalJobSpec` / :class:`CurationJobSpec` payloads and the
service supervises them to completion across worker crashes, broken
pools, torn checkpoints, and its own restarts.  The moving parts:

* **durability** — every job's state lives in the :class:`~.jobs.JobStore`
  ledger and its engine progress in a per-job
  :class:`~repro.engine.CheckpointStore`; :meth:`EvalService.start`
  replays the ledger and re-enqueues interrupted work;
* **supervision** — a crashed attempt moves the job to ``resumable`` and
  re-enqueues it under the service's :class:`~repro.engine.RetryPolicy`
  (the same class the cluster coordinator and process pool use); when
  the budget is spent the job is ``failed`` with the *typed* cause;
* **degradation** — executors are tried along a ladder (by default
  ``pool`` then ``serial``; a cluster deployment prepends ``cluster``).
  An executor that cannot be built is recorded on the job, counted as
  ``service.degraded``, and never charged against the retry budget —
  degrading is an infrastructure event, not a job failure;
* **warm state** — one process-wide sim-compile cache
  (:func:`repro.sim.cache.configure`) plus task interning by
  :meth:`~repro.evalkit.tasks.EvalTask.protocol_fingerprint`, so
  repeated submissions of the same protocol share golden traces and the
  copyright :class:`~repro.curation.SimilarityIndex` instead of
  rebuilding them per job (``service.warm.hits`` / ``.misses``);
* **drain** — :meth:`EvalService.drain` flips the stop hook every
  running plan polls at checkpoint boundaries; plans save what they have,
  raise :class:`~repro.errors.PlanInterrupted`, and land ``resumable``
  for the next service process to finish.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.engine import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    env_float,
    env_int,
    make_executor,
)
from repro.errors import ConfigError, PlanInterrupted, ReproError, TransientError
from repro.evalkit.plan import DEFAULT_CHECKPOINT_EVERY, EvalPlan
from repro.service.jobs import Job, JobStore
from repro.sim import cache as sim_cache
from repro.testing import faults

__all__ = [
    "CurationJobSpec",
    "EvalJobSpec",
    "EvalService",
    "ExecutorUnavailable",
    "QuotaExceeded",
    "ServiceConfig",
    "WarmCache",
]

_KNOWN_EXECUTORS = ("cluster", "pool", "process", "parallel", "serial", "auto")


class QuotaExceeded(ReproError):
    """A client is at its concurrent-job quota; resubmit later."""


class ExecutorUnavailable(TransientError):
    """An executor rung could not be built; the ladder degrades past it."""

    def __init__(self, name: str, cause: BaseException) -> None:
        super().__init__(
            f"executor {name!r} unavailable: "
            f"{type(cause).__name__}: {cause}"
        )
        self.executor = name
        self.cause = cause


@dataclass
class EvalJobSpec:
    """An :class:`~repro.evalkit.EvalPlan` to run under supervision."""

    plan: EvalPlan
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY

    kind = "eval"


@dataclass
class CurationJobSpec:
    """A curation config plus the scraped files to run it over.

    Curation runs are not checkpointed mid-stream (the pipeline is fast
    relative to eval), so a retried curation job restarts from scratch.
    """

    config: Any
    files: List[Any] = field(default_factory=list)

    kind = "curation"


@dataclass(frozen=True)
class ServiceConfig:
    """Service tuning, normally read from ``REPRO_SERVICE_*`` variables."""

    workers: int = 2
    quota: int = 8
    max_retries: int = 2
    job_timeout_s: float = 0.0
    executors: Tuple[str, ...] = ("pool", "serial")
    retry_base_delay_s: float = 0.05

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """Build a config from the environment (validated, typed errors).

        * ``REPRO_SERVICE_WORKERS`` — supervisor threads (>= 1);
        * ``REPRO_SERVICE_QUOTA`` — active jobs per client (>= 1);
        * ``REPRO_SERVICE_MAX_RETRIES`` — re-runs after a crashed
          attempt (>= 0; the total attempt budget is this plus one);
        * ``REPRO_SERVICE_JOB_TIMEOUT_S`` — per-attempt deadline in
          seconds (0 disables);
        * ``REPRO_SERVICE_EXECUTORS`` — comma-separated degradation
          ladder, e.g. ``cluster,pool,serial``.
        """
        raw = os.environ.get("REPRO_SERVICE_EXECUTORS", "")
        ladder = tuple(p.strip() for p in raw.split(",") if p.strip())
        for name in ladder:
            if name not in _KNOWN_EXECUTORS:
                raise ConfigError(
                    f"REPRO_SERVICE_EXECUTORS names unknown executor "
                    f"{name!r} (expected one of {', '.join(_KNOWN_EXECUTORS)})"
                )
        return cls(
            workers=env_int("REPRO_SERVICE_WORKERS", cls.workers, minimum=1),
            quota=env_int("REPRO_SERVICE_QUOTA", cls.quota, minimum=1),
            max_retries=env_int(
                "REPRO_SERVICE_MAX_RETRIES", cls.max_retries, minimum=0
            ),
            job_timeout_s=env_float(
                "REPRO_SERVICE_JOB_TIMEOUT_S", cls.job_timeout_s, minimum=0.0
            ),
            executors=ladder or cls.executors,
        )


class WarmCache:
    """Process-wide interning of eval tasks by protocol fingerprint.

    Tasks carry the expensive shared state of a run — problem sets,
    golden references, the copyright :class:`SimilarityIndex`.  Two jobs
    whose tasks have the same
    :meth:`~repro.evalkit.tasks.EvalTask.protocol_fingerprint` are, by
    construction, running the same protocol over the same problems, so
    the second job reuses the first job's task object (and everything
    already materialised inside it) instead of its own cold copy.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def intern_plan(self, plan: EvalPlan) -> EvalPlan:
        """Swap the plan's tasks for warm equivalents, in place."""
        for index, task in enumerate(plan.tasks):
            key = task.protocol_fingerprint()
            with self._lock:
                cached = self._tasks.get(key)
                if cached is None:
                    self._tasks[key] = task
            if cached is not None:
                plan.tasks[index] = cached
                obs.count("service.warm.hits")
            else:
                obs.count("service.warm.misses")
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._tasks)


class EvalService:
    """Accepts jobs, supervises them across faults, survives restarts."""

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig.from_env()
        self.store = JobStore(root)
        self.warm = WarmCache()
        self.retry = RetryPolicy(
            max_attempts=self.config.max_retries + 1,
            base_delay_s=self.config.retry_base_delay_s,
            jitter=0.0,
        )
        # One shared disk tier for sim compile artifacts: every job's
        # golden traces and elaborated designs accumulate here, so the
        # second job over a protocol starts hot.
        sim_cache.configure(str(self.store.root / "simcache"))
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._draining = threading.Event()
        self._cancelled: set = set()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> List[Job]:
        """Recover the ledger, re-enqueue interrupted work, start workers."""
        recovered = self.store.recover()
        for job in recovered:
            self._queue.put(job.job_id)
        self._started = True
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_main,
                name=f"service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return recovered

    def drain(self) -> None:
        """Stop accepting work; running plans save and go ``resumable``."""
        self._draining.set()

    def close(self, timeout_s: float = 30.0) -> None:
        """Drain and wait for the supervisor threads to finish."""
        self.drain()
        deadline = Deadline(timeout_s)
        for thread in self._threads:
            thread.join(deadline.remaining())
        self._threads = []

    def join(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every queued/running job reached a stable state.

        Stable means terminal *or* ``resumable`` while draining.  Returns
        False on timeout.
        """
        deadline = Deadline(timeout_s)
        poll = 0.02
        while not deadline.expired():
            pending = [
                job for job in self.store.jobs()
                if job.state in ("queued", "running")
                or (job.state == "resumable" and not self._draining.is_set())
            ]
            if not pending:
                return True
            threading.Event().wait(poll)
        return False

    # -- client surface ----------------------------------------------------

    def submit(
        self,
        payload: Union[EvalJobSpec, CurationJobSpec],
        client: str = "anon",
    ) -> Job:
        """Queue a job for ``client``; enforces the per-client quota."""
        if self._draining.is_set():
            raise ReproError("service is draining; not accepting jobs")
        if not isinstance(payload, (EvalJobSpec, CurationJobSpec)):
            raise ValueError(
                f"expected EvalJobSpec or CurationJobSpec, got "
                f"{type(payload).__name__}"
            )
        active = self.store.active_count(client)
        if active >= self.config.quota:
            obs.count("service.quota_rejected")
            raise QuotaExceeded(
                f"client {client!r} has {active} active jobs "
                f"(quota {self.config.quota}); wait for one to finish"
            )
        job = self.store.create(client, payload.kind, payload)
        obs.count("service.submitted")
        self._queue.put(job.job_id)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately if idle, at the next checkpoint if
        running (the stop hook turns the run into ``cancelled``)."""
        job = self.store.get(job_id)
        self._cancelled.add(job_id)
        if job.state in ("queued", "resumable"):
            return self.store.transition(
                job_id, "cancelled", detail="cancelled while idle"
            )
        return job

    def status(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def result(self, job_id: str) -> Any:
        return self.store.load_result(job_id)

    # -- the supervisor ----------------------------------------------------

    def _worker_main(self) -> None:
        while not self._draining.is_set():
            try:
                job_id = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            job = self.store.get(job_id)
            if job.state not in ("queued", "resumable"):
                continue  # cancelled or completed while queued
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        attempt = job.attempts + 1
        self.store.transition(
            job.job_id, "running", attempts=attempt,
            degraded=job.degraded,
            detail=f"attempt {attempt}",
        )
        deadline = (
            Deadline(self.config.job_timeout_s)
            if self.config.job_timeout_s > 0
            else Deadline(None)
        )
        try:
            with obs.span(
                "service.job", job=job.job_id, kind=job.kind, attempt=attempt
            ):
                summary = self._execute(job, deadline)
        except PlanInterrupted as exc:
            self._settle_interrupt(job, exc)
        except DeadlineExceeded as exc:
            # A timed-out attempt would time out again: fail it now with
            # the typed cause rather than burning the retry budget.
            self.store.transition(
                job.job_id, "failed",
                error=type(exc).__name__, detail=str(exc),
                attempts=attempt,
            )
            obs.count("service.failed")
        except Exception as exc:  # noqa: BLE001 — supervisor boundary
            self._settle_failure(job, attempt, exc)
        else:
            self.store.transition(
                job.job_id, "done",
                result_summary=summary, attempts=attempt,
                detail=f"finished on attempt {attempt}",
            )
            obs.count("service.done")

    def _settle_interrupt(self, job: Job, exc: PlanInterrupted) -> None:
        if job.job_id in self._cancelled:
            self.store.transition(
                job.job_id, "cancelled", detail=str(exc)
            )
            obs.count("service.cancelled")
        else:  # drained: progress is checkpointed, next process resumes
            self.store.transition(
                job.job_id, "resumable", detail=str(exc)
            )
            obs.count("service.drained")

    def _settle_failure(
        self, job: Job, attempt: int, exc: BaseException
    ) -> None:
        if self.retry.grant(attempt, exc):
            self.store.transition(
                job.job_id, "resumable",
                error=type(exc).__name__,
                detail=f"attempt {attempt} crashed: {exc}",
                attempts=attempt,
            )
            self.retry.sleep(attempt)
            if not self._draining.is_set():
                self._queue.put(job.job_id)
        else:
            self.store.transition(
                job.job_id, "failed",
                error=type(exc).__name__,
                detail=(
                    f"retry budget exhausted after {attempt} attempts: "
                    f"{exc}"
                ),
                attempts=attempt,
            )
            obs.count("service.failed")

    # -- execution ---------------------------------------------------------

    def _execute(self, job: Job, deadline: Deadline) -> Dict[str, Any]:
        payload = self.store.load_payload(job.job_id)
        if isinstance(payload, EvalJobSpec):
            return self._execute_eval(job, payload, deadline)
        if isinstance(payload, CurationJobSpec):
            return self._execute_curation(job, payload)
        raise ReproError(
            f"job {job.job_id} has unsupported payload "
            f"{type(payload).__name__}"
        )

    def _stop_hook(self, job_id: str, deadline: Deadline):
        def stop() -> bool:
            deadline.check(f"job {job_id}")
            return (
                self._draining.is_set() or job_id in self._cancelled
            )

        return stop

    def _build_executor(self, job: Job):
        """Walk the ladder past rungs this job has already degraded off.

        A rung that cannot be built (cluster spawn failure, pool start
        failure, an armed ``service.executor.<name>`` fault) is recorded
        on the job and skipped permanently *for this job* — degradation
        is one-way, so a flapping cluster cannot bounce a job between
        executors forever.  Running out of rungs is a real failure.
        """
        last: Optional[ExecutorUnavailable] = None
        for name in self.config.executors:
            if name in job.degraded:
                continue
            try:
                faults.fire(f"service.executor.{name}")
                return name, make_executor(name)
            except Exception as exc:  # noqa: BLE001 — rung boundary
                last = ExecutorUnavailable(name, exc)
                job.degraded.append(name)
                obs.count("service.degraded")
                obs.event(
                    "service.degraded", job=job.job_id,
                    executor=name, error=type(exc).__name__,
                )
                self.store.transition(
                    job.job_id, "running",
                    degraded=job.degraded,
                    detail=f"degraded off executor {name!r}: {exc}",
                )
        raise last if last is not None else ReproError(
            "service has an empty executor ladder"
        )

    def _execute_eval(
        self, job: Job, spec: EvalJobSpec, deadline: Deadline
    ) -> Dict[str, Any]:
        plan = self.warm.intern_plan(spec.plan)
        name, executor = self._build_executor(job)
        self.store.transition(job.job_id, "running", executor=name)
        try:
            run = plan.run(
                store=self.store.checkpoints(job.job_id),
                tag="job",
                checkpoint_every=spec.checkpoint_every,
                executor=executor,
                stop=self._stop_hook(job.job_id, deadline),
            )
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        self.store.save_result(job.job_id, run)
        passed = sum(1 for r in run.records if r.passed)
        return {
            "kind": "eval",
            "records": len(run.records),
            "passed": passed,
            "models": run.model_names,
            "tasks": run.task_ids,
        }

    def _execute_curation(
        self, job: Job, spec: CurationJobSpec
    ) -> Dict[str, Any]:
        # Late import: repro.curation pulls in engine stages; keep the
        # service importable without the curation extras resolved.
        from repro.curation.pipeline import CurationPipeline

        name, executor = self._build_executor(job)
        self.store.transition(job.job_id, "running", executor=name)
        try:
            pipeline = CurationPipeline(spec.config, executor=executor)
            dataset = pipeline.run(spec.files, name=f"svc-{job.job_id}")
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        self.store.save_result(job.job_id, dataset)
        return {
            "kind": "curation",
            "files_in": len(spec.files),
            "files_kept": len(dataset.files),
        }
