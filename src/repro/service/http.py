"""A stdlib HTTP front-end for :class:`~repro.service.EvalService`.

Deliberately minimal: :class:`http.server.ThreadingHTTPServer` bound to
``127.0.0.1``, pickled job payloads over POST, JSON job state out.  The
wire surface:

* ``POST /submit`` — body is a pickled :class:`~.core.EvalJobSpec` or
  :class:`~.core.CurationJobSpec`; the ``X-Repro-Client`` header names
  the quota bucket (default ``anon``).  Returns the queued job as JSON;
  ``429`` when the client is at quota;
* ``GET  /jobs`` — every job in the ledger;
* ``GET  /status/<job_id>`` — one job;
* ``GET  /result/<job_id>`` — the result summary as JSON, or the full
  pickled result object with ``?pickle=1`` (``404`` until the job is
  ``done``);
* ``POST /cancel/<job_id>`` — cancel (idle jobs immediately, running
  jobs at their next checkpoint boundary);
* ``POST /drain`` — stop accepting jobs and drain running plans to
  ``resumable``.

Pickle cuts both ways: it is what lets a client ship a real
:class:`~repro.evalkit.EvalPlan` (models and all) to the service, and it
is also why the server refuses to bind to anything but loopback — a
pickle endpoint on a shared interface is remote code execution.  The
cluster tier (:mod:`repro.engine.cluster`) is the multi-host story; this
front-end is one machine's job window.
"""

from __future__ import annotations

import json
import pickle
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.errors import ReproError
from repro.service.core import EvalService, QuotaExceeded
from repro.service.jobs import UnknownJobError

__all__ = ["ServiceHTTPServer", "serve"]

#: the only interface the pickle endpoint will bind to (see module doc)
LOOPBACK = "127.0.0.1"


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the ledger is the log; keep stderr quiet under test

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_pickle(self, obj: Any) -> None:
        body = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        head = parts[0] if parts else ""
        arg = parts[1] if len(parts) > 1 else None
        return head, arg, query

    @property
    def service(self) -> EvalService:
        return self.server.service

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        head, arg, query = self._route()
        try:
            if head == "jobs" and arg is None:
                self._send_json(
                    {"jobs": [j.to_dict() for j in self.service.store.jobs()]}
                )
            elif head == "status" and arg:
                self._send_json(self.service.status(arg).to_dict())
            elif head == "result" and arg:
                job = self.service.status(arg)
                if job.state != "done":
                    self._error(
                        404, f"job {arg} is {job.state}, not done"
                    )
                elif query == "pickle=1":
                    self._send_pickle(self.service.result(arg))
                else:
                    self._send_json(
                        {
                            "job_id": arg,
                            "result_summary": job.result_summary,
                        }
                    )
            else:
                self._error(404, f"no route for GET {self.path}")
        except UnknownJobError as exc:
            self._error(404, str(exc))

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        head, arg, _ = self._route()
        try:
            if head == "submit" and arg is None:
                length = int(self.headers.get("Content-Length", "0"))
                payload = pickle.loads(self.rfile.read(length))
                client = self.headers.get("X-Repro-Client", "anon")
                try:
                    job = self.service.submit(payload, client=client)
                except QuotaExceeded as exc:
                    self._error(429, str(exc))
                    return
                except ValueError as exc:
                    self._error(400, str(exc))
                    return
                except ReproError as exc:  # draining
                    self._error(503, str(exc))
                    return
                self._send_json(job.to_dict(), status=202)
            elif head == "cancel" and arg:
                self._send_json(self.service.cancel(arg).to_dict())
            elif head == "drain" and arg is None:
                self.service.drain()
                self._send_json({"draining": True})
            else:
                self._error(404, f"no route for POST {self.path}")
        except UnknownJobError as exc:
            self._error(404, str(exc))


class ServiceHTTPServer(ThreadingHTTPServer):
    """The service's listener; always loopback-only (pickle endpoint)."""

    daemon_threads = True

    def __init__(self, service: EvalService, port: int = 0) -> None:
        self.service = service
        super().__init__((LOOPBACK, port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(service: EvalService, port: int = 0) -> ServiceHTTPServer:
    """Start the HTTP front-end on a daemon thread; returns the server."""
    import threading

    server = ServiceHTTPServer(service, port=port)
    threading.Thread(
        target=server.serve_forever, name="service-http", daemon=True
    ).start()
    return server
