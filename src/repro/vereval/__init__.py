"""Mini-VerilogEval: functional-correctness benchmark (Sec. III-E2).

A held-out problem set in the VerilogEval-Human format: each problem is
an English description plus the module header; a model completes the
body; the completion passes when it is cycle-for-cycle equivalent to the
golden module under randomized stimulus in :mod:`repro.sim`.  Scores are
the unbiased pass@k estimator (Eq. 1) with the paper's protocol: n
samples per problem, temperatures {0.2, 0.8}, best result reported.
"""

from repro.vereval.passk import pass_at_k
from repro.vereval.problems import EvalProblem, build_problem_set
from repro.vereval.harness import (
    EvalConfig,
    EvalResult,
    ProblemOutcome,
    check_candidate_source,
    check_candidates_lockstep,
    check_completion,
    evaluate_model,
)
from repro.vereval.cegis import (
    CegisConfig,
    DistinguishingSet,
    DistinguishingVector,
    active_config as cegis_active_config,
    configure as cegis_configure,
    distinguishing_set,
    fingerprint_token as cegis_fingerprint_token,
)

__all__ = [
    "pass_at_k",
    "EvalProblem",
    "build_problem_set",
    "EvalConfig",
    "EvalResult",
    "ProblemOutcome",
    "check_candidate_source",
    "check_candidates_lockstep",
    "check_completion",
    "evaluate_model",
    "CegisConfig",
    "DistinguishingSet",
    "DistinguishingVector",
    "cegis_active_config",
    "cegis_configure",
    "cegis_fingerprint_token",
    "distinguishing_set",
]
