"""The unbiased pass@k estimator (Eq. 1 of the paper, from Codex).

    pass@k = E_problems[ 1 - C(n - c, k) / C(n, k) ]

where ``n`` is the number of samples per problem and ``c`` the number
that passed.  The product formulation below avoids factorial overflow.
"""

from __future__ import annotations

from typing import Sequence


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased single-problem estimate of pass@k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got n={n}")
    if not 0 <= c <= n:
        raise ValueError(f"pass count c={c} outside [0, n={n}]")
    if n - c < k:
        return 1.0
    prob_all_fail = 1.0
    for i in range(n - c + 1, n + 1):
        prob_all_fail *= 1.0 - k / i
    return 1.0 - prob_all_fail


def mean_pass_at_k(counts: Sequence[int], n: int, k: int) -> float:
    """Average pass@k over problems given per-problem pass counts."""
    if not counts:
        raise ValueError("no problems")
    return sum(pass_at_k(n, c, k) for c in counts) / len(counts)
