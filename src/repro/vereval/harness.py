"""Generation + functional-check harness producing pass@k scores.

Since the evalkit refactor this module plays two roles:

* it owns the *verdict* for one completion (:func:`check_completion`),
  backed by a per-problem cache of golden artifacts — the golden module
  is parsed, elaborated, stimulated, and simulated **once per problem**
  and every candidate is then checked against the recorded golden output
  trace, instead of re-deriving all of that per sample.  Golden and
  candidate simulation both run on the compiled simulator backend
  (:mod:`repro.sim.compile`) through the :class:`~repro.sim.Testbench`
  facade, with per-vector batched pokes; the interpreter backend is
  cycle-identical and kicks in automatically for candidates the compiler
  cannot statically lower;
* :func:`evaluate_model` is a thin facade compiling the paper's pass@k
  protocol into a :class:`repro.evalkit.EvalPlan`, which runs it through
  the streaming/parallel/checkpointable engine with numerically identical
  results (same :class:`DeterministicRNG` fork chain per sample).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ElaborationError, LexError, ParseError, SimulationError
from repro.llm.model import LanguageModel
from repro.sim import (
    EquivalenceResult,
    Testbench,
    elaborate,
    interface_signature,
    random_stimulus,
)
from repro.utils.rng import DeterministicRNG
from repro.verilog import parse_source_fast
from repro.vereval.passk import mean_pass_at_k
from repro.vereval.problems import EvalProblem


@dataclass
class EvalConfig:
    """Evaluation protocol parameters (paper defaults)."""

    n_samples: int = 10
    ks: Tuple[int, ...] = (1, 5, 10)
    temperatures: Tuple[float, ...] = (0.2, 0.8)
    max_new_tokens: int = 1024
    seed: int = 0


@dataclass
class ProblemOutcome:
    """Per-problem sample outcomes at one temperature."""

    problem_id: str
    passes: int
    samples: int
    failures: Dict[str, int] = field(default_factory=dict)  # reason -> count


@dataclass
class EvalResult:
    """pass@k per temperature plus the paper's best-of-temperatures row."""

    model_name: str
    per_temperature: Dict[float, Dict[int, float]] = field(default_factory=dict)
    outcomes: Dict[float, List[ProblemOutcome]] = field(default_factory=dict)

    def best(self) -> Dict[int, float]:
        """Best pass@k over temperatures (the paper reports the best run)."""
        best: Dict[int, float] = {}
        for scores in self.per_temperature.values():
            for k, value in scores.items():
                if value > best.get(k, -1.0):
                    best[k] = value
        return best

    def summary(self) -> str:
        parts = [f"{self.model_name}:"]
        for k, value in sorted(self.best().items()):
            parts.append(f"pass@{k}={value * 100:.1f}%")
        return " ".join(parts)


class _GoldenRef:
    """Per-problem golden artifacts, derived once and reused per sample.

    ``trace`` holds the golden module's output vector for every stimulus
    cycle under the exact reset/clock protocol of
    :func:`repro.sim.equivalence_check`; a candidate is then simulated
    alone and compared cycle-by-cycle against the trace, which is
    verdict-identical to lockstep simulation of both designs but does the
    golden half of the work once per problem instead of once per sample.
    """

    __slots__ = (
        "design", "signature", "stimulus", "trace", "error", "error_phase"
    )

    def __init__(self, problem: EvalProblem) -> None:
        self.design = elaborate(
            parse_source_fast(problem.golden_source), problem.module.name
        )
        self.signature = interface_signature(self.design)
        self.stimulus = random_stimulus(
            self.design, problem.stimulus_cycles, seed=problem.stimulus_seed
        )
        #: per-cycle golden outputs; cut short when the golden simulation
        #: itself errors, with the message and the phase it failed in
        #: recorded so candidates observe the exact verdict lockstep
        #: simulation would have produced
        self.trace: List[Dict[str, int]] = []
        self.error: Optional[str] = None
        self.error_phase: str = ""  # "" | "construct" | "reset" | "step"
        interface = problem.module.interface
        phase = "construct"
        try:
            bench = Testbench(
                self.design,
                clock=interface.clock,
                reset=interface.reset,
                reset_active_high=interface.reset_active_high,
            )
            phase = "reset"
            bench.apply_reset()
            phase = "step"
            for vector in self.stimulus:
                self.trace.append(bench.step(vector))
        except SimulationError as exc:
            self.error = str(exc)
            self.error_phase = phase


#: golden artifacts keyed by problem identity *and* content (including
#: the clock/reset protocol the trace was recorded under), so a problem
#: object rebuilt with the same data hits the cache while a redefined one
#: cannot alias a stale entry
_GOLDEN_CACHE: Dict[Tuple, _GoldenRef] = {}
_GOLDEN_CACHE_MAX = 256


def _golden_ref(problem: EvalProblem) -> _GoldenRef:
    interface = problem.module.interface
    key = (
        problem.problem_id,
        problem.module.name,
        problem.stimulus_cycles,
        problem.stimulus_seed,
        interface.clock,
        interface.reset,
        interface.reset_active_high,
        problem.golden_source,
    )
    ref = _GOLDEN_CACHE.get(key)
    if ref is None:
        if len(_GOLDEN_CACHE) >= _GOLDEN_CACHE_MAX:
            _GOLDEN_CACHE.clear()
        ref = _GoldenRef(problem)
        _GOLDEN_CACHE[key] = ref
    return ref


def _check_against_trace(
    ref: _GoldenRef, candidate, problem: EvalProblem
) -> EquivalenceResult:
    """Candidate-only lockstep against the cached golden trace.

    Mirrors :func:`repro.sim.equivalence_check` verdict-for-verdict: the
    interface gate, error precedence (the golden design steps first each
    cycle, so a golden simulation error at cycle ``c`` preempts both the
    candidate's step and the output comparison at ``c``), and the
    first-mismatch bookkeeping are all preserved.
    """
    if ref.signature != interface_signature(candidate):
        return EquivalenceResult(
            equivalent=False,
            error="interface mismatch",
            notes=[
                f"golden={ref.signature}",
                f"candidate={interface_signature(candidate)}",
            ],
        )
    # Lockstep order is: golden bench built, candidate bench built,
    # golden reset, candidate reset, then per cycle golden step before
    # candidate step.  Golden-failure checks interleave with the
    # candidate's own stages in exactly that order, so whichever design
    # failed first in lockstep supplies the error string here too.
    if ref.error_phase == "construct":
        return EquivalenceResult(equivalent=False, error=ref.error)
    interface = problem.module.interface
    try:
        bench = Testbench(
            candidate,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
        if ref.error_phase == "reset":
            return EquivalenceResult(equivalent=False, error=ref.error)
        bench.apply_reset()
        for cycle, vector in enumerate(ref.stimulus):
            if cycle >= len(ref.trace):
                return EquivalenceResult(equivalent=False, error=ref.error)
            expected_outputs = ref.trace[cycle]
            actual_outputs = bench.step(vector)
            for name, expected in expected_outputs.items():
                actual = actual_outputs.get(name)
                if actual != expected:
                    return EquivalenceResult(
                        equivalent=False,
                        cycles_run=cycle + 1,
                        first_mismatch_cycle=cycle,
                        mismatched_output=name,
                        expected=expected,
                        actual=actual,
                    )
    except SimulationError as exc:
        return EquivalenceResult(equivalent=False, error=str(exc))
    return EquivalenceResult(equivalent=True, cycles_run=len(ref.stimulus))


def check_candidate_source(
    problem: EvalProblem, candidate_source: str
) -> Tuple[bool, str]:
    """Functional verdict for a full candidate module source.

    Returns (passed, failure_reason); reason is "" on success.  Parsing
    failures are classified ``syntax`` only for actual lexer/parser
    errors; any other exception is a harness bug and surfaces as
    ``internal`` instead of being miscounted as a model failure.
    """
    try:
        candidate_file = parse_source_fast(candidate_source)
    except (LexError, ParseError):
        return False, "syntax"
    except Exception:
        return False, "internal"
    name = problem.module.name
    if candidate_file.module(name) is None:
        return False, "missing_module"
    try:
        ref = _golden_ref(problem)
        candidate = elaborate(candidate_file, name)
    except ElaborationError:
        return False, "elaboration"
    try:
        verdict = _check_against_trace(ref, candidate, problem)
    except SimulationError:
        return False, "simulation"
    if verdict.equivalent:
        return True, ""
    return False, verdict.error or "mismatch"


def check_completion(
    problem: EvalProblem, completion: str
) -> Tuple[bool, str]:
    """Functional verdict for one completion.

    The candidate module is prompt header + completion.  Returns
    (passed, failure_reason); reason is "" on success.
    """
    return check_candidate_source(problem, problem.prompt() + completion)


def evaluate_model(
    model: LanguageModel,
    problems: Sequence[EvalProblem],
    config: Optional[EvalConfig] = None,
    executor=None,
    store=None,
    checkpoint_tag: str = "passk",
) -> EvalResult:
    """Run the full pass@k protocol for one model.

    A facade over :class:`repro.evalkit.EvalPlan`: the protocol compiles
    into the engine's stage graph (prompt/seed expansion, generation,
    pooled functional checking, aggregation) and produces exactly the
    numbers the seed-era serial loop did.  ``executor`` selects the chunk
    executor (default serial); ``store`` enables checkpoint/resume under
    ``checkpoint_tag``.
    """
    from repro.evalkit import EvalPlan, PassAtKTask

    task = PassAtKTask(problems, config or EvalConfig())
    plan = EvalPlan([model], [task], executor=executor)
    run = plan.run(store=store, tag=checkpoint_tag)
    return run.result(model.name, task.task_id)
