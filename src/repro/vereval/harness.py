"""Generation + functional-check harness producing pass@k scores."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ElaborationError, SimulationError
from repro.llm.model import LanguageModel
from repro.llm.sampler import GenerationConfig
from repro.sim import elaborate, equivalence_check, random_stimulus
from repro.utils.rng import DeterministicRNG
from repro.verilog import parse_source
from repro.vereval.passk import mean_pass_at_k
from repro.vereval.problems import EvalProblem


@dataclass
class EvalConfig:
    """Evaluation protocol parameters (paper defaults)."""

    n_samples: int = 10
    ks: Tuple[int, ...] = (1, 5, 10)
    temperatures: Tuple[float, ...] = (0.2, 0.8)
    max_new_tokens: int = 1024
    seed: int = 0


@dataclass
class ProblemOutcome:
    """Per-problem sample outcomes at one temperature."""

    problem_id: str
    passes: int
    samples: int
    failures: Dict[str, int] = field(default_factory=dict)  # reason -> count


@dataclass
class EvalResult:
    """pass@k per temperature plus the paper's best-of-temperatures row."""

    model_name: str
    per_temperature: Dict[float, Dict[int, float]] = field(default_factory=dict)
    outcomes: Dict[float, List[ProblemOutcome]] = field(default_factory=dict)

    def best(self) -> Dict[int, float]:
        """Best pass@k over temperatures (the paper reports the best run)."""
        best: Dict[int, float] = {}
        for scores in self.per_temperature.values():
            for k, value in scores.items():
                if value > best.get(k, -1.0):
                    best[k] = value
        return best

    def summary(self) -> str:
        parts = [f"{self.model_name}:"]
        for k, value in sorted(self.best().items()):
            parts.append(f"pass@{k}={value * 100:.1f}%")
        return " ".join(parts)


def check_completion(
    problem: EvalProblem, completion: str
) -> Tuple[bool, str]:
    """Functional verdict for one completion.

    The candidate module is prompt header + completion.  Returns
    (passed, failure_reason); reason is "" on success.
    """
    candidate_source = problem.prompt() + completion
    try:
        candidate_file = parse_source(candidate_source)
    except Exception:
        return False, "syntax"
    name = problem.module.name
    if candidate_file.module(name) is None:
        return False, "missing_module"
    try:
        golden = elaborate(parse_source(problem.golden_source), name)
        candidate = elaborate(candidate_file, name)
    except ElaborationError:
        return False, "elaboration"
    interface = problem.module.interface
    stimulus = random_stimulus(
        golden, problem.stimulus_cycles, seed=problem.stimulus_seed
    )
    try:
        verdict = equivalence_check(
            golden,
            candidate,
            stimulus,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
    except SimulationError:
        return False, "simulation"
    if verdict.equivalent:
        return True, ""
    return False, verdict.error or "mismatch"


def evaluate_model(
    model: LanguageModel,
    problems: Sequence[EvalProblem],
    config: Optional[EvalConfig] = None,
) -> EvalResult:
    """Run the full pass@k protocol for one model."""
    config = config or EvalConfig()
    if config.n_samples < max(config.ks):
        raise ValueError("n_samples must be >= max k")
    result = EvalResult(model_name=model.name)
    for temperature in config.temperatures:
        outcomes: List[ProblemOutcome] = []
        for problem in problems:
            gen_config = GenerationConfig(
                temperature=temperature,
                max_new_tokens=config.max_new_tokens,
                stop_strings=("endmodule",),
            )
            passes = 0
            failures: Dict[str, int] = {}
            prompt = problem.prompt()
            for sample_index in range(config.n_samples):
                seed = DeterministicRNG(config.seed).fork(
                    model.name, temperature, problem.problem_id, sample_index
                ).seed
                completion = model.generate(prompt, gen_config, seed=seed)
                ok, reason = check_completion(problem, completion)
                if ok:
                    passes += 1
                else:
                    failures[reason] = failures.get(reason, 0) + 1
            outcomes.append(
                ProblemOutcome(
                    problem_id=problem.problem_id,
                    passes=passes,
                    samples=config.n_samples,
                    failures=failures,
                )
            )
        result.outcomes[temperature] = outcomes
        counts = [o.passes for o in outcomes]
        result.per_temperature[temperature] = {
            k: mean_pass_at_k(counts, config.n_samples, k) for k in config.ks
        }
    return result
