"""Generation + functional-check harness producing pass@k scores.

Since the evalkit refactor this module plays two roles:

* it owns the *verdict* for one completion (:func:`check_completion`),
  backed by a per-problem cache of golden artifacts — the golden module
  is parsed, elaborated, stimulated, and simulated **once per problem**
  and every candidate is then checked against the recorded golden output
  trace, instead of re-deriving all of that per sample.  Golden and
  candidate simulation both run on the compiled simulator backend
  (:mod:`repro.sim.compile`) through the :class:`~repro.sim.Testbench`
  facade, with per-vector batched pokes; the interpreter backend is
  cycle-identical and kicks in automatically for candidates the compiler
  cannot statically lower;
* it owns the *batched* verdict path (:func:`check_candidates_lockstep`):
  many candidates of one problem check at once — duplicates collapse,
  stateless combinational candidates take the all-vectors lane fast path
  (:func:`_check_all_vectors_batch`, one stimulus vector per lane), and
  sequential candidates with compatible compiled shapes simulate **in
  lockstep**, one lane per candidate under the shared golden stimulus
  (:mod:`repro.sim.batch` lockstep groups), with mismatching lanes
  retired at their first bad cycle.  Everything that cannot ride a lane
  replays on the scalar backends, so verdicts are candidate-for-candidate
  identical to the scalar loop;
* :func:`evaluate_model` is a thin facade compiling the paper's pass@k
  protocol into a :class:`repro.evalkit.EvalPlan`, which runs it through
  the streaming/parallel/checkpointable engine with numerically identical
  results (same :class:`DeterministicRNG` fork chain per sample).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ElaborationError, LexError, ParseError, SimulationError
from repro.llm.model import LanguageModel
from repro.sim import (
    EquivalenceResult,
    Testbench,
    elaborate,
    interface_signature,
    random_stimulus,
)
from repro.sim import cache as sim_cache
from repro.sim.retire import replay_stragglers
from repro.utils.rng import DeterministicRNG
from repro.verilog import parse_source_fast
from repro.vereval.passk import mean_pass_at_k
from repro.vereval.problems import EvalProblem

#: kill switch for the combinational all-vectors fast path (used by the
#: differential tests and benchmarks to time the scalar loop)
BATCH_CHECK_ENABLED = os.environ.get("REPRO_SIM_BATCH_CHECK", "1") != "0"

#: kill switch for lockstep (one lane per candidate) sequential checking
#: — same role as BATCH_CHECK_ENABLED, for the sequential fast path
LOCKSTEP_CHECK_ENABLED = (
    os.environ.get("REPRO_SIM_LOCKSTEP_CHECK", "1") != "0"
)

#: lockstep groups smaller than this run on the scalar path: a single
#: candidate gains nothing from lane form, it only pays numpy overhead
_MIN_LOCKSTEP_LANES = 2


@dataclass
class EvalConfig:
    """Evaluation protocol parameters (paper defaults)."""

    n_samples: int = 10
    ks: Tuple[int, ...] = (1, 5, 10)
    temperatures: Tuple[float, ...] = (0.2, 0.8)
    max_new_tokens: int = 1024
    seed: int = 0


@dataclass
class ProblemOutcome:
    """Per-problem sample outcomes at one temperature."""

    problem_id: str
    passes: int
    samples: int
    failures: Dict[str, int] = field(default_factory=dict)  # reason -> count


@dataclass
class EvalResult:
    """pass@k per temperature plus the paper's best-of-temperatures row."""

    model_name: str
    per_temperature: Dict[float, Dict[int, float]] = field(default_factory=dict)
    outcomes: Dict[float, List[ProblemOutcome]] = field(default_factory=dict)

    def best(self) -> Dict[int, float]:
        """Best pass@k over temperatures (the paper reports the best run)."""
        best: Dict[int, float] = {}
        for scores in self.per_temperature.values():
            for k, value in scores.items():
                if value > best.get(k, -1.0):
                    best[k] = value
        return best

    def summary(self) -> str:
        parts = [f"{self.model_name}:"]
        for k, value in sorted(self.best().items()):
            parts.append(f"pass@{k}={value * 100:.1f}%")
        return " ".join(parts)


class _GoldenRef:
    """Per-problem golden artifacts, derived once and reused per sample.

    ``trace`` holds one tuple of golden output values per stimulus cycle,
    aligned to the frozen ``output_names`` tuple, recorded under the
    exact reset/clock protocol of :func:`repro.sim.equivalence_check`; a
    candidate is then simulated alone and its output tuples compared
    against the trace, which is verdict-identical to lockstep simulation
    of both designs but does the golden half of the work once per problem
    instead of once per sample — and compares flat tuples instead of
    iterating per-cycle dicts in the innermost check loop.
    """

    __slots__ = (
        "design", "signature", "stimulus", "output_names", "trace",
        "error", "error_phase", "coverage", "full_cycles",
    )

    def __init__(self, problem: EvalProblem, cegis_config=None) -> None:
        self.design = elaborate(
            parse_source_fast(problem.golden_source), problem.module.name
        )
        self.signature = interface_signature(self.design)
        self.stimulus = random_stimulus(
            self.design, problem.stimulus_cycles, seed=problem.stimulus_seed
        )
        #: per-cycle golden output tuples; cut short when the golden
        #: simulation itself errors, with the message and the phase it
        #: failed in recorded so candidates observe the exact verdict
        #: lockstep simulation would have produced
        self.output_names: Tuple[str, ...] = ()
        self.trace: List[Tuple[int, ...]] = []
        self.error: Optional[str] = None
        self.error_phase: str = ""  # "" | "construct" | "reset" | "step"
        #: coverage summary dict when a CEGIS config measured this golden
        self.coverage: Optional[Dict] = None
        #: the configured stimulus depth, before any coverage truncation
        self.full_cycles: int = len(self.stimulus)
        interface = problem.module.interface
        cov = None
        truncate = False
        window = 0
        if cegis_config is not None and cegis_config.enabled:
            from repro.sim.coverage import CoverageTracker

            cov = CoverageTracker(
                self.design,
                exclude=(interface.clock, interface.reset),
            )
            truncate = cegis_config.coverage_stimulus
            window = cegis_config.coverage_window
        phase = "construct"
        try:
            bench = Testbench(
                self.design,
                clock=interface.clock,
                reset=interface.reset,
                reset_active_high=interface.reset_active_high,
            )
            self.output_names = tuple(bench.output_names)
            phase = "reset"
            bench.apply_reset()
            if cov is not None:
                cov.observe_sim(bench.sim)  # post-reset level baseline
            phase = "step"
            peek = bench.sim.peek
            for vector in self.stimulus:
                bench.drive(vector)
                bench.tick()
                self.trace.append(
                    tuple(peek(name) for name in self.output_names)
                )
                if cov is not None:
                    cov.observe_sim(bench.sim)
                    if truncate and cov.saturated(window):
                        break
        except SimulationError as exc:
            self.error = str(exc)
            self.error_phase = phase
        if cov is not None:
            self.coverage = cov.summary()
        # Coverage truncation shortens the recorded protocol itself, so
        # candidate checks replay only the measured depth.  Error-cut
        # traces keep the full stimulus: the trace-shorter-than-stimulus
        # shape is what encodes a golden-error verdict downstream.
        if self.error is None and len(self.trace) < len(self.stimulus):
            saved = len(self.stimulus) - len(self.trace)
            self.stimulus = self.stimulus[: len(self.trace)]
            obs.count("sim.coverage.saturated_runs")
            obs.count("sim.coverage.cycles_saved", saved)


#: golden artifacts keyed by problem identity *and* content (including
#: the clock/reset protocol the trace was recorded under), so a problem
#: object rebuilt with the same data hits the cache while a redefined one
#: cannot alias a stale entry; LRU-ordered so sweeps wider than the
#: capacity evict the coldest problem instead of thrashing to zero
_GOLDEN_CACHE: "OrderedDict[Tuple, _GoldenRef]" = OrderedDict()
_GOLDEN_CACHE_MAX = 256


def _golden_disk_key(problem: EvalProblem) -> Tuple[str, ...]:
    """Content-addressed disk key parts (identity-free: same source +
    protocol means the same artifact regardless of problem_id)."""
    interface = problem.module.interface
    return (
        problem.golden_source,
        problem.module.name,
        repr(
            (
                problem.stimulus_cycles,
                problem.stimulus_seed,
                interface.clock,
                interface.reset,
                interface.reset_active_high,
            )
        ),
    )


def _golden_ref(problem: EvalProblem) -> _GoldenRef:
    from repro.vereval import cegis as _cegis

    cfg = _cegis.active_config()
    # Measured/truncated golden artifacts carry extra state (and, when
    # truncating, a shorter protocol), so each stimulus mode gets its own
    # memory and disk identity; the legacy mode keeps the legacy keys.
    mode = cfg.golden_mode_token()
    interface = problem.module.interface
    key = (
        problem.problem_id,
        problem.module.name,
        problem.stimulus_cycles,
        problem.stimulus_seed,
        interface.clock,
        interface.reset,
        interface.reset_active_high,
        problem.golden_source,
        mode,
    )
    ref = _GOLDEN_CACHE.get(key)
    if ref is not None:
        _GOLDEN_CACHE.move_to_end(key)
        return ref
    disk_key = _golden_disk_key(problem)
    if mode:
        disk_key = disk_key + (mode,)
    ref = sim_cache.load("golden-ref", *disk_key)
    if not isinstance(ref, _GoldenRef):
        # Cold: the full parse→elaborate→stimulate→simulate pipeline runs
        # here, once per problem — the span names the problem so slow
        # goldens show up in trace reports.
        with obs.span(
            "vereval.golden", problem=problem.problem_id,
            cycles=problem.stimulus_cycles,
        ):
            ref = _GoldenRef(problem, cfg if cfg.enabled else None)
        sim_cache.store("golden-ref", ref, *disk_key)
    while len(_GOLDEN_CACHE) >= _GOLDEN_CACHE_MAX:
        _GOLDEN_CACHE.popitem(last=False)
    _GOLDEN_CACHE[key] = ref
    return ref


def _check_all_vectors_batch(
    ref: _GoldenRef, candidate, problem: EvalProblem
) -> Optional[EquivalenceResult]:
    """Combinational fast path: every stimulus vector rides its own lane.

    Valid only when the problem is unclocked and the candidate carries no
    sequential state at all (no edge blocks, no memory writes from the
    combinational region): outputs are then a pure function of the
    current inputs, so N per-cycle scalar steps collapse into one
    lane-parallel settle.  Returns None — caller takes the scalar loop —
    whenever the preconditions fail, the candidate does not lane-lower,
    or a lane diverges; the verdict (including first-mismatch
    bookkeeping) is identical either way: comparison and bookkeeping run
    on :class:`repro.sim.retire.RetireEngine` in all-vectors mode (lane
    = stimulus vector).  The lane backend follows the candidate's width
    census — bitslice for 1-bit-heavy designs, spill (exact python-int
    lanes) for >63-bit datapaths, int64 otherwise.
    """
    from repro.sim import default_backend

    interface = problem.module.interface
    if (
        not BATCH_CHECK_ENABLED
        # An explicitly pinned interpreter backend is a ground-truth run;
        # it must not silently route through the lane-parallel backend.
        or default_backend() == "interp"
        or interface.clock is not None
        or ref.error is not None
        or not ref.stimulus
        or not ref.output_names
    ):
        return None
    from repro.sim.batch import (
        batch_design,
        is_stateless_comb,
        make_batch_simulator,
    )
    from repro.sim.compile import UncompilableDesign
    from repro.sim.retire import RetireEngine, lane_vector

    n_lanes = len(ref.stimulus)
    try:
        bd = batch_design(candidate, n_lanes)
        if not is_stateless_comb(bd):
            return None
        engine = RetireEngine(ref.output_names, ref.trace, n_lanes)
        sim = make_batch_simulator(candidate, n_lanes=n_lanes)
        wide = bd.lane_dtype is object
        vector: Dict[str, object] = {}
        reset = interface.reset
        if reset is not None and any(
            s.name == reset for s in candidate.inputs
        ):
            # Net effect of apply_reset on a stateless design: the reset
            # input rests at its deasserted level.
            vector[reset] = 0 if interface.reset_active_high else 1
        for name in ref.stimulus[0]:
            vector[name] = lane_vector(
                [v[name] for v in ref.stimulus], wide
            )
        sim.poke_many(vector)
        actual = np.stack(
            [sim.peek_lanes(name) for name in ref.output_names], axis=1
        )
    except (UncompilableDesign, SimulationError, OverflowError, ValueError):
        # Eligible but the lane lowering/run failed: the caller replays
        # the candidate on the scalar per-cycle loop.
        obs.count("batch.fallback_scalar")
        return None
    obs.count("batch.allvec_checks")
    return engine.retire_all_vectors(actual)


def _check_against_trace(
    ref: _GoldenRef, candidate, problem: EvalProblem
) -> EquivalenceResult:
    """Candidate-only lockstep against the cached golden trace.

    Mirrors :func:`repro.sim.equivalence_check` verdict-for-verdict: the
    interface gate, error precedence (the golden design steps first each
    cycle, so a golden simulation error at cycle ``c`` preempts both the
    candidate's step and the output comparison at ``c``), and the
    first-mismatch bookkeeping are all preserved.  Combinational
    stateless candidates take the lane-parallel all-vectors fast path
    (:func:`_check_all_vectors_batch`) with the identical verdict.
    """
    if ref.signature != interface_signature(candidate):
        return EquivalenceResult(
            equivalent=False,
            error="interface mismatch",
            notes=[
                f"golden={ref.signature}",
                f"candidate={interface_signature(candidate)}",
            ],
        )
    # Lockstep order is: golden bench built, candidate bench built,
    # golden reset, candidate reset, then per cycle golden step before
    # candidate step.  Golden-failure checks interleave with the
    # candidate's own stages in exactly that order, so whichever design
    # failed first in lockstep supplies the error string here too.
    if ref.error_phase == "construct":
        return EquivalenceResult(equivalent=False, error=ref.error)
    fast = _check_all_vectors_batch(ref, candidate, problem)
    if fast is not None:
        return fast
    interface = problem.module.interface
    names = ref.output_names
    try:
        bench = Testbench(
            candidate,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
        if ref.error_phase == "reset":
            return EquivalenceResult(equivalent=False, error=ref.error)
        bench.apply_reset()
        peek = bench.sim.peek
        trace = ref.trace
        for cycle, vector in enumerate(ref.stimulus):
            if cycle >= len(trace):
                return EquivalenceResult(equivalent=False, error=ref.error)
            bench.drive(vector)
            bench.tick()
            # The interface gate guarantees the candidate presents every
            # golden output, so peeking by golden name order is total.
            actual = tuple(peek(name) for name in names)
            expected = trace[cycle]
            if actual != expected:
                for index, name in enumerate(names):
                    if actual[index] != expected[index]:
                        return EquivalenceResult(
                            equivalent=False,
                            cycles_run=cycle + 1,
                            first_mismatch_cycle=cycle,
                            mismatched_output=name,
                            expected=expected[index],
                            actual=actual[index],
                        )
    except SimulationError as exc:
        return EquivalenceResult(equivalent=False, error=str(exc))
    return EquivalenceResult(equivalent=True, cycles_run=len(ref.stimulus))


def _candidate_shape_digest(candidate, source: Optional[str]) -> str:
    """Lockstep grouping digest for one elaborated candidate.

    Backed by the :mod:`repro.sim.cache` disk tier when enabled (keyed
    by exact source text), so pool workers and later runs group without
    re-probing the compiler.  Raises
    :class:`~repro.sim.compile.UncompilableDesign` for candidates that
    cannot carry a lane — the caller routes those to the scalar path.
    """
    from repro.sim.batch import (
        UnbatchableDesign,
        configured_lane_representation,
        lockstep_shape_digest,
    )
    from repro.sim.compile import UncompilableDesign

    name = candidate.top
    # The same source groups differently under different lane pins (a
    # wide design is a spill lane under "auto" but unbatchable under a
    # forced "int64"), so the active pin is part of the cache key.
    rep = configured_lane_representation() or "auto"
    if source is not None:
        cached = sim_cache.get_shape(source, name, rep)
        if cached is not None:
            if cached == sim_cache.UNBATCHABLE_SHAPE:
                raise UnbatchableDesign(
                    "cached shape: not lane-parallelizable"
                )
            return cached
    try:
        digest = lockstep_shape_digest(candidate)
    except UncompilableDesign:
        if source is not None:
            sim_cache.put_shape(
                source, name, sim_cache.UNBATCHABLE_SHAPE, rep
            )
        raise
    if source is not None:
        sim_cache.put_shape(source, name, digest, rep)
    return digest


def _run_lockstep_group(
    ref: _GoldenRef, designs, problem: EvalProblem
) -> Optional[list]:
    """Check one shape-compatible candidate group in lockstep.

    Returns one :class:`EquivalenceResult` per design (aligned), with
    ``None`` entries for lanes whose verdict the lockstep run could not
    decide (a runtime :class:`~repro.sim.batch.BatchDivergence` or any
    other ``SimulationError`` that cannot be attributed to a single
    lane) — the caller replays those candidates on the scalar backends,
    which preserves per-candidate error classification.  Returns ``None``
    outright when the group does not lower at all.

    The protocol mirrors :func:`_check_against_trace` cycle for cycle,
    with verdict bookkeeping on :class:`repro.sim.retire.RetireEngine`
    in lockstep mode (lane = candidate): golden reset/step errors
    preempt with the recorded phase, mismatching lanes record the scalar
    first-mismatch bookkeeping (first cycle, first output in golden name
    order) and retire, and surviving lanes pass with the full cycle
    count.
    """
    from repro.sim.batch import build_lockstep_group
    from repro.sim.compile import UncompilableDesign
    from repro.sim.retire import RetireEngine
    from repro.sim.testbench import LockstepTestbench

    n_lanes = len(designs)
    engine = RetireEngine(ref.output_names, ref.trace, n_lanes)
    results = engine.results
    try:
        with obs.span("lockstep.compile", lanes=n_lanes):
            group = build_lockstep_group(designs)
    except UncompilableDesign:
        return None
    interface = problem.module.interface
    names = engine.names
    trace = ref.trace
    sim = None
    try:
        bench = LockstepTestbench(
            group,
            clock=interface.clock,
            reset=interface.reset,
            reset_active_high=interface.reset_active_high,
        )
        if ref.error_phase == "reset":
            return [
                EquivalenceResult(equivalent=False, error=ref.error)
            ] * n_lanes
        bench.apply_reset()
        sim = bench.sim
        for cycle, vector in enumerate(ref.stimulus):
            if cycle >= len(trace):
                # The golden itself died at this cycle: it preempts both
                # the candidate's step and the comparison, exactly as in
                # the scalar trace check.
                return engine.preempt(ref.error, sim.active)
            bench.drive(vector)
            bench.tick()
            if not names:
                continue
            actual = np.stack(
                [sim.peek_lanes(name) for name in names], axis=1
            )
            lane_bad = engine.retire_cycle(cycle, actual, sim.active)
            if lane_bad.any():
                obs.count("lockstep.lanes_retired", int(lane_bad.sum()))
                sim.retire_lanes(lane_bad)
                if not sim.active.any():
                    return results
        return engine.finish(len(ref.stimulus))
    except (SimulationError, OverflowError, ValueError):
        # Undecided lanes stay None: the caller replays them scalar.
        return results
    finally:
        if sim is not None:
            # Accumulated as plain ints in the hot settle loop; one
            # metrics write per group run (the retirement cycle series).
            obs.count("lockstep.settles", sim.stat_settles)
            obs.count("lockstep.settle_nodes_run", sim.stat_nodes_run)
            obs.count(
                "lockstep.settle_nodes_skipped", sim.stat_nodes_skipped
            )


def _check_many_against_trace(
    ref: _GoldenRef, candidates, problem: EvalProblem, sources=None
) -> list:
    """Verdicts for many candidates of one problem, lockstep when it pays.

    Returns one :class:`EquivalenceResult` per candidate, identical to
    calling :func:`_check_against_trace` per candidate (enforced by
    ``tests/test_sim_lockstep.py``).  Sequential candidates group by
    :func:`~repro.sim.batch.lockstep_shape_digest` and run one lane each
    under the shared golden stimulus; stragglers (unique shapes, designs
    that do not lane-lower, lanes the runner could not decide) take the
    scalar path.  A ``SimulationError`` escaping a scalar check maps to
    the ``"simulation"`` failure reason, as in
    :func:`check_candidate_source`.
    """
    from repro.sim import default_backend
    from repro.sim.compile import UncompilableDesign

    results: list = [None] * len(candidates)
    pool = []
    for index, candidate in enumerate(candidates):
        if ref.signature != interface_signature(candidate):
            results[index] = EquivalenceResult(
                equivalent=False,
                error="interface mismatch",
                notes=[
                    f"golden={ref.signature}",
                    f"candidate={interface_signature(candidate)}",
                ],
            )
        elif ref.error_phase == "construct":
            results[index] = EquivalenceResult(
                equivalent=False, error=ref.error
            )
        else:
            pool.append(index)

    interface = problem.module.interface
    scalar = list(pool)
    if (
        LOCKSTEP_CHECK_ENABLED
        and interface.clock is not None
        # An explicitly pinned interpreter backend is a ground-truth run.
        and default_backend() != "interp"
        and len(pool) >= _MIN_LOCKSTEP_LANES
    ):
        groups: dict = {}
        scalar = []
        for index in pool:
            try:
                digest = _candidate_shape_digest(
                    candidates[index],
                    sources[index] if sources is not None else None,
                )
            except UncompilableDesign:
                scalar.append(index)
                continue
            groups.setdefault(digest, []).append(index)
        for indices in groups.values():
            if len(indices) < _MIN_LOCKSTEP_LANES:
                scalar.extend(indices)
                continue
            obs.count("lockstep.groups")
            obs.observe("lockstep.group_lanes", len(indices))
            lane_results = _run_lockstep_group(
                ref, [candidates[i] for i in indices], problem
            )
            if lane_results is None:
                obs.count("lockstep.lanes_replayed", len(indices))
                scalar.extend(indices)
                continue
            for index, lane_result in zip(indices, lane_results):
                if lane_result is None:
                    obs.count("lockstep.lanes_replayed")
                    scalar.append(index)
                else:
                    results[index] = lane_result

    def _scalar_check(index: int) -> EquivalenceResult:
        obs.count("vereval.scalar_checks")
        return _check_against_trace(ref, candidates[index], problem)

    replay_stragglers(
        results,
        scalar,
        _scalar_check,
        lambda exc: EquivalenceResult(equivalent=False, error="simulation"),
    )
    return results


def check_candidates_lockstep(
    problem: EvalProblem, candidate_sources: Sequence[str]
) -> List[Tuple[bool, str]]:
    """Functional verdicts for many candidate sources of one problem.

    The batch counterpart of :func:`check_candidate_source`, guaranteed
    to return exactly what a per-candidate loop would — the same
    ``(passed, failure_reason)`` classification (``syntax`` /
    ``internal`` / ``missing_module`` / ``elaboration`` / ``simulation``
    / mismatch detail), in input order, duplicates included — while
    doing the work batched:

    * duplicate sources parse, elaborate, and check once;
    * sequential candidates with compatible compiled shapes
      (:func:`~repro.sim.batch.lockstep_shape_digest`) run **in
      lockstep**, one lane per candidate, under the shared golden
      stimulus, with mismatching lanes retired at their first bad cycle;
    * everything else — combinational problems (which keep the
      all-vectors fast path), unique shapes, designs that do not
      lane-lower, and lanes hit by a runtime
      :class:`~repro.sim.batch.BatchDivergence` — replays on the scalar
      backends under the usual fallback contract;
    * with the :mod:`repro.sim.cache` disk tier enabled, elaborated
      candidates and their grouping digests persist across workers/runs.

    Set ``REPRO_SIM_LOCKSTEP_CHECK=0`` to force the scalar path (the
    differential tests and benchmarks use this to time the baseline).
    """
    sources = list(candidate_sources)
    with obs.span(
        "vereval.problem",
        problem=problem.problem_id,
        candidates=len(sources),
    ):
        return _check_candidates_lockstep(problem, sources)


def _check_candidates_lockstep(
    problem: EvalProblem, sources: List[str]
) -> List[Tuple[bool, str]]:
    outcomes: List[Optional[Tuple[bool, str]]] = [None] * len(sources)
    name = problem.module.name

    positions: "OrderedDict[str, List[int]]" = OrderedDict()
    for index, source in enumerate(sources):
        positions.setdefault(source, []).append(index)

    def fill(indices: List[int], outcome: Tuple[bool, str]) -> None:
        for index in indices:
            outcomes[index] = outcome

    parsed = []  # (source, design-or-None, parsed-file-or-None, indices)
    for source, indices in positions.items():
        candidate = sim_cache.get_design(source, name)
        candidate_file = None
        if candidate is None:
            try:
                candidate_file = parse_source_fast(source)
            except (LexError, ParseError):
                fill(indices, (False, "syntax"))
                continue
            except Exception:
                fill(indices, (False, "internal"))
                continue
            if candidate_file.module(name) is None:
                fill(indices, (False, "missing_module"))
                continue
        parsed.append((source, candidate, candidate_file, indices))

    if parsed:
        try:
            ref = _golden_ref(problem)
        except ElaborationError:
            for _, _, _, indices in parsed:
                fill(indices, (False, "elaboration"))
            parsed = []
    checkable = []  # (source, design, indices)
    for source, candidate, candidate_file, indices in parsed:
        if candidate is None:
            try:
                candidate = elaborate(candidate_file, name)
            except ElaborationError:
                fill(indices, (False, "elaboration"))
                continue
            sim_cache.put_design(source, name, candidate)
        checkable.append((source, candidate, indices))
    if checkable:
        from repro.vereval import cegis as _cegis

        cfg = _cegis.active_config()
        designs = [candidate for _, candidate, _ in checkable]
        srcs = [source for source, _, _ in checkable]
        if cfg.enabled:
            # Adversarial checking: distinguishing-set pre-check, the
            # legacy full check for survivors, falsification search for
            # passers — a strict refinement of the plain call below.
            verdicts = _cegis.check_designs(
                ref, designs, problem, sources=srcs, config=cfg
            )
        else:
            verdicts = _check_many_against_trace(
                ref, designs, problem, sources=srcs
            )
        for (_, _, indices), verdict in zip(checkable, verdicts):
            if verdict.equivalent:
                fill(indices, (True, ""))
            else:
                fill(indices, (False, verdict.error or "mismatch"))
    return outcomes  # type: ignore[return-value]


def check_candidate_source(
    problem: EvalProblem, candidate_source: str
) -> Tuple[bool, str]:
    """Functional verdict for a full candidate module source.

    Returns (passed, failure_reason); reason is "" on success.  Parsing
    failures are classified ``syntax`` only for actual lexer/parser
    errors; any other exception is a harness bug and surfaces as
    ``internal`` instead of being miscounted as a model failure.  When
    the :mod:`repro.sim.cache` disk tier is enabled, successfully
    elaborated candidates are persisted by source hash, so duplicate
    completions in other pool workers (and later runs) skip
    lex/parse/elaborate entirely — a cache hit implies the source parsed
    and the module existed, so the verdict classification is unchanged.
    """
    name = problem.module.name
    candidate = sim_cache.get_design(candidate_source, name)
    candidate_file = None
    if candidate is None:
        try:
            candidate_file = parse_source_fast(candidate_source)
        except (LexError, ParseError):
            return False, "syntax"
        except Exception:
            return False, "internal"
        if candidate_file.module(name) is None:
            return False, "missing_module"
    try:
        ref = _golden_ref(problem)
        if candidate is None:
            candidate = elaborate(candidate_file, name)
            sim_cache.put_design(candidate_source, name, candidate)
    except ElaborationError:
        return False, "elaboration"
    try:
        from repro.vereval import cegis as _cegis

        cfg = _cegis.active_config()
        if cfg.enabled:
            verdict = _cegis.check_designs(
                ref, [candidate], problem,
                sources=[candidate_source], config=cfg,
            )[0]
        else:
            verdict = _check_against_trace(ref, candidate, problem)
    except SimulationError:
        return False, "simulation"
    if verdict.equivalent:
        return True, ""
    return False, verdict.error or "mismatch"


def check_completion(
    problem: EvalProblem, completion: str
) -> Tuple[bool, str]:
    """Functional verdict for one completion.

    The candidate module is prompt header + completion.  Returns
    (passed, failure_reason); reason is "" on success.
    """
    return check_candidate_source(problem, problem.prompt() + completion)


def evaluate_model(
    model: LanguageModel,
    problems: Sequence[EvalProblem],
    config: Optional[EvalConfig] = None,
    executor=None,
    store=None,
    checkpoint_tag: str = "passk",
) -> EvalResult:
    """Run the full pass@k protocol for one model.

    A facade over :class:`repro.evalkit.EvalPlan`: the protocol compiles
    into the engine's stage graph (prompt/seed expansion, generation,
    pooled functional checking, aggregation) and produces exactly the
    numbers the seed-era serial loop did.  ``executor`` selects the chunk
    executor (default serial); ``store`` enables checkpoint/resume under
    ``checkpoint_tag``.
    """
    from repro.evalkit import EvalPlan, PassAtKTask

    task = PassAtKTask(problems, config or EvalConfig())
    plan = EvalPlan([model], [task], executor=executor)
    run = plan.run(store=store, tag=checkpoint_tag)
    return run.result(model.name, task.task_id)
