"""Counterexample-guided checking for the pass@k harness.

Fixed-depth random stimulus is one scenario; this module makes checking
*adversarial* in the CEGIS (counterexample-guided inductive synthesis)
style: instead of hoping a random seed distinguishes a wrong candidate
from the golden, the checker maintains a per-problem
**distinguishing-input set** — stimulus episodes that have separated
some past candidate from the golden — and *searches* for a new
distinguishing vector when a candidate survives everything known.  Per
candidate, :func:`check_designs` runs three ordered stages:

1. **set pre-check** — every candidate replays the persisted
   distinguishing vectors first.  Entries are short (each is minimized
   to the first divergent cycle when minted) so a kill here costs a few
   cycles instead of a full-depth check, and the replay rides the exact
   lockstep machinery of the legacy checker
   (:func:`repro.vereval.harness._check_many_against_trace` over an
   entry-shaped golden ref), lanes, retirement, and all;
2. **legacy full check** — survivors run the unmodified golden-trace
   check, verbatim.  This stage is what makes the verdict a **strict
   refinement**: any candidate the old checker fails still fails here,
   candidate-for-candidate, because the old checker *is* this stage and
   the stages around it can only add kills;
3. **falsification search** — candidates that pass the full check are
   attacked: boundary episodes (held-max, walking ones, alternating),
   mutations of the base stimulus, and fresh random episodes sweep
   lane-parallel over :func:`repro.sim.sweep_random_stimulus` against
   the compiled golden, and the first divergent lane is minimized to
   its first bad cycle, **verified through the scalar checker**, and
   appended to the set — so the next near-miss of the same kind dies in
   stage 1 at lockstep price.  Searches that come up clear are
   memoized (in-process and via a ``cegis-clear`` disk marker), so
   correct candidates pay the search once.

The set persists through :mod:`repro.sim.cache` next to the golden
artifacts, keyed by golden source + module + testbench protocol, with
merge-on-save so concurrent pool workers union their counterexamples
instead of clobbering them.  The canonical payload is built from plain
tuples (sorted name/value pairs) so its pickled bytes are stable across
:data:`~repro.sim.cache.BACKEND_VERSION` bumps — enforced by the
hypothesis suite in ``tests/test_cegis.py``.

Everything is gated behind ``REPRO_SIM_CEGIS=1`` (default off: the
legacy checker runs byte-identically) and the active configuration is
part of the cluster plan fingerprint
(:func:`repro.engine.cluster.protocol.plan_fingerprint` via
:func:`fingerprint_token`), so a worker with a different CEGIS
configuration is rejected at handshake instead of silently mixing
verdict semantics.  Stimulus-depth measurement (toggle/level coverage
with saturation, :mod:`repro.sim.coverage`) is configured here too:
``coverage_stimulus`` opts golden-stimulus truncation in — off by
default because truncation trades the formal refinement guarantee for
measured-equivalent verdicts at lower depth (the bench demonstrates the
verdicts stay identical on the families it enables it for).

Counters (:mod:`repro.obs`): ``cegis.checks``, ``cegis.set_kills``,
``cegis.set_size``, ``cegis.searches``, ``cegis.search_found``,
``cegis.search_clear``, ``cegis.search_skipped``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.policy import env_int
from repro.errors import SimulationError
from repro.sim import cache as sim_cache
from repro.sim.testbench import (
    EquivalenceResult,
    StimulusVector,
    sweep_random_stimulus,
)
from repro.utils.rng import DeterministicRNG
from repro.vereval.problems import EvalProblem

__all__ = [
    "CegisConfig",
    "DistinguishingVector",
    "DistinguishingSet",
    "configure",
    "active_config",
    "fingerprint_token",
    "check_designs",
    "distinguishing_set",
    "encode_set",
    "decode_set",
    "set_bytes",
]

ENV_ENABLED = "REPRO_SIM_CEGIS"
ENV_MAX_SET = "REPRO_SIM_CEGIS_MAX_SET"
ENV_ROUNDS = "REPRO_SIM_CEGIS_ROUNDS"
ENV_LANES = "REPRO_SIM_CEGIS_LANES"
ENV_CYCLES = "REPRO_SIM_CEGIS_CYCLES"
ENV_COVERAGE_WINDOW = "REPRO_SIM_COVERAGE_WINDOW"
ENV_COVERAGE_STIMULUS = "REPRO_SIM_COVERAGE_STIMULUS"

#: names never driven by generated stimulus (mirrors
#: :func:`repro.sim.random_stimulus`); the problem's own clock/reset are
#: excluded on top of these at episode-build time
_STIMULUS_EXCLUDE = ("clk", "rst", "rst_n", "reset", "resetn")


@dataclass(frozen=True)
class CegisConfig:
    """Resolved CEGIS + coverage configuration (one frozen value).

    ``search_cycles=0`` means "use the problem's own stimulus depth" for
    falsification episodes.  ``coverage_stimulus`` additionally truncates
    golden-stimulus recording at coverage saturation (see
    :class:`repro.sim.coverage.CoverageTracker`); it is a separate knob
    because truncation is the one part of CEGIS that is not a formal
    strict refinement.
    """

    enabled: bool = False
    max_set: int = 32
    search_rounds: int = 3
    search_lanes: int = 16
    search_cycles: int = 0
    coverage_window: int = 16
    coverage_stimulus: bool = False

    def fingerprint_token(self) -> str:
        """Compact identity string folded into the plan fingerprint."""
        if not self.enabled:
            return "off"
        return (
            f"on:set{self.max_set}:r{self.search_rounds}"
            f":l{self.search_lanes}:c{self.search_cycles}"
            f":w{self.coverage_window}:cov{int(self.coverage_stimulus)}"
        )

    def golden_mode_token(self) -> str:
        """Golden-artifact cache-key part for the stimulus mode.

        Truncated, measured, and legacy golden artifacts must never
        alias one cache entry; the empty token keeps the legacy key
        shape when CEGIS is off.
        """
        if not self.enabled:
            return ""
        if self.coverage_stimulus:
            return f"cov-trunc:{self.coverage_window}"
        return f"cov-measure:{self.coverage_window}"


_DISABLED = CegisConfig()

#: process-wide override; None defers to the environment
_configured: Optional[CegisConfig] = None


def configure(config: Optional[CegisConfig]) -> Optional[CegisConfig]:
    """Set the process-wide config; returns the previous override.

    ``None`` defers to the environment again.  Evaluation stages call
    this in pool workers so the coordinator's resolved configuration
    survives executor start methods that do not inherit the
    environment (:class:`repro.evalkit.stages.CheckStage`).
    """
    global _configured
    previous = _configured
    _configured = config
    return previous


def active_config() -> CegisConfig:
    """The configuration in force: the override, else the environment."""
    if _configured is not None:
        return _configured
    if os.environ.get(ENV_ENABLED, "0") in ("", "0"):
        return _DISABLED
    return CegisConfig(
        enabled=True,
        max_set=env_int(ENV_MAX_SET, 32, minimum=1),
        search_rounds=env_int(ENV_ROUNDS, 3, minimum=0),
        search_lanes=env_int(ENV_LANES, 16, minimum=1),
        search_cycles=env_int(ENV_CYCLES, 0, minimum=0),
        coverage_window=env_int(ENV_COVERAGE_WINDOW, 16, minimum=1),
        coverage_stimulus=(
            os.environ.get(ENV_COVERAGE_STIMULUS, "0") not in ("", "0")
        ),
    )


def fingerprint_token() -> str:
    """The active config's token (the cluster handshake calls this)."""
    return active_config().fingerprint_token()


# -- the distinguishing-input set --------------------------------------------


@dataclass(frozen=True)
class DistinguishingVector:
    """One stimulus episode known to separate some candidate from golden.

    ``stimulus`` is canonical — per-cycle tuples of sorted
    ``(input, value)`` pairs — so equality, digests, and the persisted
    payload are independent of dict ordering; ``trace`` is the golden's
    per-cycle output tuples under that stimulus, aligned to
    ``output_names``, recorded under the problem's standard testbench
    protocol (reset, then drive/tick per cycle).
    """

    stimulus: Tuple[Tuple[Tuple[str, int], ...], ...]
    output_names: Tuple[str, ...]
    trace: Tuple[Tuple[int, ...], ...]
    origin: str = ""

    @classmethod
    def from_run(
        cls,
        vectors: Sequence[StimulusVector],
        output_names: Sequence[str],
        trace: Sequence[Sequence[int]],
        origin: str = "",
    ) -> "DistinguishingVector":
        return cls(
            stimulus=tuple(
                tuple(sorted((str(k), int(v)) for k, v in vector.items()))
                for vector in vectors
            ),
            output_names=tuple(str(name) for name in output_names),
            trace=tuple(tuple(int(v) for v in row) for row in trace),
            origin=str(origin),
        )

    def vectors(self) -> List[StimulusVector]:
        """The episode as drivable per-cycle input dicts."""
        return [dict(cycle) for cycle in self.stimulus]

    def digest(self) -> str:
        """Content digest (the set's dedup key; origin excluded)."""
        blob = repr((self.stimulus, self.output_names, self.trace))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    @property
    def cycles(self) -> int:
        return len(self.stimulus)


class DistinguishingSet:
    """An ordered, digest-deduplicated set of distinguishing vectors."""

    def __init__(
        self, entries: Iterable[DistinguishingVector] = ()
    ) -> None:
        self.entries: List[DistinguishingVector] = []
        self._digests: set = set()
        for entry in entries:
            self.add(entry)

    def add(
        self, entry: DistinguishingVector, max_set: Optional[int] = None
    ) -> bool:
        """Append ``entry`` unless already present or the set is full."""
        digest = entry.digest()
        if digest in self._digests:
            return False
        if max_set is not None and len(self.entries) >= max_set:
            obs.count("cegis.set_full")
            return False
        self.entries.append(entry)
        self._digests.add(digest)
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


_PAYLOAD_TAG = "repro-cegis-set"
_PAYLOAD_VERSION = 1


def encode_set(ds: DistinguishingSet) -> tuple:
    """Canonical plain-tuple payload (what :mod:`repro.sim.cache` stores)."""
    return (
        _PAYLOAD_TAG,
        _PAYLOAD_VERSION,
        tuple(
            (entry.stimulus, entry.output_names, entry.trace, entry.origin)
            for entry in ds.entries
        ),
    )


def decode_set(payload: object) -> Optional[DistinguishingSet]:
    """Rebuild a set from a payload; None when the shape is foreign."""
    if (
        not isinstance(payload, tuple)
        or len(payload) != 3
        or payload[0] != _PAYLOAD_TAG
        or payload[1] != _PAYLOAD_VERSION
    ):
        return None
    try:
        return DistinguishingSet(
            DistinguishingVector(
                stimulus=stimulus,
                output_names=output_names,
                trace=trace,
                origin=origin,
            )
            for stimulus, output_names, trace, origin in payload[2]
        )
    except (TypeError, ValueError):
        return None


def set_bytes(ds: DistinguishingSet) -> bytes:
    """Deterministic serialized form of the canonical payload.

    Pinned to pickle protocol 4 so the bytes depend only on the set's
    content — not on the running interpreter's default protocol or on
    :data:`~repro.sim.cache.BACKEND_VERSION` (which lives in the cache
    *envelope*, outside this payload).
    """
    return pickle.dumps(encode_set(ds), protocol=4)


def _set_key(problem: EvalProblem) -> Tuple[str, ...]:
    """Persistence key: golden identity + testbench protocol.

    Deliberately excludes the base stimulus depth/seed and the coverage
    mode — a distinguishing vector is self-contained (it carries its own
    stimulus and golden trace), so one set serves every stimulus
    configuration of the same golden design.
    """
    interface = problem.module.interface
    return (
        problem.golden_source,
        problem.module.name,
        repr(
            (
                interface.clock,
                interface.reset,
                interface.reset_active_high,
            )
        ),
    )


#: in-process set registry (write-through to the sim_cache disk tier)
_SET_CACHE: "OrderedDict[Tuple[str, ...], DistinguishingSet]" = OrderedDict()
_SET_CACHE_MAX = 256


def distinguishing_set(problem: EvalProblem) -> DistinguishingSet:
    """The problem's live distinguishing set (loaded/created on demand)."""
    key = _set_key(problem)
    ds = _SET_CACHE.get(key)
    if ds is not None:
        _SET_CACHE.move_to_end(key)
        return ds
    ds = decode_set(sim_cache.load("cegis-set", *key))
    if ds is None:
        ds = DistinguishingSet()
    while len(_SET_CACHE) >= _SET_CACHE_MAX:
        _SET_CACHE.popitem(last=False)
    _SET_CACHE[key] = ds
    return ds


def _save_set(problem: EvalProblem, ds: DistinguishingSet) -> None:
    """Persist the set, merging entries another worker stored meanwhile."""
    key = _set_key(problem)
    existing = decode_set(sim_cache.load("cegis-set", *key))
    if existing is not None:
        for entry in existing:
            ds.add(entry)
    sim_cache.store("cegis-set", encode_set(ds), *key)


# -- replaying entries through the legacy checker ----------------------------


class _EntryRef:
    """A distinguishing vector dressed as a golden ref.

    Duck-types exactly the fields
    :func:`repro.vereval.harness._check_against_trace` and
    :func:`~repro.vereval.harness._check_many_against_trace` read, so
    entry replay reuses the legacy machinery unchanged — signature gate,
    combinational all-vectors fast path, lockstep lanes, retirement,
    scalar straggler replay.
    """

    __slots__ = (
        "design", "signature", "stimulus", "output_names", "trace",
        "error", "error_phase",
    )

    def __init__(self, golden_ref, entry: DistinguishingVector) -> None:
        self.design = golden_ref.design
        self.signature = golden_ref.signature
        self.stimulus = entry.vectors()
        self.output_names = entry.output_names
        self.trace = [tuple(row) for row in entry.trace]
        self.error: Optional[str] = None
        self.error_phase = ""


def _check_entry(
    golden_ref, entry: DistinguishingVector, candidate, problem: EvalProblem
) -> EquivalenceResult:
    """Scalar replay of one candidate against one entry."""
    from repro.vereval import harness

    try:
        return harness._check_against_trace(
            _EntryRef(golden_ref, entry), candidate, problem
        )
    except SimulationError as exc:
        return EquivalenceResult(equivalent=False, error=str(exc))


# -- falsification search ----------------------------------------------------


def _search_spans(ref, problem: EvalProblem) -> List[Tuple[str, int]]:
    """(input, max value) pairs the search may drive, protocol excluded."""
    interface = problem.module.interface
    excluded = set(_STIMULUS_EXCLUDE)
    excluded.update(
        name for name in (interface.clock, interface.reset) if name
    )
    return [
        (signal.name, (1 << signal.width) - 1)
        for signal in ref.design.inputs
        if signal.name not in excluded
    ]


def _boundary_episodes(
    spans: Sequence[Tuple[str, int]], cycles: int,
    rng: DeterministicRNG, lanes: int,
) -> List[Tuple[str, List[StimulusVector]]]:
    """Deterministic corner-case episodes (round 0 of the search)."""
    episodes: List[Tuple[str, List[StimulusVector]]] = [
        ("allmax", [{n: hi for n, hi in spans} for _ in range(cycles)]),
        ("zero", [{n: 0 for n, _ in spans} for _ in range(cycles)]),
        (
            "alt",
            [
                {n: (hi if cycle % 2 == 0 else 0) for n, hi in spans}
                for cycle in range(cycles)
            ],
        ),
    ]
    total_bits = sum(hi.bit_length() for _, hi in spans)
    if total_bits:
        walk = []
        for cycle in range(cycles):
            bit = cycle % total_bits
            vector: StimulusVector = {}
            for name, hi in spans:
                width = hi.bit_length()
                vector[name] = (1 << bit) if 0 <= bit < width else 0
                bit -= width
            walk.append(vector)
        episodes.append(("walk", walk))
    # One input pinned at max, the rest random: catches compare-against-
    # constant traps on a single port without starving the others.
    for name, hi in spans:
        if len(episodes) >= lanes:
            break
        fork = rng.fork("held", name)
        episodes.append(
            (
                f"held:{name}",
                [
                    {
                        n: (hi if n == name else fork.randint(0, h))
                        for n, h in spans
                    }
                    for _ in range(cycles)
                ],
            )
        )
    return episodes[:lanes] if lanes < len(episodes) else episodes


def _mutation_episodes(
    spans: Sequence[Tuple[str, int]], cycles: int,
    rng: DeterministicRNG, lanes: int, problem: EvalProblem,
) -> List[Tuple[str, List[StimulusVector]]]:
    """Base-stimulus mutations plus fresh random episodes (later rounds)."""
    base = [
        {name: rng.fork("base").randint(0, hi) for name, hi in spans}
        for _ in range(cycles)
    ] if spans else [dict() for _ in range(cycles)]
    episodes: List[Tuple[str, List[StimulusVector]]] = []
    half = max(1, lanes // 2)
    for lane in range(half):
        fork = rng.fork("mutate", lane)
        episode = []
        for vector in base:
            mutated = dict(vector)
            for name, hi in spans:
                if fork.maybe(0.25):
                    # Boundary-biased point mutation: corners are where
                    # equality traps and width clips live.
                    mutated[name] = fork.choice([hi, 0, hi >> 1, 1 & hi])
            episode.append(mutated)
        episodes.append((f"mutate:{lane}", episode))
    for lane in range(lanes - len(episodes)):
        fork = rng.fork("fresh", lane)
        episodes.append(
            (
                f"random:{lane}",
                [
                    {name: fork.randint(0, hi) for name, hi in spans}
                    for _ in range(cycles)
                ],
            )
        )
    return episodes


def _dedupe_episodes(
    episodes: List[Tuple[str, List[StimulusVector]]]
) -> List[Tuple[str, List[StimulusVector]]]:
    seen = set()
    unique = []
    for label, episode in episodes:
        key = repr([sorted(vector.items()) for vector in episode])
        if key in seen:
            continue
        seen.add(key)
        unique.append((label, episode))
    return unique


def _search_episodes(
    ref, problem: EvalProblem, config: CegisConfig, round_index: int
) -> List[Tuple[str, List[StimulusVector]]]:
    spans = _search_spans(ref, problem)
    cycles = config.search_cycles or problem.stimulus_cycles
    rng = DeterministicRNG(problem.stimulus_seed).fork(
        "cegis", round_index
    )
    if round_index == 0:
        episodes = _boundary_episodes(
            spans, cycles, rng, config.search_lanes
        )
    else:
        episodes = _mutation_episodes(
            spans, cycles, rng, config.search_lanes, problem
        )
    return _dedupe_episodes(episodes)


#: golden-side sweep memo: the golden half of every search round is a
#: pure function of (problem, config, round), so repeated searches on
#: one problem — every surviving candidate triggers one — pay it once
_GOLDEN_SWEEP_CACHE: "OrderedDict[Tuple, object]" = OrderedDict()
_GOLDEN_SWEEP_CACHE_MAX = 64


def _golden_sweep(ref, problem, config, round_index, episodes):
    key = (
        _set_key(problem), config.fingerprint_token(), round_index,
    )
    result = _GOLDEN_SWEEP_CACHE.get(key)
    if result is not None:
        _GOLDEN_SWEEP_CACHE.move_to_end(key)
        return result
    result = _run_sweep(ref.design, problem, episodes)
    while len(_GOLDEN_SWEEP_CACHE) >= _GOLDEN_SWEEP_CACHE_MAX:
        _GOLDEN_SWEEP_CACHE.popitem(last=False)
    _GOLDEN_SWEEP_CACHE[key] = result
    return result


def _run_sweep(design, problem, episodes):
    interface = problem.module.interface
    stimuli = [episode for _, episode in episodes]
    cycles = len(stimuli[0]) if stimuli else 0
    return sweep_random_stimulus(
        design,
        cycles,
        seeds=tuple(range(len(stimuli))),
        clock=interface.clock,
        reset=interface.reset,
        reset_active_high=interface.reset_active_high,
        stimuli=stimuli,
    )


def _first_divergence(
    golden_trace, candidate_trace, candidate_error
) -> Optional[int]:
    """Cycle index of the first observable difference, or None."""
    for cycle in range(min(len(golden_trace), len(candidate_trace))):
        if golden_trace[cycle] != candidate_trace[cycle]:
            return cycle
    if candidate_error is not None and (
        len(candidate_trace) < len(golden_trace)
    ):
        # The candidate died where the golden ran on; the divergent
        # "cycle" is the one the candidate could not complete.
        return len(candidate_trace)
    return None


def _source_digest(source: Optional[str]) -> Optional[str]:
    if source is None:
        return None
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


#: sources whose falsification search came up clear, per config — the
#: disk tier gets a matching "cegis-clear" marker when a source is known
_CLEAR_MEMO: set = set()


def _falsify(
    ref, candidate, problem: EvalProblem, source: Optional[str],
    config: CegisConfig, ds: DistinguishingSet,
) -> Optional[DistinguishingVector]:
    """Search for a stimulus separating ``candidate`` from the golden.

    Returns a minimized, scalar-verified distinguishing vector (already
    added to ``ds`` and persisted), or None when every round came up
    clear — in which case the clear verdict is memoized so duplicate
    candidates skip the search entirely.
    """
    digest = _source_digest(source)
    token = config.fingerprint_token()
    clear_key = (_set_key(problem), digest, token)
    if digest is not None:
        if clear_key in _CLEAR_MEMO:
            obs.count("cegis.search_skipped")
            return None
        if sim_cache.load("cegis-clear", *clear_key[0], digest, token):
            _CLEAR_MEMO.add(clear_key)
            obs.count("cegis.search_skipped")
            return None
    obs.count("cegis.searches")
    with obs.span(
        "cegis.search", problem=problem.problem_id,
        rounds=config.search_rounds,
    ):
        for round_index in range(config.search_rounds):
            episodes = _search_episodes(ref, problem, config, round_index)
            if not episodes:
                break
            golden = _golden_sweep(
                ref, problem, config, round_index, episodes
            )
            candidate_sweep = _run_sweep(candidate, problem, episodes)
            for lane, (label, episode) in enumerate(episodes):
                if golden.errors[lane] is not None:
                    continue  # no trusted golden trace for this lane
                cycle = _first_divergence(
                    golden.traces[lane],
                    candidate_sweep.traces[lane],
                    candidate_sweep.errors[lane],
                )
                if cycle is None:
                    continue
                entry = DistinguishingVector.from_run(
                    episode[: cycle + 1],
                    golden.output_names,
                    golden.traces[lane][: cycle + 1],
                    origin=f"search:{label}",
                )
                # Scalar verification guards the set against lane-side
                # artifacts: only episodes the reference checker agrees
                # are distinguishing get minted.
                if _check_entry(ref, entry, candidate, problem).equivalent:
                    continue
                if ds.add(entry, max_set=config.max_set):
                    _save_set(problem, ds)
                    obs.gauge("cegis.set_size", len(ds))
                obs.count("cegis.search_found")
                return entry
    obs.count("cegis.search_clear")
    if digest is not None:
        _CLEAR_MEMO.add(clear_key)
        sim_cache.store(
            "cegis-clear", True, *clear_key[0], digest, token
        )
    return None


# -- the checker -------------------------------------------------------------


def check_designs(
    ref,
    candidates: Sequence,
    problem: EvalProblem,
    sources: Optional[Sequence[str]] = None,
    config: Optional[CegisConfig] = None,
) -> List[EquivalenceResult]:
    """CEGIS verdicts for elaborated candidates of one problem.

    A strict refinement of
    :func:`repro.vereval.harness._check_many_against_trace`: every
    candidate that function fails, this fails (stage 2 *is* that
    function), and the set pre-check and falsification search can only
    convert passes into fails.  Called by the harness entry points when
    :func:`active_config` is enabled; falls back to the legacy check
    outright when the golden itself errored (CEGIS needs a healthy
    golden to search against).
    """
    from repro.vereval import harness

    if config is None:
        config = active_config()
    if ref.error is not None or not config.enabled:
        return harness._check_many_against_trace(
            ref, candidates, problem, sources=sources
        )
    n = len(candidates)
    obs.count("cegis.checks", n)
    results: List[Optional[EquivalenceResult]] = [None] * n

    def _pick(indices: List[int], values: Sequence):
        return [values[i] for i in indices]

    # Stage 1: the distinguishing-input set, cheapest first.  Replay
    # rides the legacy lockstep path with the entry as the golden.
    ds = distinguishing_set(problem)
    alive = list(range(n))
    for position, entry in enumerate(list(ds.entries)):
        if not alive:
            break
        entry_ref = _EntryRef(ref, entry)
        verdicts = harness._check_many_against_trace(
            entry_ref,
            _pick(alive, candidates),
            problem,
            sources=_pick(alive, sources) if sources is not None else None,
        )
        survivors = []
        for index, verdict in zip(alive, verdicts):
            if verdict.equivalent:
                survivors.append(index)
            else:
                verdict.notes.append(
                    f"cegis: killed by distinguishing vector {position}"
                    + (f" ({entry.origin})" if entry.origin else "")
                )
                results[index] = verdict
                obs.count("cegis.set_kills")
        alive = survivors

    # Stage 2: the unmodified legacy full check — the refinement anchor.
    if alive:
        verdicts = harness._check_many_against_trace(
            ref,
            _pick(alive, candidates),
            problem,
            sources=_pick(alive, sources) if sources is not None else None,
        )
        passing = []
        for index, verdict in zip(alive, verdicts):
            results[index] = verdict
            if verdict.equivalent:
                passing.append(index)
        alive = passing

    # Stage 3: falsification search for full-check survivors, once per
    # distinct source (duplicates share the found counterexample).
    if alive and config.search_rounds > 0:
        by_source: "OrderedDict[object, List[int]]" = OrderedDict()
        for index in alive:
            key = (
                sources[index] if sources is not None
                else id(candidates[index])
            )
            by_source.setdefault(key, []).append(index)
        for indices in by_source.values():
            first = indices[0]
            entry = _falsify(
                ref,
                candidates[first],
                problem,
                sources[first] if sources is not None else None,
                config,
                ds,
            )
            if entry is None:
                continue
            for index in indices:
                verdict = _check_entry(
                    ref, entry, candidates[index], problem
                )
                if not verdict.equivalent:
                    verdict.notes.append(
                        "cegis: killed by falsification search"
                        + (f" ({entry.origin})" if entry.origin else "")
                    )
                    results[index] = verdict
    return results  # type: ignore[return-value]
