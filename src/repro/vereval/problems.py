"""Problem set construction.

Problems are held-out draws from the same generator families that
populate the training corpora (disjoint seed space), in the
VerilogEval-Human prompt format::

    // <English description>
    module <name>(<ports>);

The model must produce the body up to ``endmodule``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.rng import DeterministicRNG
from repro.vgen import family_names, generate_family
from repro.vgen.base import GeneratedModule, Style

#: seed namespace for problems; corpus generation uses different labels,
#: keeping the eval set out of every training set by construction.
_PROBLEM_SEED_LABEL = "vereval-problem"


@dataclass
class EvalProblem:
    """One benchmark problem."""

    problem_id: str
    module: GeneratedModule
    stimulus_cycles: int = 24
    stimulus_seed: int = 0

    @property
    def description(self) -> str:
        return self.module.description

    def prompt(self) -> str:
        """Description comment + module header, VerilogEval-Human style."""
        lines = [f"// {line}" for line in _wrap(self.description, 72)]
        return "\n".join(lines) + "\n" + self.module.header_prompt()

    @property
    def golden_source(self) -> str:
        return self.module.source


def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[List[str]] = [[]]
    count = 0
    for word in words:
        if count + len(word) + 1 > width and lines[-1]:
            lines.append([])
            count = 0
        lines[-1].append(word)
        count += len(word) + 1
    return [" ".join(line) for line in lines if line]


def build_problem_set(
    n_problems: int = 60,
    seed: int = 0xE7A1,
    families: Optional[Sequence[str]] = None,
    stimulus_cycles: int = 24,
) -> List[EvalProblem]:
    """Build the held-out problem set, round-robin over families.

    The canonical (flavor-0, four-space) style keeps prompts uniform, the
    way VerilogEval presents a fixed header per problem.
    """
    chosen = list(families if families is not None else family_names())
    problems: List[EvalProblem] = []
    style = Style(indent="    ", comment="none", signal_flavor=0)
    index = 0
    attempt = 0
    seen_names = set()
    while len(problems) < n_problems:
        family = chosen[index % len(chosen)]
        rng = DeterministicRNG(seed).fork(_PROBLEM_SEED_LABEL, family, attempt)
        module = generate_family(family, rng, style)
        attempt += 1
        if module.name in seen_names:
            # Same module name with a different spec would collide in
            # prompts; skip redraws of an identical interface name.
            if attempt > 40 * n_problems:
                break
            index += 1
            continue
        seen_names.add(module.name)
        problems.append(
            EvalProblem(
                problem_id=f"p{len(problems):03d}_{family}",
                module=module,
                stimulus_cycles=stimulus_cycles,
                stimulus_seed=DeterministicRNG(seed).fork("stim", family, attempt).seed,
            )
        )
        index += 1
    return problems
