"""Runtime for elaborated designs: settle/poke/peek cycle semantics.

The simulator is cycle-based and two-state:

* ``poke`` drives a signal; any edge-triggered blocks sensitive to the
  resulting transition fire (this is how both clocks and async resets are
  driven), with nonblocking updates committed atomically afterwards;
  ``poke_many`` applies a whole stimulus vector with a single settle and
  a single edge-detection pass;
* combinational logic (continuous assigns + ``always @(*)``) re-settles to
  a fixpoint after every change, with an iteration bound that turns
  combinational loops into :class:`~repro.errors.SimulationError` instead
  of hangs;
* ``peek`` reads any flat signal.

Two execution backends implement these semantics behind one constructor:

* :class:`InterpreterSimulator` — the AST-walking reference backend in
  this module.  Every settle round re-evaluates every combinational node
  until a global fixpoint; simple, slow, and treated as ground truth.
* :class:`~repro.sim.compile.CompiledSimulator` — the compile-once
  backend in :mod:`repro.sim.compile`: slot-indexed state, expressions
  lowered to closures, and the acyclic combinational region levelized
  into a topologically sorted schedule driven by a fanout dirty set.

``Simulator(design)`` picks the backend: ``"auto"`` (the default,
overridable via the ``REPRO_SIM_BACKEND`` environment variable or
:func:`set_default_backend`) compiles the design and falls back to the
interpreter when the compiler cannot statically lower it; ``"compiled"``
requires the compiled backend; ``"interp"`` forces the interpreter.
Both backends are cycle-identical (enforced by the differential tests in
``tests/test_sim_compile.py``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.verilog import ast
from repro.sim.elaborate import CombAssign, CombBlock, Design, SeqBlock
from repro.sim.eval import eval_expr, self_width
from repro.sim.values import mask

_MAX_LOOP_ITERS = 1 << 16

BACKENDS = ("auto", "compiled", "interp", "batch")

_DEFAULT_BACKEND = os.environ.get("REPRO_SIM_BACKEND", "auto")


def default_backend() -> str:
    """The backend ``Simulator`` uses when none is passed explicitly."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous value."""
    global _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise SimulationError(
            f"unknown simulator backend {name!r} (expected one of {BACKENDS})"
        )
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


class _SimScope:
    """Evaluator scope reading simulator state through a blocking overlay."""

    def __init__(self, sim: "InterpreterSimulator",
                 overlay: Optional[Dict[str, int]] = None,
                 mem_overlay: Optional[Dict[Tuple[str, int], int]] = None) -> None:
        self._sim = sim
        self.overlay = overlay if overlay is not None else {}
        self.mem_overlay = mem_overlay if mem_overlay is not None else {}

    def read(self, name: str) -> int:
        if name in self.overlay:
            return self.overlay[name]
        try:
            return self._sim.state[name]
        except KeyError:
            raise SimulationError(f"read of unknown signal {name!r}") from None

    def width_of(self, name: str) -> int:
        return self._sim.design.signal(name).width

    def is_signed(self, name: str) -> bool:
        return self._sim.design.signal(name).signed

    def is_mem(self, name: str) -> bool:
        return name in self._sim.design.memories

    def mem_width(self, name: str) -> int:
        return self._sim.design.memories[name].width

    def read_mem(self, name: str, index: int) -> int:
        memory = self._sim.design.memories[name]
        slot = index - memory.base
        if slot < 0 or slot >= memory.depth:
            return 0  # out-of-range read: two-state stand-in for X
        key = (name, slot)
        if key in self.mem_overlay:
            return self.mem_overlay[key]
        return self._sim.mems[name][slot]


class _NBAUpdate:
    """A deferred nonblocking write, captured with its resolved location."""

    __slots__ = ("kind", "name", "lo", "width", "value")

    def __init__(self, kind: str, name: str, lo: int, width: int, value: int):
        self.kind = kind  # "signal" | "mem"
        self.name = name
        self.lo = lo      # bit offset, or memory slot
        self.width = width
        self.value = value


class Simulator:
    """Executes an elaborated :class:`~repro.sim.elaborate.Design`.

    This class is a transparent facade over the cycle-identical
    backends.  Constructing ``Simulator(design)`` returns an
    :class:`InterpreterSimulator`, a
    :class:`~repro.sim.compile.CompiledSimulator`, or a
    :class:`~repro.sim.batch.BatchSimulator` depending on ``backend``
    (``"auto"`` / ``"compiled"`` / ``"interp"`` / ``"batch"``; ``None``
    means the process default, see :func:`set_default_backend`).  All
    expose the same observable API: ``poke``, ``poke_many``, ``peek``,
    ``peek_mem``, ``settle``, and ``state`` / ``mems`` views of the flat
    state.  Backends that cannot carry a design fall back along the
    documented contracts (batch -> scalar, compiled -> interpreter).

    Example (any backend name gives the same cycles):

    >>> from repro.sim import Simulator, elaborate
    >>> from repro.verilog import parse_source
    >>> design = elaborate(parse_source(
    ...     "module c(input clk, output reg [3:0] q);"
    ...     " always @(posedge clk) q <= q + 1; endmodule"), "c")
    >>> sim = Simulator(design)           # "auto": the compiled backend
    >>> for _ in range(3):
    ...     sim.poke("clk", 0); sim.poke("clk", 1)
    >>> sim.peek("q")
    3
    """

    def __new__(cls, design: Design, max_settle_rounds: Optional[int] = None,
                backend: Optional[str] = None, **kwargs):
        if cls is not Simulator:
            return object.__new__(cls)
        choice = backend or _DEFAULT_BACKEND
        if choice not in BACKENDS:
            raise SimulationError(
                f"unknown simulator backend {choice!r} "
                f"(expected one of {BACKENDS})"
            )
        if choice == "interp":
            return object.__new__(InterpreterSimulator)
        from repro.sim.compile import (
            CompiledSimulator,
            UncompilableDesign,
            compile_design,
        )
        if choice == "batch":
            # Scalar-fallback contract: designs the lane compiler cannot
            # lower (not levelizable, too wide) run on the scalar
            # backends instead, preserving error classification.
            from repro.sim.batch import BatchSimulator, batch_design

            try:
                batch_design(design, kwargs.get("n_lanes", 1))
            except UncompilableDesign as exc:
                if "n_lanes" in kwargs:
                    # An explicit lane request cannot be honoured by the
                    # scalar backends (whose constructors do not take
                    # n_lanes); surface the reason instead.
                    raise SimulationError(
                        f"design is not lane-parallelizable: {exc}"
                    ) from None
            else:
                return object.__new__(BatchSimulator)
        try:
            compile_design(design)
        except UncompilableDesign as exc:
            if choice == "compiled":
                raise SimulationError(
                    f"design does not compile: {exc}"
                ) from None
            return object.__new__(InterpreterSimulator)
        return object.__new__(CompiledSimulator)

    # -- shared poke protocol ------------------------------------------------
    #
    # Both backends implement `_poke_pending` (would this poke change
    # state?), `_poke_apply` (write the masked value), `_trigger_snapshot`
    # (trigger-signal bits as a list), `settle`, and `_fire_edges`.

    def poke(self, name: str, value: int) -> None:
        """Drive ``name`` to ``value``; fire any triggered edge blocks.

        Edge detection compares trigger-signal values before the poke with
        their values after combinational settle, so edges that propagate
        through hierarchy glue or derived-clock logic are seen.  Blocks
        whose updates create further edges (ripple counters) fire in
        cascading rounds, bounded to catch oscillating clock loops.
        """
        if not self._poke_pending(name, value):
            return
        snapshot = self._trigger_snapshot()
        self._poke_apply(name, value)
        self.settle()
        self._fire_edges(snapshot)

    def poke_many(self, values: Mapping[str, int]) -> None:
        """Apply a whole stimulus vector with one settle + one edge pass.

        Equivalent to poking every entry "at the same instant": all values
        land before combinational logic re-settles, and edge detection
        compares trigger bits from before the first write against the
        post-settle state.  One batched call replaces N per-poke settles
        and N edge-detection passes, which is the hot loop of
        :meth:`repro.sim.testbench.Testbench.drive`.
        """
        snapshot = None
        for name, value in values.items():
            if not self._poke_pending(name, value):
                continue
            if snapshot is None:
                snapshot = self._trigger_snapshot()
            self._poke_apply(name, value)
        if snapshot is None:
            return
        self.settle()
        self._fire_edges(snapshot)

    # -- backend hooks -------------------------------------------------------

    def _poke_pending(self, name: str, value: int) -> bool:
        raise NotImplementedError

    def _poke_apply(self, name: str, value: int) -> None:
        raise NotImplementedError

    def _trigger_snapshot(self) -> List[int]:
        raise NotImplementedError

    def settle(self) -> None:
        raise NotImplementedError

    def _fire_edges(self, snapshot: List[int]) -> None:
        raise NotImplementedError


class InterpreterSimulator(Simulator):
    """AST-interpreting reference backend (ground truth for differentials)."""

    def __init__(self, design: Design, max_settle_rounds: Optional[int] = None,
                 backend: Optional[str] = None):
        self.design = design
        self.state: Dict[str, int] = {name: 0 for name in design.signals}
        self.mems: Dict[str, List[int]] = {
            name: [0] * memory.depth for name, memory in design.memories.items()
        }
        comb_count = len(design.comb_assigns) + len(design.comb_blocks)
        self._max_rounds = max_settle_rounds or (2 * comb_count + 16)
        #: Every signal that appears in an edge sensitivity list anywhere in
        #: the flattened design.  Edges on these are detected after every
        #: settle, so clocks that reach child instances through port glue
        #: (or derived/gated clocks) fire correctly.
        self._trigger_signals = sorted(
            {name for block in design.seq_blocks for _, name in block.triggers}
        )
        trigger_index = {name: i for i, name in enumerate(self._trigger_signals)}
        #: Per seq block: (wanted post-edge bit, trigger list index) pairs,
        #: resolved once so edge detection never rebuilds name dicts.
        self._block_triggers = [
            [
                (1 if edge == "posedge" else 0, trigger_index[name])
                for edge, name in block.triggers
            ]
            for block in design.seq_blocks
        ]
        self._run_initial()
        self.settle()

    # -- poke hooks ---------------------------------------------------------

    def _poke_pending(self, name: str, value: int) -> bool:
        signal = self.design.signal(name)
        return self.state[name] != mask(value, signal.width)

    def _poke_apply(self, name: str, value: int) -> None:
        self.state[name] = mask(value, self.design.signal(name).width)

    def _trigger_snapshot(self) -> List[int]:
        state = self.state
        return [state[s] & 1 for s in self._trigger_signals]

    def _fire_edges(self, snapshot: List[int]) -> None:
        state = self.state
        names = self._trigger_signals
        for _ in range(self._max_rounds):
            current = [state[s] & 1 for s in names]
            triggered = [
                block
                for block, triggers in zip(
                    self.design.seq_blocks, self._block_triggers
                )
                if any(
                    snapshot[ti] != current[ti] and current[ti] == want
                    for want, ti in triggers
                )
            ]
            if not triggered:
                return
            self._run_seq_blocks(triggered)
            self.settle()
            snapshot = current
        raise SimulationError(
            "edge events failed to quiesce (oscillating clock loop?)"
        )

    def peek(self, name: str) -> int:
        try:
            return self.state[name]
        except KeyError:
            raise SimulationError(f"peek of unknown signal {name!r}") from None

    def peek_mem(self, name: str, index: int) -> int:
        memory = self.design.memories[name]
        slot = index - memory.base
        if slot < 0 or slot >= memory.depth:
            raise SimulationError(f"memory index {index} out of range for {name!r}")
        return self.mems[name][slot]

    def settle(self) -> None:
        """Propagate combinational logic to a fixpoint."""
        for _ in range(self._max_rounds):
            changed = False
            for assign in self.design.comb_assigns:
                if self._apply_comb_assign(assign):
                    changed = True
            for block in self.design.comb_blocks:
                if self._run_comb_block(block):
                    changed = True
            if not changed:
                return
        raise SimulationError(
            "combinational logic failed to settle "
            f"within {self._max_rounds} rounds (combinational loop?)"
        )

    # -- initial / sequential execution --------------------------------------

    def _run_initial(self) -> None:
        for stmt in self.design.initial_stmts:
            scope = _SimScope(self)
            nba: List[_NBAUpdate] = []
            self._exec_stmt(stmt, scope, nba)
            self._commit_overlay(scope)
            self._commit_nba(nba)

    def _run_seq_blocks(self, blocks: List[SeqBlock]) -> None:
        """Run edge blocks concurrently: all read pre-edge state, then all
        nonblocking updates commit at once."""
        pending: List[_NBAUpdate] = []
        for block in blocks:
            scope = _SimScope(self)
            self._exec_stmt(block.body, scope, pending)
            # Blocking writes inside an edge block commit with the block
            # (they model local variables / intermediate nets).
            self._commit_overlay(scope)
        self._commit_nba(pending)

    def _commit_overlay(self, scope: _SimScope) -> None:
        for name, value in scope.overlay.items():
            self.state[name] = value
        for (name, slot), value in scope.mem_overlay.items():
            self.mems[name][slot] = value

    def _commit_nba(self, updates: List[_NBAUpdate]) -> bool:
        changed = False
        for upd in updates:
            if upd.kind == "mem":
                memory = self.design.memories[upd.name]
                if 0 <= upd.lo < memory.depth:
                    new = mask(upd.value, memory.width)
                    if self.mems[upd.name][upd.lo] != new:
                        self.mems[upd.name][upd.lo] = new
                        changed = True
                continue
            signal = self.design.signal(upd.name)
            keep = self.state[upd.name]
            if upd.lo == 0 and upd.width >= signal.width:
                new = mask(upd.value, signal.width)
            else:
                field_mask = ((1 << upd.width) - 1) << upd.lo
                new = (keep & ~field_mask) | (
                    (mask(upd.value, upd.width) << upd.lo) & field_mask
                )
            if new != keep:
                self.state[upd.name] = new
                changed = True
        return changed

    # -- combinational execution ---------------------------------------------

    def _apply_comb_assign(self, assign: CombAssign) -> bool:
        scope = _SimScope(self)
        width = self._lvalue_width(assign.target, scope)
        value = eval_expr(assign.value, scope, width)
        return self._write_lvalue(assign.target, value, scope, blocking=True,
                                  nba=None, direct=True)

    def _run_comb_block(self, block: CombBlock) -> bool:
        scope = _SimScope(self)
        nba: List[_NBAUpdate] = []
        self._exec_stmt(block.body, scope, nba)
        changed = False
        for name, value in scope.overlay.items():
            if self.state[name] != value:
                self.state[name] = value
                changed = True
        for (name, slot), value in scope.mem_overlay.items():
            if self.mems[name][slot] != value:
                self.mems[name][slot] = value
                changed = True
        if self._commit_nba(nba):
            changed = True
        return changed

    # -- statement execution --------------------------------------------------

    def _exec_stmt(
        self, stmt: ast.Stmt, scope: _SimScope, nba: List[_NBAUpdate]
    ) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._exec_stmt(inner, scope, nba)
            return
        if isinstance(stmt, ast.Assign):
            width = self._lvalue_width(stmt.target, scope)
            value = eval_expr(stmt.value, scope, width)
            self._write_lvalue(
                stmt.target, value, scope, blocking=stmt.blocking, nba=nba
            )
            return
        if isinstance(stmt, ast.If):
            if eval_expr(stmt.cond, scope) != 0:
                self._exec_stmt(stmt.then, scope, nba)
            elif stmt.other is not None:
                self._exec_stmt(stmt.other, scope, nba)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(stmt, scope, nba)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, scope, nba)
            return
        if isinstance(stmt, (ast.NullStmt, ast.SystemTaskCall)):
            return
        raise SimulationError(f"cannot execute {type(stmt).__name__}")

    def _exec_case(
        self, stmt: ast.Case, scope: _SimScope, nba: List[_NBAUpdate]
    ) -> None:
        # Case comparison width is the max over the subject and every
        # label (IEEE 1364 case sizing); the subject is evaluated once at
        # that width instead of once per label.
        width = self_width(stmt.subject, scope)
        for item in stmt.items:
            for label in item.labels:
                label_width = self_width(label, scope)
                if label_width > width:
                    width = label_width
        subject = eval_expr(stmt.subject, scope, width)
        default: Optional[ast.CaseItem] = None
        for item in stmt.items:
            if item.is_default:
                default = item
                continue
            for label in item.labels:
                value = eval_expr(label, scope, width)
                wildcard = 0
                if stmt.kind in ("casez", "casex") and isinstance(
                    label, ast.Number
                ):
                    wildcard = label.unknown_mask
                if (subject & ~wildcard) == (value & ~wildcard):
                    self._exec_stmt(item.body, scope, nba)
                    return
        if default is not None:
            self._exec_stmt(default.body, scope, nba)

    def _exec_for(
        self, stmt: ast.For, scope: _SimScope, nba: List[_NBAUpdate]
    ) -> None:
        self._exec_stmt(stmt.init, scope, nba)
        iterations = 0
        while eval_expr(stmt.cond, scope) != 0:
            self._exec_stmt(stmt.body, scope, nba)
            self._exec_stmt(stmt.step, scope, nba)
            iterations += 1
            if iterations > _MAX_LOOP_ITERS:
                raise SimulationError(
                    f"for-loop exceeded {_MAX_LOOP_ITERS} iterations"
                )

    # -- lvalue handling --------------------------------------------------

    def _lvalue_width(self, target: ast.Expr, scope: _SimScope) -> int:
        if isinstance(target, ast.Identifier):
            return scope.width_of(target.name)
        if isinstance(target, ast.Concat):
            return sum(self._lvalue_width(p, scope) for p in target.parts)
        if isinstance(target, ast.Index):
            name = self._target_name(target.base)
            if scope.is_mem(name):
                return scope.mem_width(name)
            return 1
        if isinstance(target, ast.PartSelect):
            msb = eval_expr(target.msb, scope)
            lsb = eval_expr(target.lsb, scope)
            return abs(msb - lsb) + 1
        if isinstance(target, ast.IndexedPartSelect):
            return eval_expr(target.width, scope)
        raise SimulationError(
            f"invalid assignment target {type(target).__name__}"
        )

    @staticmethod
    def _target_name(expr: ast.Expr) -> str:
        if not isinstance(expr, ast.Identifier):
            raise SimulationError("assignment target must be a named signal")
        return expr.name

    def _write_lvalue(
        self,
        target: ast.Expr,
        value: int,
        scope: _SimScope,
        blocking: bool,
        nba: Optional[List[_NBAUpdate]],
        direct: bool = False,
    ) -> bool:
        """Write ``value`` to ``target``.

        ``direct`` writes go straight to simulator state (continuous
        assigns) and return whether state changed; procedural writes go to
        the blocking overlay or the NBA list and return False.
        """
        if isinstance(target, ast.Concat):
            changed = False
            # First part is most significant.
            widths = [self._lvalue_width(p, scope) for p in target.parts]
            total = sum(widths)
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                chunk = mask(value >> offset, part_width)
                if self._write_lvalue(
                    part, chunk, scope, blocking, nba, direct
                ):
                    changed = True
            return changed

        name, lo, width, is_mem = self._resolve_location(target, scope)
        if is_mem:
            memory = self.design.memories[name]
            if lo < 0 or lo >= memory.depth:
                return False  # out-of-range write ignored
            value = mask(value, memory.width)
            if direct:
                raise SimulationError(
                    "continuous assignment to memory element is not supported"
                )
            if blocking:
                scope.mem_overlay[(name, lo)] = value
            else:
                assert nba is not None
                nba.append(_NBAUpdate("mem", name, lo, memory.width, value))
            return False

        signal = self.design.signal(name)
        if direct:
            full = self.state[name]
            if lo == 0 and width >= signal.width:
                new = mask(value, signal.width)
            else:
                field_mask = ((1 << width) - 1) << lo
                new = (full & ~field_mask) | (
                    (mask(value, width) << lo) & field_mask
                )
            if new == full:
                return False
            self.state[name] = new
            return True
        if blocking:
            current = scope.read(name)
            if lo == 0 and width >= signal.width:
                scope.overlay[name] = mask(value, signal.width)
            else:
                field_mask = ((1 << width) - 1) << lo
                scope.overlay[name] = (current & ~field_mask) | (
                    (mask(value, width) << lo) & field_mask
                )
        else:
            assert nba is not None
            nba.append(_NBAUpdate("signal", name, lo, width, value))
        return False

    def _resolve_location(
        self, target: ast.Expr, scope: _SimScope
    ) -> Tuple[str, int, int, bool]:
        """Resolve a non-concat lvalue to (name, offset, width, is_mem)."""
        if isinstance(target, ast.Identifier):
            if scope.is_mem(target.name):
                raise SimulationError(
                    f"cannot assign whole memory {target.name!r}"
                )
            return target.name, 0, scope.width_of(target.name), False
        if isinstance(target, ast.Index):
            name = self._target_name(target.base)
            index = eval_expr(target.index, scope)
            if scope.is_mem(name):
                memory = self.design.memories[name]
                return name, index - memory.base, memory.width, True
            return name, index, 1, False
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target.base)
            msb = eval_expr(target.msb, scope)
            lsb = eval_expr(target.lsb, scope)
            if msb < lsb:
                msb, lsb = lsb, msb
            return name, lsb, msb - lsb + 1, False
        if isinstance(target, ast.IndexedPartSelect):
            name = self._target_name(target.base)
            start = eval_expr(target.start, scope)
            width = eval_expr(target.width, scope)
            lo = start if target.ascending else start - width + 1
            return name, max(lo, 0), width, False
        raise SimulationError(
            f"invalid assignment target {type(target).__name__}"
        )
