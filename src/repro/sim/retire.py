"""One lane retirement engine for every batched checking mode.

Before this module existed the harness carried two hand-rolled copies of
the same retirement logic: the combinational all-vectors fast path
(``repro.vereval.harness._check_all_vectors_batch``) and the sequential
lockstep group runner (``_run_lockstep_group``) each built their own
golden-expectation matrix, compared lane outputs, derived the scalar
first-mismatch bookkeeping, and decided which lanes to retire or replay.
Both now compile into :class:`RetireEngine`, which owns the one
implementation of:

* **expectation packing** — the golden trace becomes a
  ``[cycles, outputs]`` matrix, ``int64`` when every value fits a lane
  word and exact-object (arbitrary-precision python ints) when any
  golden output exceeds 63 bits, so wide-datapath problems compare
  exactly instead of overflowing;
* **lane comparison + verdict derivation** — the scalar loop's exact
  bookkeeping (first mismatching cycle, first mismatching output in
  golden name order, expected/actual values) reproduced over whole lane
  matrices.  The two modes differ only in what a lane *is*:

  ========== ======================= ================================
  mode       lane axis               verdict shape
  ========== ======================= ================================
  all-vectors one stimulus vector    one result for the single design
              per lane (comb designs) (argmax over lanes = cycles)
  lockstep    one candidate design   one result per lane, retired at
              per lane               its first mismatching cycle
  ========== ======================= ================================

* **retire/preempt/finish policy** — mismatching lanes retire with
  their recorded verdict, golden simulation death preempts every still
  undecided active lane with the golden error (exactly where the scalar
  loop would have observed it), and surviving lanes pass with the full
  cycle count at :meth:`RetireEngine.finish`;
* **scalar replay of stragglers** — :func:`replay_stragglers` walks the
  lanes no batched run could decide (runtime
  :class:`~repro.sim.batch.BatchDivergence`, shapes that never grouped)
  and fills their verdicts from the caller's scalar check, preserving
  per-candidate error classification.

Everything here is pure verdict bookkeeping over arrays the simulators
produce; the settle work itself stays in :mod:`repro.sim.batch` /
:mod:`repro.sim.bitslice`.  The engine is deliberately dtype-blind:
``int64``, spill (object) and bitslice-backed lane arrays all compare
through the same numpy elementwise paths, which is what lets one engine
serve every lane representation.

Counters (:mod:`repro.obs`): ``retire.allvec_checks``,
``retire.allvec_mismatch``, ``retire.lanes_retired``,
``retire.lanes_passed``, ``retire.golden_preempts``,
``retire.scalar_replays``, ``retire.wide_expected``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

__all__ = [
    "RetireEngine",
    "expected_matrix",
    "lane_vector",
    "replay_stragglers",
]


def expected_matrix(
    trace: Sequence[Tuple[int, ...]], n_outputs: int
) -> np.ndarray:
    """Golden trace as a ``[cycles, n_outputs]`` comparison matrix.

    ``int64`` when every golden value fits a lane word; exact-object
    (python ints) when any output exceeds the int64 range, so >63-bit
    datapaths compare exactly instead of raising ``OverflowError``.
    Returns an empty int64 matrix for an empty trace.
    """
    if not trace:
        return np.zeros((0, n_outputs), dtype=np.int64)
    try:
        return np.array(trace, dtype=np.int64)
    except OverflowError:
        obs.count("retire.wide_expected")
        wide = np.empty((len(trace), n_outputs), dtype=object)
        for row, values in enumerate(trace):
            wide[row, :] = values
        return wide


def lane_vector(values: Sequence[int], wide: bool) -> np.ndarray:
    """One per-lane stimulus column, dtype-matched to the lane backend.

    ``wide`` selects exact-object storage (spill lanes, >63-bit values);
    otherwise the column packs into int64 like every narrow poke.
    """
    if wide:
        arr = np.empty(len(values), dtype=object)
        arr[:] = list(values)
        return arr
    return np.fromiter(values, dtype=np.int64, count=len(values))


class RetireEngine:
    """Settle→compare→retire→replay bookkeeping for one check run.

    Construct one engine per golden reference (output name order and
    trace are frozen at construction); then either:

    * call :meth:`retire_all_vectors` once with the full
      ``[n_lanes, n_outputs]`` output matrix of a stateless
      combinational design (lane = stimulus vector) and receive the
      single scalar-identical verdict, or
    * drive the lockstep protocol — :meth:`retire_cycle` per simulated
      cycle, :meth:`preempt` when the golden trace runs out early,
      :meth:`finish` when stimulus is exhausted — and read one verdict
      per candidate lane from :attr:`results`.

    ``result_type`` is injected (the harness passes
    :class:`repro.sim.testbench.EquivalenceResult`) so this module stays
    free of circular imports and the engine stays reusable for any
    verdict dataclass with the same field names.
    """

    __slots__ = ("names", "expected", "n_lanes", "results", "_result_type")

    def __init__(
        self,
        output_names: Sequence[str],
        trace: Sequence[Tuple[int, ...]],
        n_lanes: int,
        result_type: Optional[type] = None,
    ) -> None:
        if result_type is None:
            from repro.sim.testbench import EquivalenceResult
            result_type = EquivalenceResult
        self.names: Tuple[str, ...] = tuple(output_names)
        self.expected = expected_matrix(trace, len(self.names))
        self.n_lanes = n_lanes
        self.results: List[Optional[object]] = [None] * n_lanes
        self._result_type = result_type

    # ------------------------------------------------------------------
    # all-vectors mode: lane == stimulus vector, one design
    # ------------------------------------------------------------------

    def retire_all_vectors(self, actual: np.ndarray):
        """Verdict for one combinational design checked lane-per-vector.

        ``actual`` is the ``[n_lanes, n_outputs]`` settled output matrix
        (lane *l* carries stimulus vector *l*, so the lane axis **is**
        the cycle axis).  Reproduces the scalar per-cycle loop's verdict
        exactly: first mismatching cycle, then first mismatching output
        in golden name order.
        """
        obs.count("retire.allvec_checks")
        mismatched = self.expected != actual
        if not mismatched.any():
            return self._result_type(
                equivalent=True, cycles_run=self.n_lanes
            )
        obs.count("retire.allvec_mismatch")
        cycle = int(np.argmax(mismatched.any(axis=1)))
        out_index = int(np.argmax(mismatched[cycle]))
        return self._result_type(
            equivalent=False,
            cycles_run=cycle + 1,
            first_mismatch_cycle=cycle,
            mismatched_output=self.names[out_index],
            expected=int(self.expected[cycle, out_index]),
            actual=int(actual[cycle, out_index]),
        )

    # ------------------------------------------------------------------
    # lockstep mode: lane == candidate design, shared stimulus
    # ------------------------------------------------------------------

    def retire_cycle(
        self, cycle: int, actual: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Compare one cycle; record verdicts for newly-bad lanes.

        ``actual`` is the ``[n_lanes, n_outputs]`` per-candidate output
        matrix after this cycle's tick, ``active`` the simulator's live
        lane mask.  Returns the boolean retire mask (bad **and** active)
        for the caller to pass to ``sim.retire_lanes`` — the simulator
        keeps owning lane liveness, the engine owns verdicts.
        """
        expected_row = self.expected[cycle]
        mismatched = actual != expected_row
        lane_bad = mismatched.any(axis=1) & active
        if lane_bad.any():
            for lane in np.nonzero(lane_bad)[0]:
                out_index = int(np.argmax(mismatched[lane]))
                self.results[int(lane)] = self._result_type(
                    equivalent=False,
                    cycles_run=cycle + 1,
                    first_mismatch_cycle=cycle,
                    mismatched_output=self.names[out_index],
                    expected=int(expected_row[out_index]),
                    actual=int(actual[lane, out_index]),
                )
            obs.count("retire.lanes_retired", int(lane_bad.sum()))
        return lane_bad

    def preempt(self, error: Optional[str], active: np.ndarray) -> list:
        """Golden death preempts every undecided active lane.

        The golden design steps before any candidate each cycle, so when
        its recorded trace ends early every lane still undecided at that
        cycle observes the golden error — exactly the scalar verdict.
        """
        preempted = 0
        for lane in range(self.n_lanes):
            if self.results[lane] is None and active[lane]:
                self.results[lane] = self._result_type(
                    equivalent=False, error=error
                )
                preempted += 1
        if preempted:
            obs.count("retire.golden_preempts", preempted)
        return self.results

    def finish(self, cycles_run: int) -> list:
        """Stimulus exhausted: surviving lanes pass with the full count."""
        passed = 0
        for lane in range(self.n_lanes):
            if self.results[lane] is None:
                self.results[lane] = self._result_type(
                    equivalent=True, cycles_run=cycles_run
                )
                passed += 1
        if passed:
            obs.count("retire.lanes_passed", passed)
        return self.results


def replay_stragglers(
    results: list,
    indices: Sequence[int],
    check: Callable[[int], object],
    on_error: Callable[[Exception], object],
) -> None:
    """Scalar replay for lanes no batched run could decide.

    Fills ``results[index]`` for every ``index`` in ``indices`` by
    calling ``check(index)`` on the scalar path; a ``SimulationError``
    (or anything else ``check`` raises that ``on_error`` maps) becomes
    ``on_error(exc)``'s verdict.  This is the tail of the retirement
    contract: per-candidate values *and* error classification always
    match a candidate-by-candidate scalar loop.
    """
    from repro.errors import SimulationError

    for index in indices:
        obs.count("retire.scalar_replays")
        try:
            results[index] = check(index)
        except SimulationError as exc:
            results[index] = on_error(exc)
