"""Bit-vector value helpers for the two-state simulator.

Values are plain non-negative Python ints, always interpreted together with
an explicit bit width.  These helpers centralize the masking and signed
reinterpretation rules so the evaluator stays readable.
"""

from __future__ import annotations


def mask(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's-complement wraparound)."""
    if width <= 0:
        return 0
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Reinterpret a masked unsigned value as a signed integer."""
    if width <= 0:
        return 0
    value = mask(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer into ``width`` bits."""
    return mask(value, width)


def bit_length_for(count: int) -> int:
    """Smallest width that can index ``count`` items ($clog2 semantics).

    Matches Verilog-2005 ``$clog2``: ceil(log2(count)), with
    ``$clog2(0) == 0`` and ``$clog2(1) == 0``.
    """
    if count <= 1:
        return 0
    return (count - 1).bit_length()


def replicate(value: int, width: int, times: int) -> int:
    """Concatenate ``times`` copies of a ``width``-bit value."""
    if times <= 0 or width <= 0:
        return 0
    value = mask(value, width)
    out = 0
    for _ in range(times):
        out = (out << width) | value
    return out


def concat(parts: list) -> int:
    """Concatenate (value, width) pairs, first part most significant."""
    out = 0
    for value, width in parts:
        out = (out << width) | mask(value, width)
    return out


def reduce_and(value: int, width: int) -> int:
    if width <= 0:
        return 0
    return 1 if mask(value, width) == (1 << width) - 1 else 0


def reduce_or(value: int, width: int) -> int:
    return 1 if mask(value, width) != 0 else 0


def reduce_xor(value: int, width: int) -> int:
    return bin(mask(value, width)).count("1") & 1
