"""Bit-sliced lane backend: one python int packs every lane's bit.

The int64 lane backend (:mod:`repro.sim.batch`) spends a full masked
numpy op per node even when the node is a 1-bit gate — and the
control-heavy ``vgen`` families are dominated by exactly such nets.
This module transposes the storage for those designs: instead of one
int64 *per lane*, every **bit position** of a signal stores a single
arbitrary-precision python int whose bit ``l`` is lane ``l``'s value (a
*bit plane*).  A 1-bit AND over 256 lanes is then one ``a & b`` on two
python ints; adders and comparators over the census-bounded widths
(<= 16 bits) lower to short ripple chains of plane ops.

The lowering is deliberately partial and *safe by construction*:

* only **continuous assigns to whole signals** whose expressions fall in
  the supported subset (bitwise/logical ops, equality and ordering
  compares, ripple add/sub/negate, static shifts/selects/concats,
  ternary muxes, reductions) become plane kernels;
* every other node — always-blocks, dynamic indexing, multiply/divide,
  system calls — **bridges** to the int64 image compiled alongside
  (:attr:`BitsliceDesign.base` embeds it), with plane<->int64 conversion
  at the boundary tracked by two lazy staleness sets, so a design that
  is 90% control and 10% datapath runs 90% on planes without any
  per-node semantics re-derivation for the hard 10%;
* a design where *nothing* plane-lowers simply returns the int64 image
  (counted as ``bitslice.fallback_int64``) — bitslice is an
  accelerator, never a correctness dependency.

Selection is by the width census in
:func:`repro.sim.batch.lane_representation`; construction goes through
:func:`repro.sim.batch.make_batch_simulator`.  Lane-for-lane verdict
identity with the scalar backends is enforced by the differential
parametrizations in ``tests/test_sim_batch.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.verilog import ast
from repro.sim import eval as _ev
from repro.sim import batch as _batch
from repro.sim.compile import UncompilableDesign, _Compiler
from repro.sim.elaborate import Design

__all__ = [
    "BitsliceDesign",
    "BitsliceSimulator",
    "compile_bitslice",
]

_I64 = np.int64


# ---------------------------------------------------------------------------
# plane <-> lane-array conversion
# ---------------------------------------------------------------------------


def _pack_lanes(values: np.ndarray, width: int, n_lanes: int) -> List[int]:
    """Transpose an int64 lane array into ``width`` bit-plane ints."""
    planes: List[int] = []
    for b in range(max(width, 1)):
        bits = ((values >> b) & 1).astype(np.uint8)
        planes.append(
            int.from_bytes(
                np.packbits(bits, bitorder="little").tobytes(), "little"
            )
        )
    return planes


def _unpack_planes(planes: List[int], n_lanes: int) -> np.ndarray:
    """Transpose bit-plane ints back into an int64 lane array."""
    out = np.zeros(n_lanes, dtype=_I64)
    nbytes = (n_lanes + 7) // 8
    for b, plane in enumerate(planes):
        if not plane:
            continue
        bits = np.unpackbits(
            np.frombuffer(plane.to_bytes(nbytes, "little"), dtype=np.uint8),
            bitorder="little", count=n_lanes,
        )
        out |= bits.astype(_I64) << b
    return out


def _mask_lanes(mask: int, n_lanes: int) -> np.ndarray:
    """A lane-mask int as a numpy bool predicate array."""
    nbytes = (n_lanes + 7) // 8
    bits = np.unpackbits(
        np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8),
        bitorder="little", count=n_lanes,
    )
    return bits.astype(bool)


# ---------------------------------------------------------------------------
# plane kernel emission
# ---------------------------------------------------------------------------


class _Unsliceable(Exception):
    """Internal: this expression/target falls outside the plane subset."""


class _PlaneEmitter:
    """Lowers the supported expression subset to bit-plane closures.

    Mirrors the width/signedness protocol of the int64 emitter
    (``_compile_expr`` / ``_compile_operand`` / ``_compile_eval`` in
    :class:`repro.sim.batch._BatchCompiler`) so plane kernels and int64
    closures agree bit-for-bit; anything outside the subset raises
    :class:`_Unsliceable` and the whole node bridges to the int64 image.

    Closures take the per-slot plane table ``pl`` (list of plane lists)
    and return exactly the number of planes their contract width names —
    every value is masked at every step, which is free here (dropping a
    plane *is* the mask).
    """

    def __init__(self, comp: _Compiler, n_lanes: int) -> None:
        self.comp = comp
        self.full = (1 << n_lanes) - 1
        self.reads: Set[int] = set()

    def begin_node(self) -> None:
        self.reads = set()

    # -- protocol entry points ----------------------------------------------

    def expr(self, expr: ast.Expr, context_width: int):
        """Mirror of ``_compile_expr``: (n_planes, fn) at context width."""
        width = max(context_width, self.comp._self_width(expr))
        return width, self._eval(expr, width)

    def _operand(self, expr: ast.Expr, width: int):
        """Mirror of ``_compile_operand``: sign/zero extension applies."""
        own = self.comp._self_width(expr)
        fn = self._eval(expr, max(own, width))
        if width <= own:
            return max(own, width), fn
        if self.comp._is_signed(expr):
            def signed_ext(pl, _f=fn, _own=own, _w=width):
                planes = _f(pl)
                sign = planes[_own - 1]
                return planes[:_own] + [sign] * (_w - _own)

            return width, signed_ext
        return width, fn  # _eval already zero-fills above own

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _fit(planes: List[int], width: int) -> List[int]:
        if len(planes) == width:
            return planes
        if len(planes) > width:
            return planes[:width]
        return planes + [0] * (width - len(planes))

    def _const_planes(self, value: int, width: int) -> List[int]:
        full = self.full
        return [full if (value >> b) & 1 else 0 for b in range(max(width, 1))]

    def _bool(self, expr: ast.Expr):
        """One plane: nonzero test of ``expr`` (self-determined width)."""
        _, fn = self.expr(expr, 0)

        def nonzero(pl, _f=fn):
            acc = 0
            for p in _f(pl):
                acc |= p
            return acc

        return nonzero

    def _add_planes(self, a: List[int], b: List[int], carry: int,
                    full: int) -> List[int]:
        out: List[int] = []
        for i in range(len(a)):
            ai, bi = a[i], b[i]
            axb = ai ^ bi
            out.append(axb ^ carry)
            carry = (ai & bi) | (carry & axb)
        return out

    def _less_planes(self, a: List[int], b: List[int], full: int) -> int:
        """Lane mask of ``a < b`` (unsigned), LSB-first borrow chain."""
        lt = 0
        for i in range(len(a)):
            ai, bi = a[i], b[i]
            eq = (ai ^ bi) ^ full
            lt = (bi & ~ai & full) | (lt & eq)
        return lt

    # -- the subset ----------------------------------------------------------

    def _eval(self, expr: ast.Expr, width: int):
        comp = self.comp
        width = max(width, 1)
        full = self.full

        if comp._is_static(expr):
            try:
                value = _ev._eval(expr, comp._static, width)
            except SimulationError as exc:
                raise UncompilableDesign(str(exc)) from None
            const = self._const_planes(value, width)
            return lambda pl, _c=const: _c

        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name in comp.mem_of:
                raise _Unsliceable("memory read")
            slot = comp._slot(name)
            self.reads.add(slot)
            own = max(comp.widths[slot], 1)
            if own == width:
                return lambda pl, _s=slot: pl[_s]
            fit = self._fit
            return lambda pl, _s=slot, _w=width, _fit=fit: _fit(pl[_s], _w)

        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, width)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, width)

        if isinstance(expr, ast.Ternary):
            cond = self._bool(expr.cond)
            _, then = self._operand(expr.then, width)
            _, other = self._operand(expr.other, width)

            def mux(pl, _c=cond, _t=then, _o=other, _w=width, _full=full):
                c = _c(pl)
                nc = c ^ _full
                t = _t(pl)
                o = _o(pl)
                return [(c & t[i]) | (nc & o[i]) for i in range(_w)]

            return mux

        if isinstance(expr, ast.Concat):
            parts = []
            for part in reversed(expr.parts):
                pw = comp._self_width(part)
                parts.append((self._eval(part, pw), max(pw, 1)))

            def concat(pl, _parts=tuple(parts), _w=width, _fit=self._fit):
                planes: List[int] = []
                for fn, pw in _parts:
                    planes.extend(fn(pl)[:pw])
                return _fit(planes, _w)

            return concat

        if isinstance(expr, ast.Repeat):
            times = comp._static_int(expr.count)
            inner_width = max(comp._self_width(expr.inner), 1)
            inner = self._eval(expr.inner, inner_width)

            def repeat(pl, _f=inner, _n=times, _iw=inner_width, _w=width,
                       _fit=self._fit):
                unit = _f(pl)[:_iw]
                return _fit(unit * _n, _w)

            return repeat

        if isinstance(expr, ast.Index):
            name = comp._base_name(expr.base)
            if name in comp.mem_of or not comp._is_static(expr.index):
                raise _Unsliceable("dynamic or memory index")
            slot = comp._slot(name)
            self.reads.add(slot)
            bit = comp._static_int(expr.index)
            own = max(comp.widths[slot], 1)

            def read_bit(pl, _s=slot, _b=bit, _own=own, _w=width):
                head = pl[_s][_b] if 0 <= _b < _own else 0
                return [head] + [0] * (_w - 1)

            return read_bit

        if isinstance(expr, ast.PartSelect):
            name = comp._base_name(expr.base)
            if name in comp.mem_of:
                raise _Unsliceable("memory part-select")
            slot = comp._slot(name)
            self.reads.add(slot)
            msb = comp._static_int(expr.msb)
            lsb = comp._static_int(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            fit = self._fit

            def part(pl, _s=slot, _lo=lsb, _hi=msb + 1, _w=width, _fit=fit):
                return _fit(pl[_s][_lo:_hi], _w)

            return part

        if isinstance(expr, ast.IndexedPartSelect):
            name = comp._base_name(expr.base)
            if name in comp.mem_of or not comp._is_static(expr.start):
                raise _Unsliceable("dynamic indexed part-select")
            slot = comp._slot(name)
            self.reads.add(slot)
            sel_width = comp._static_int(expr.width)
            lo = comp._static_int(expr.start)
            if not expr.ascending:
                lo = lo - sel_width + 1
            lo = max(lo, 0)
            fit = self._fit

            def ipart(pl, _s=slot, _lo=lo, _hi=lo + sel_width, _w=width,
                      _fit=fit):
                return _fit(pl[_s][_lo:_hi], _w)

            return ipart

        raise _Unsliceable(f"cannot plane-lower {type(expr).__name__}")

    def _eval_unary(self, expr: ast.Unary, width: int):
        comp = self.comp
        full = self.full
        op = expr.op
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            operand_width = max(comp._self_width(expr.operand), 1)
            fn = self._eval(expr.operand, operand_width)
            invert = full if op.startswith("~") or op == "^~" else 0

            if op in ("&", "~&"):
                def and_reduce(pl, _f=fn, _w=operand_width, _inv=invert,
                               _full=full, _pad=width - 1):
                    planes = _f(pl)
                    acc = _full
                    for i in range(_w):
                        acc &= planes[i]
                    return [acc ^ _inv] + [0] * _pad

                return and_reduce
            if op in ("|", "~|"):
                def or_reduce(pl, _f=fn, _w=operand_width, _inv=invert,
                              _pad=width - 1):
                    planes = _f(pl)
                    acc = 0
                    for i in range(_w):
                        acc |= planes[i]
                    return [acc ^ _inv] + [0] * _pad

                return or_reduce

            def xor_reduce(pl, _f=fn, _w=operand_width, _inv=invert,
                           _pad=width - 1):
                planes = _f(pl)
                acc = 0
                for i in range(_w):
                    acc ^= planes[i]
                return [acc ^ _inv] + [0] * _pad

            return xor_reduce
        if op == "!":
            nonzero = self._bool(expr.operand)

            def lnot(pl, _f=nonzero, _full=full, _pad=width - 1):
                return [_f(pl) ^ _full] + [0] * _pad

            return lnot
        _, fn = self._operand(expr.operand, width)
        if op == "~":
            def bnot(pl, _f=fn, _w=width, _full=full):
                planes = _f(pl)
                return [planes[i] ^ _full for i in range(_w)]

            return bnot
        if op == "-":
            add = self._add_planes

            def neg(pl, _f=fn, _w=width, _full=full, _add=add):
                planes = _f(pl)
                inv = [planes[i] ^ _full for i in range(_w)]
                return _add(inv, [0] * _w, _full, _full)

            return neg
        if op == "+":
            fit = self._fit
            return lambda pl, _f=fn, _w=width, _fit=fit: _fit(_f(pl), _w)
        raise _Unsliceable(f"unary operator {op!r}")

    def _eval_binary(self, expr: ast.Binary, width: int):
        comp = self.comp
        full = self.full
        op = expr.op
        if op in ("&&", "||"):
            lhs = self._bool(expr.lhs)
            rhs = self._bool(expr.rhs)
            if op == "&&":
                def land(pl, _a=lhs, _b=rhs, _pad=width - 1):
                    return [_a(pl) & _b(pl)] + [0] * _pad

                return land

            def lor(pl, _a=lhs, _b=rhs, _pad=width - 1):
                return [_a(pl) | _b(pl)] + [0] * _pad

            return lor
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            cmp_width = max(
                comp._self_width(expr.lhs), comp._self_width(expr.rhs), 1
            )
            signed = comp._is_signed(expr.lhs) and comp._is_signed(expr.rhs)
            _, lhs = self._operand(expr.lhs, cmp_width)
            _, rhs = self._operand(expr.rhs, cmp_width)
            if op in ("==", "!=", "===", "!=="):
                invert = full if op in ("==", "===") else 0

                def equality(pl, _a=lhs, _b=rhs, _w=cmp_width, _inv=invert,
                             _full=full, _pad=width - 1):
                    a = _a(pl)
                    b = _b(pl)
                    diff = 0
                    for i in range(_w):
                        diff |= a[i] ^ b[i]
                    return [(diff ^ _full) if _inv else diff] + [0] * _pad

                # `diff` is the lanes-differ mask; == wants its inverse.
                if invert:
                    return equality

                def inequality(pl, _a=lhs, _b=rhs, _w=cmp_width,
                               _pad=width - 1):
                    a = _a(pl)
                    b = _b(pl)
                    diff = 0
                    for i in range(_w):
                        diff |= a[i] ^ b[i]
                    return [diff] + [0] * _pad

                return inequality
            swap = op in (">", "<=")
            negate = op in ("<=", ">=")
            less = self._less_planes

            def ordering(pl, _a=lhs, _b=rhs, _w=cmp_width, _swap=swap,
                         _neg=negate, _signed=signed, _full=full,
                         _less=less, _pad=width - 1):
                a = _a(pl)[:_w]
                b = _b(pl)[:_w]
                if _signed:
                    # two's-complement order == unsigned order with the
                    # sign plane flipped
                    a = a[:-1] + [a[-1] ^ _full]
                    b = b[:-1] + [b[-1] ^ _full]
                if _swap:
                    a, b = b, a
                lt = _less(a, b, _full)
                if _neg:
                    lt ^= _full
                return [lt] + [0] * _pad

            return ordering
        if op in ("<<", ">>", "<<<", ">>>"):
            if not comp._is_static(expr.rhs):
                raise _Unsliceable("dynamic shift amount")
            amount = comp._static_int(expr.rhs)
            _, lhs = self._operand(expr.lhs, width)
            if op in ("<<", "<<<"):
                k = min(amount, width)

                def shl(pl, _f=lhs, _k=k, _w=width):
                    planes = _f(pl)
                    return [0] * _k + planes[: _w - _k]

                return shl
            arith = op == ">>>" and comp._is_signed(expr.lhs)
            k = min(amount, width)

            def shr(pl, _f=lhs, _k=k, _w=width, _arith=arith):
                planes = _f(pl)[:_w]
                fill = planes[-1] if (_arith and planes) else 0
                return planes[_k:] + [fill] * _k

            return shr
        if op in ("+", "-"):
            _, lhs = self._operand(expr.lhs, width)
            _, rhs = self._operand(expr.rhs, width)
            add = self._add_planes

            if op == "+":
                def plus(pl, _a=lhs, _b=rhs, _w=width, _full=full, _add=add):
                    return _add(_a(pl)[:_w], _b(pl)[:_w], 0, _full)

                return plus

            def minus(pl, _a=lhs, _b=rhs, _w=width, _full=full, _add=add):
                b = _b(pl)
                inv = [b[i] ^ _full for i in range(_w)]
                return _add(_a(pl)[:_w], inv, _full, _full)

            return minus
        if op in ("&", "|", "^", "~^", "^~"):
            _, lhs = self._operand(expr.lhs, width)
            _, rhs = self._operand(expr.rhs, width)
            if op == "&":
                def band(pl, _a=lhs, _b=rhs, _w=width):
                    a, b = _a(pl), _b(pl)
                    return [a[i] & b[i] for i in range(_w)]

                return band
            if op == "|":
                def bor(pl, _a=lhs, _b=rhs, _w=width):
                    a, b = _a(pl), _b(pl)
                    return [a[i] | b[i] for i in range(_w)]

                return bor
            if op == "^":
                def bxor(pl, _a=lhs, _b=rhs, _w=width):
                    a, b = _a(pl), _b(pl)
                    return [a[i] ^ b[i] for i in range(_w)]

                return bxor

            def bxnor(pl, _a=lhs, _b=rhs, _w=width, _full=full):
                a, b = _a(pl), _b(pl)
                return [(a[i] ^ b[i]) ^ _full for i in range(_w)]

            return bxnor
        raise _Unsliceable(f"binary operator {op!r}")


# ---------------------------------------------------------------------------
# compiled image
# ---------------------------------------------------------------------------


class BitsliceDesign(_batch.BatchDesign):
    """Bit-plane execution image wrapping an int64 :class:`BatchDesign`.

    Carries the full int64 image in :attr:`base` (every metadata field is
    mirrored onto this object, so facade checks like
    :func:`repro.sim.batch.is_stateless_comb` read it directly) plus the
    plane schedule: per levelized-schedule position, either a plane
    kernel or a bridge entry running the int64 node with lazy
    plane<->lane-array conversion at the boundary.
    """

    __slots__ = ("base", "plane_sched", "seq_effects", "plane_node_count")

    def __init__(self) -> None:  # noqa: D107 - populated by compile_bitslice
        super().__init__()
        self.base: Optional[_batch.BatchDesign] = None
        #: per topo position: ("plane", slot, width, fn, read_slots) or
        #: ("bridge", run, read_slots, write_slots)
        self.plane_sched: Tuple = ()
        #: per seq block: (read_slots, write_slots) for boundary sync
        self.seq_effects: Tuple = ()
        self.plane_node_count = 0


def compile_bitslice(design: Design, n_lanes: int) -> _batch.BatchDesign:
    """Lower ``design`` to the bit-plane image (or its int64 image).

    The int64 image always compiles first — it provides verdict-exact
    execution for every bridged node and the whole-design fallback; its
    :class:`~repro.sim.batch.UnbatchableDesign` outcomes propagate
    unchanged.  Returns the plain int64 image (counting
    ``bitslice.fallback_int64``) when not a single assign plane-lowers.
    """
    base = _batch.batch_design(design, n_lanes, "int64")
    comp = _Compiler(design)
    emitter = _PlaneEmitter(comp, n_lanes)
    plane_nodes: Dict[int, tuple] = {}
    for i, assign in enumerate(design.comb_assigns):
        target = assign.target
        if not isinstance(target, ast.Identifier):
            continue
        try:
            slot = comp._slot(target.name)
            w = max(comp.widths[slot], 1)
            emitter.begin_node()
            _, fn = emitter.expr(assign.value, comp.widths[slot])
            plane_nodes[i] = (slot, w, fn, frozenset(emitter.reads))
        except (_Unsliceable, UncompilableDesign):
            continue
    if not plane_nodes:
        obs.count("bitslice.fallback_int64")
        return base

    node_reads: List[Set[int]] = [set() for _ in range(len(base.nodes))]
    node_writes: List[Set[int]] = [set() for _ in range(len(base.nodes))]
    for ps, nodes in base.readers.items():
        for node in nodes:
            node_reads[node].add(ps)
    for ps, nodes in base.writers.items():
        for node in nodes:
            node_writes[node].add(ps)

    sched: List[tuple] = []
    for i in base.topo:
        entry = plane_nodes.get(i)
        if entry is not None:
            sched.append(("plane",) + entry)
        else:
            sched.append((
                "bridge", base.nodes[i],
                tuple(sorted(node_reads[i])),
                tuple(sorted(node_writes[i])),
            ))

    seq_effects = []
    for block in design.seq_blocks:
        reads: Set[int] = set()
        writes: Set[int] = set()
        comp._stmt_effects(block.body, set(), reads, writes)
        # Overlay commits read current state for inactive lanes, so
        # written slots must be boundary-fresh too.
        seq_effects.append((
            tuple(sorted(reads | writes)), tuple(sorted(writes)),
        ))

    bsd = BitsliceDesign()
    for klass in type(base).__mro__:
        for name in getattr(klass, "__slots__", ()):
            setattr(bsd, name, getattr(base, name))
    bsd.base = base
    bsd.representation = "bitslice"
    bsd.plane_sched = tuple(sched)
    bsd.seq_effects = tuple(seq_effects)
    bsd.plane_node_count = len(plane_nodes)
    obs.count("bitslice.nodes_plane", len(plane_nodes))
    obs.count("bitslice.nodes_bridged", len(base.nodes) - len(plane_nodes))
    return bsd


# ---------------------------------------------------------------------------
# simulator
# ---------------------------------------------------------------------------


class BitsliceSimulator(_batch.BatchSimulator):
    """Runs a :class:`BitsliceDesign`: plane kernels + int64 bridges.

    ``self.st`` remains the int64 lane-array state (so every inherited
    view — ``peek``/``peek_lanes``/``state``/pokes — works unchanged
    once synchronized), while ``self.planes`` holds the bit-plane
    transposition.  Two staleness sets make the dual representation
    lazy: a slot is packed to planes or unpacked to lane arrays only
    when the other side actually reads it, so pure-control designs pay
    one transpose per poked input and per peeked output, not per node.
    """

    def __init__(self, design: Design,
                 bd: Optional[_batch.BatchDesign] = None,
                 max_settle_rounds: Optional[int] = None):
        if bd is None:
            bd = _batch.batch_design(design, 1, "bitslice")
        if not isinstance(bd, BitsliceDesign):
            raise SimulationError(
                "design did not plane-lower; run BatchSimulator on its "
                "int64 image instead"
            )
        n_lanes = bd.n_lanes
        self.design = design
        self.bdesign = bd
        self.n_lanes = n_lanes
        self._full = (1 << n_lanes) - 1
        self.st: List[np.ndarray] = [
            np.zeros(n_lanes, dtype=_I64) for _ in range(bd.n_signals)
        ]
        self.mem_data: List[np.ndarray] = [
            np.zeros((depth, n_lanes), dtype=_I64) for depth in bd.mem_depths
        ]
        self.planes: List[List[int]] = [
            [0] * max(w, 1) for w in bd.widths
        ]
        #: slots whose authoritative value lives in ``st`` (planes stale)
        self._plane_stale: Set[int] = set()
        #: slots whose authoritative value lives in ``planes``
        self._lanes_stale: Set[int] = set()
        self._max_rounds = max_settle_rounds or (2 * bd.comb_count + 16)
        self.stat_settles = 0
        self.stat_plane_nodes = 0
        self.stat_bridge_nodes = 0
        # Initial statements bridge wholesale (they run once).
        for body in bd.initial:
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            nba: List[tuple] = []
            body(self.st, self.mem_data, overlay, mem_overlay, nba, bd.ones)
            _batch._commit_lane_overlays(
                self.st, self.mem_data, overlay, mem_overlay, nba,
                bd.widths, bd.lane_ix, bd.shift_cap,
            )
        if bd.initial:
            self._plane_stale.update(range(bd.n_signals))
        self.settle()

    # -- representation sync -------------------------------------------------

    def _fresh_planes(self, slot: int) -> List[int]:
        if slot in self._plane_stale:
            self.planes[slot] = _pack_lanes(
                self.st[slot], self.bdesign.widths[slot], self.n_lanes
            )
            self._plane_stale.discard(slot)
        return self.planes[slot]

    def _fresh_lanes(self, slot: int) -> np.ndarray:
        if slot in self._lanes_stale:
            self.st[slot] = _unpack_planes(self.planes[slot], self.n_lanes)
            self._lanes_stale.discard(slot)
        return self.st[slot]

    def _sync_all_lanes(self) -> None:
        for slot in tuple(self._lanes_stale):
            self._fresh_lanes(slot)

    # -- observable views (inherited bodies over synced state) ---------------

    @property
    def state(self):
        self._sync_all_lanes()
        return _batch.BatchSimulator.state.fget(self)

    def peek(self, name: str):
        slot = self.bdesign.slot_of.get(name)
        if slot is not None:
            self._fresh_lanes(slot)
        return super().peek(name)

    def peek_lanes(self, name: str) -> np.ndarray:
        slot = self.bdesign.slot_of.get(name)
        if slot is not None:
            self._fresh_lanes(slot)
        return super().peek_lanes(name)

    # -- poke hooks ----------------------------------------------------------

    def _poke_pending(self, name: str, value) -> bool:
        slot = self.bdesign.slot_of.get(name)
        if slot is not None:
            self._fresh_lanes(slot)
        return super()._poke_pending(name, value)

    def _poke_apply(self, name: str, value) -> None:
        super()._poke_apply(name, value)
        slot = self.bdesign.slot_of[name]
        self._plane_stale.add(slot)
        self._lanes_stale.discard(slot)

    # -- settle / edges ------------------------------------------------------

    def settle(self) -> None:
        """One plane-schedule sweep, bridging int64 nodes as scheduled."""
        planes = self.planes
        st = self.st
        mems = self.mem_data
        plane_stale = self._plane_stale
        lanes_stale = self._lanes_stale
        plane_nodes = 0
        bridge_nodes = 0
        for entry in self.bdesign.plane_sched:
            if entry[0] == "plane":
                _, slot, w, fn, reads = entry
                if plane_stale:
                    for r in reads:
                        if r in plane_stale:
                            self._fresh_planes(r)
                out = fn(planes)
                planes[slot] = out if len(out) == w else out[:w]
                lanes_stale.add(slot)
                plane_stale.discard(slot)
                plane_nodes += 1
            else:
                _, run, reads, writes = entry
                if lanes_stale:
                    for r in reads:
                        if r in lanes_stale:
                            self._fresh_lanes(r)
                    for ws in writes:
                        if ws in lanes_stale:
                            self._fresh_lanes(ws)
                run(st, mems)
                for ws in writes:
                    if ws < self.bdesign.n_signals:
                        plane_stale.add(ws)
                        lanes_stale.discard(ws)
                bridge_nodes += 1
        self.stat_settles += 1
        self.stat_plane_nodes += plane_nodes
        self.stat_bridge_nodes += bridge_nodes

    def _trigger_snapshot(self) -> List[int]:
        # Trigger bits are single plane ints: edge detection over all
        # lanes is a handful of int ops instead of array compares.
        return [
            self._fresh_planes(s)[0] for s in self.bdesign.trigger_slots
        ]

    def _fire_edges(self, snapshot: List[int]) -> None:
        bd = self.bdesign
        full = self._full
        for _ in range(self._max_rounds):
            current = [
                self._fresh_planes(s)[0] for s in bd.trigger_slots
            ]
            fired: List[tuple] = []
            for j, (triggers, body) in enumerate(bd.seq):
                lanes = 0
                for want, ti in triggers:
                    changed = snapshot[ti] ^ current[ti]
                    level = current[ti] if want else (current[ti] ^ full)
                    lanes |= changed & level
                if lanes:
                    fired.append((body, lanes, bd.seq_effects[j]))
            if not fired:
                return
            self._run_bridged_seq(fired)
            self.settle()
            snapshot = current
        raise SimulationError(
            "edge events failed to quiesce (oscillating clock loop?)"
        )

    def _run_bridged_seq(self, fired) -> None:
        bd = self.bdesign
        st = self.st
        mems = self.mem_data
        written: Set[int] = set()
        for _, _, (reads, writes) in fired:
            for r in reads:
                if r in self._lanes_stale:
                    self._fresh_lanes(r)
            written.update(writes)
        pending: List[tuple] = []
        for body, lanes, _ in fired:
            pred = _mask_lanes(lanes, self.n_lanes)
            overlay: Dict[int, np.ndarray] = {}
            mem_overlay: Dict[int, np.ndarray] = {}
            body(st, mems, overlay, mem_overlay, pending, pred)
            _batch._commit_lane_overlays(
                st, mems, overlay, mem_overlay, None, bd.widths, bd.lane_ix,
                bd.shift_cap,
            )
        if pending:
            _batch._commit_nba_lanes(
                st, mems, pending, bd.widths, bd.lane_ix, bd.shift_cap
            )
        for ws in written:
            if ws < bd.n_signals:
                self._plane_stale.add(ws)
                self._lanes_stale.discard(ws)
