"""Toggle/level coverage instrumentation for any simulator backend.

Stimulus depth used to be an unmeasured constant: a candidate "passed" if
it survived ``stimulus_cycles`` random vectors, with no way to tell
whether those vectors ever exercised the design.  This module makes
stimulus a *measured* quantity.  A :class:`CoverageTracker` observes a
simulator's flat signal state once per cycle and accumulates, per signal
bit, four coverage points:

* **level-0 / level-1** — the bit has been observed at 0 / at 1;
* **rose / fell** — the bit has been observed transitioning 0→1 / 1→0
  between two consecutive observations (toggle coverage).

The tracker is backend-agnostic by construction: it reads values through
``sim.peek`` (scalar backends) or ``sim.peek_lanes`` (lane-parallel
backends, where a point covered in *any* lane counts), so the interp,
compiled, and batch backends report identical coverage for identical
stimulus — enforced by ``tests/test_cegis.py``.

Saturation — :meth:`CoverageTracker.saturated` — is the signal consumers
act on: once ``window`` consecutive observations add no new coverage
point, further identical-distribution stimulus is overwhelmingly
repeating already-exercised behaviour.  :mod:`repro.vereval.cegis` uses
the saturation cycle two ways: measure-only (report how deep stimulus
*needed* to be) and, under ``REPRO_SIM_COVERAGE_STIMULUS=1``, truncating
golden-stimulus recording at saturation so every later candidate check
pays only the measured depth.

Counters (:mod:`repro.obs`): ``sim.coverage.observes``,
``sim.coverage.new_points``, ``sim.coverage.saturated_runs``,
``sim.coverage.cycles_saved``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.sim.elaborate import Design

__all__ = [
    "CoverageTracker",
    "POINTS_PER_BIT",
]

#: level-0, level-1, rose, fell — the four coverage points per signal bit
POINTS_PER_BIT = 4


class CoverageTracker:
    """Per-bit level + toggle coverage over one design's signal set.

    ``signals`` restricts coverage to the named signals (default: every
    flat signal of the design); ``exclude`` drops names from that set —
    harness callers exclude the clock and reset, whose post-tick values
    are protocol constants, not design behaviour.  Memories are not
    covered (their state is exercised through the read/write port
    signals, which are).

    Drive it with one :meth:`observe_sim` per observation point —
    typically once after reset (the level baseline; transitions need a
    previous value) and once per stimulus cycle after the tick.

    >>> from repro.sim import Simulator, elaborate
    >>> from repro.verilog import parse_source
    >>> design = elaborate(parse_source(
    ...     "module inv(input a, output y); assign y = ~a; endmodule"),
    ...     "inv")
    >>> sim = Simulator(design)
    >>> cov = CoverageTracker(design)
    >>> cov.observe_sim(sim)              # baseline levels: a=0, y=1
    2
    >>> sim.poke("a", 1)
    >>> cov.observe_sim(sim)              # a rose + y fell + new levels
    4
    >>> sim.poke("a", 0)
    >>> cov.observe_sim(sim)              # a fell + y rose: all covered
    2
    >>> cov.covered_points, cov.total_points, cov.fraction()
    (8, 8, 1.0)
    """

    __slots__ = (
        "names", "widths", "_full", "seen0", "seen1", "rose", "fell",
        "_prev", "cycles", "last_new_cycle", "covered_points",
        "total_points",
    )

    def __init__(
        self,
        design: Design,
        signals: Optional[Iterable[str]] = None,
        exclude: Iterable[str] = (),
    ) -> None:
        dropped = {name for name in exclude if name}
        if signals is None:
            names = [n for n in design.signals if n not in dropped]
        else:
            names = [n for n in signals if n not in dropped]
            unknown = [n for n in names if n not in design.signals]
            if unknown:
                raise ValueError(f"unknown coverage signals: {unknown}")
        self.names: Tuple[str, ...] = tuple(names)
        self.widths: Tuple[int, ...] = tuple(
            design.signals[n].width for n in self.names
        )
        self._full: Tuple[int, ...] = tuple(
            (1 << w) - 1 for w in self.widths
        )
        zero = [0] * len(self.names)
        self.seen0: List[int] = list(zero)
        self.seen1: List[int] = list(zero)
        self.rose: List[int] = list(zero)
        self.fell: List[int] = list(zero)
        #: one previous-value list per lane, grown lazily on first observe
        self._prev: Optional[List[List[int]]] = None
        #: observations so far (1-based cycle counter)
        self.cycles = 0
        #: last observation that covered a new point; 0 = none yet
        self.last_new_cycle = 0
        self.covered_points = 0
        self.total_points = POINTS_PER_BIT * sum(self.widths)

    # -- observation ---------------------------------------------------------

    def observe_sim(self, sim) -> int:
        """Observe the simulator's current signal state; new-point count.

        Scalar backends read through ``peek``; lane-parallel simulators
        (``n_lanes > 1``) read per-lane columns through ``peek_lanes``,
        and each lane advances its own transition history.
        """
        if getattr(sim, "n_lanes", 1) > 1:
            peek_lanes = sim.peek_lanes
            return self.observe(
                [[int(v) for v in peek_lanes(name)] for name in self.names]
            )
        peek = sim.peek
        return self.observe([[int(peek(name))] for name in self.names])

    def observe_values(self, values: Mapping[str, int]) -> int:
        """Observe one name-keyed scalar snapshot (testing convenience)."""
        return self.observe([[int(values[name])] for name in self.names])

    def observe(self, columns: Sequence[Sequence[int]]) -> int:
        """Observe one value column per signal (``columns[i][lane]``).

        Returns the number of coverage points newly covered by this
        observation, across all lanes.
        """
        self.cycles += 1
        prev = self._prev
        if prev is None:
            n_lanes = len(columns[0]) if columns else 1
            prev = self._prev = [
                [0] * len(self.names) for _ in range(n_lanes)
            ]
            first = True
        else:
            first = False
        new_bits = 0
        seen0, seen1 = self.seen0, self.seen1
        rose, fell = self.rose, self.fell
        full = self._full
        for lane, lane_prev in enumerate(prev):
            for i, column in enumerate(columns):
                value = column[lane]
                mask = full[i]
                fresh = (value & ~seen1[i])
                if fresh:
                    seen1[i] |= fresh
                    new_bits += fresh.bit_count()
                fresh = (~value & mask & ~seen0[i])
                if fresh:
                    seen0[i] |= fresh
                    new_bits += fresh.bit_count()
                if not first:
                    before = lane_prev[i]
                    fresh = (~before & value & ~rose[i])
                    if fresh:
                        rose[i] |= fresh
                        new_bits += fresh.bit_count()
                    fresh = (before & ~value & mask & ~fell[i])
                    if fresh:
                        fell[i] |= fresh
                        new_bits += fresh.bit_count()
                lane_prev[i] = value
        obs.count("sim.coverage.observes")
        if new_bits:
            self.covered_points += new_bits
            self.last_new_cycle = self.cycles
            obs.count("sim.coverage.new_points", new_bits)
        return new_bits

    # -- reporting -----------------------------------------------------------

    def fraction(self) -> float:
        """Covered fraction of all points (1.0 for a point-free design)."""
        if not self.total_points:
            return 1.0
        return self.covered_points / self.total_points

    def saturated(self, window: int) -> bool:
        """True once ``window`` consecutive observations added nothing.

        Requires at least one observation; a tracker that has covered
        nothing at all still saturates (a design whose signals never
        move is fully measured by any window of observations).
        """
        if self.cycles == 0:
            return False
        return (self.cycles - self.last_new_cycle) >= window

    @property
    def saturation_cycle(self) -> int:
        """The (1-based) observation that covered the last new point."""
        return self.last_new_cycle

    def summary(self) -> Dict[str, float]:
        """Plain-dict coverage report (what benches persist)."""
        return {
            "total_points": self.total_points,
            "covered_points": self.covered_points,
            "fraction": self.fraction(),
            "cycles": self.cycles,
            "saturation_cycle": self.last_new_cycle,
        }

    def uncovered(self) -> Dict[str, Dict[str, int]]:
        """Per-signal masks of the points still uncovered (debugging)."""
        report: Dict[str, Dict[str, int]] = {}
        for i, name in enumerate(self.names):
            mask = self._full[i]
            missing = {
                "level0": mask & ~self.seen0[i],
                "level1": mask & ~self.seen1[i],
                "rose": mask & ~self.rose[i],
                "fell": mask & ~self.fell[i],
            }
            if any(missing.values()):
                report[name] = missing
        return report
