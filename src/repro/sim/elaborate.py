"""Elaboration: parsed AST -> flat simulatable design.

Elaboration resolves parameters to constants, computes signal widths,
flattens the module hierarchy (instance signals get dotted prefixes such as
``u0.count``), and converts port connections into continuous-assignment
glue.  The output :class:`Design` contains only flat signals, memories, and
processes — everything the runtime in :mod:`repro.sim.simulator` needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError
from repro.verilog import ast
from repro.sim.eval import eval_constant

_MAX_DEPTH = 32


@dataclass
class Signal:
    """A flat scalar/vector signal in the elaborated design."""

    name: str
    width: int
    signed: bool = False
    kind: str = "wire"  # wire | reg | integer
    direction: Optional[str] = None  # input | output | None (internal)
    lsb: int = 0  # declared LSB index ([7:4] has lsb 4)


@dataclass
class Memory:
    """A flat one-dimensional memory (``reg [W-1:0] mem [0:D-1]``)."""

    name: str
    width: int
    depth: int
    base: int = 0  # lowest declared index


@dataclass
class CombAssign:
    """Continuous assignment (or instance-port glue)."""

    target: ast.Expr
    value: ast.Expr


@dataclass
class CombBlock:
    """Combinational ``always`` block (``@(*)`` or all-level sensitivity)."""

    body: ast.Stmt


@dataclass
class SeqBlock:
    """Edge-triggered ``always`` block."""

    triggers: List[Tuple[str, str]]  # (posedge|negedge, flat signal name)
    body: ast.Stmt


@dataclass
class Design:
    """A fully elaborated, flattened design."""

    top: str
    signals: Dict[str, Signal] = field(default_factory=dict)
    memories: Dict[str, Memory] = field(default_factory=dict)
    comb_assigns: List[CombAssign] = field(default_factory=list)
    comb_blocks: List[CombBlock] = field(default_factory=list)
    seq_blocks: List[SeqBlock] = field(default_factory=list)
    initial_stmts: List[ast.Stmt] = field(default_factory=list)
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def inputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.direction == "input"]

    @property
    def outputs(self) -> List[Signal]:
        return [s for s in self.signals.values() if s.direction == "output"]

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise ElaborationError(f"no signal named {name!r}") from None

    def __getstate__(self):
        # The compiled-backend caches (repro.sim.compile, repro.sim.batch)
        # are closures and cannot pickle; designs shipped to pool workers
        # recompile there (or hit the repro.sim.cache disk cache).
        state = dict(self.__dict__)
        state.pop("_compiled", None)
        state.pop("_batch", None)
        return state


class _Rewriter:
    """Rewrites identifiers in an AST: params fold to constants, signal
    names gain the instance prefix, and nonzero-LSB selects are
    renormalized to zero-based indices."""

    def __init__(
        self,
        params: Dict[str, int],
        rename: Dict[str, str],
        lsb_offsets: Dict[str, int],
    ) -> None:
        self._params = params
        self._rename = rename
        self._lsb = lsb_offsets

    # -- expressions ------------------------------------------------------

    def expr(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Number) or isinstance(node, ast.StringLiteral):
            return node
        if isinstance(node, ast.Identifier):
            if node.name in self._params:
                return ast.Number(line=node.line, value=self._params[node.name])
            return ast.Identifier(line=node.line, name=self._map(node.name))
        if isinstance(node, ast.Unary):
            return dataclasses.replace(node, operand=self.expr(node.operand))
        if isinstance(node, ast.Binary):
            return dataclasses.replace(
                node, lhs=self.expr(node.lhs), rhs=self.expr(node.rhs)
            )
        if isinstance(node, ast.Ternary):
            return dataclasses.replace(
                node,
                cond=self.expr(node.cond),
                then=self.expr(node.then),
                other=self.expr(node.other),
            )
        if isinstance(node, ast.Concat):
            return dataclasses.replace(
                node, parts=[self.expr(p) for p in node.parts]
            )
        if isinstance(node, ast.Repeat):
            inner = self.expr(node.inner)
            if not isinstance(inner, ast.Concat):
                inner = ast.Concat(line=node.line, parts=[inner])
            return dataclasses.replace(
                node, count=self.expr(node.count), inner=inner
            )
        if isinstance(node, ast.Index):
            return dataclasses.replace(
                node,
                base=self.expr(node.base),
                index=self._shift_index(node.base, self.expr(node.index)),
            )
        if isinstance(node, ast.PartSelect):
            return dataclasses.replace(
                node,
                base=self.expr(node.base),
                msb=self._shift_index(node.base, self.expr(node.msb)),
                lsb=self._shift_index(node.base, self.expr(node.lsb)),
            )
        if isinstance(node, ast.IndexedPartSelect):
            return dataclasses.replace(
                node,
                base=self.expr(node.base),
                start=self._shift_index(node.base, self.expr(node.start)),
                width=self.expr(node.width),
            )
        if isinstance(node, ast.SystemCall):
            return dataclasses.replace(
                node, args=[self.expr(a) for a in node.args]
            )
        raise ElaborationError(f"cannot rewrite {type(node).__name__}")

    def _map(self, name: str) -> str:
        try:
            return self._rename[name]
        except KeyError:
            raise ElaborationError(f"undeclared identifier {name!r}") from None

    def _shift_index(self, base: ast.Expr, index: ast.Expr) -> ast.Expr:
        """Subtract the declared LSB offset of the selected signal."""
        if not isinstance(base, ast.Identifier):
            return index
        offset = self._lsb.get(base.name, 0)
        if offset == 0:
            return index
        return ast.Binary(
            line=index.line,
            op="-",
            lhs=index,
            rhs=ast.Number(line=index.line, value=offset),
        )

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> ast.Stmt:
        if isinstance(node, ast.Block):
            return dataclasses.replace(
                node, stmts=[self.stmt(s) for s in node.stmts]
            )
        if isinstance(node, ast.Assign):
            return dataclasses.replace(
                node, target=self.expr(node.target), value=self.expr(node.value)
            )
        if isinstance(node, ast.If):
            return dataclasses.replace(
                node,
                cond=self.expr(node.cond),
                then=self.stmt(node.then),
                other=self.stmt(node.other) if node.other else None,
            )
        if isinstance(node, ast.Case):
            items = [
                ast.CaseItem(
                    labels=[self.expr(l) for l in item.labels],
                    body=self.stmt(item.body),
                )
                for item in node.items
            ]
            return dataclasses.replace(
                node, subject=self.expr(node.subject), items=items
            )
        if isinstance(node, ast.For):
            init = self.stmt(node.init)
            step = self.stmt(node.step)
            assert isinstance(init, ast.Assign) and isinstance(step, ast.Assign)
            return dataclasses.replace(
                node,
                init=init,
                cond=self.expr(node.cond),
                step=step,
                body=self.stmt(node.body),
            )
        if isinstance(node, ast.NullStmt):
            return node
        if isinstance(node, ast.SystemTaskCall):
            # Display/monitor tasks are inert in this simulator; keep the
            # node (with unresolved args dropped) so execution can skip it.
            return ast.SystemTaskCall(line=node.line, name=node.name, args=[])
        raise ElaborationError(f"cannot rewrite statement {type(node).__name__}")


def _resolve_params(
    module: ast.Module, overrides: Dict[str, int]
) -> Dict[str, int]:
    """Evaluate parameter declarations in order, applying overrides."""
    env: Dict[str, int] = {}
    for decl in module.params:
        if not decl.local and decl.name in overrides:
            env[decl.name] = overrides[decl.name]
        else:
            try:
                env[decl.name] = eval_constant(decl.value, env)
            except Exception as exc:
                raise ElaborationError(
                    f"module {module.name!r}: cannot evaluate parameter "
                    f"{decl.name!r}: {exc}"
                ) from None
    unknown = set(overrides) - {p.name for p in module.params if not p.local}
    if unknown:
        raise ElaborationError(
            f"module {module.name!r} has no parameter(s) "
            f"{', '.join(sorted(unknown))}"
        )
    return env


def _range_geometry(
    rng: Optional[ast.Range], params: Dict[str, int], what: str
) -> Tuple[int, int]:
    """Return (width, lsb) for a declared range."""
    if rng is None:
        return 1, 0
    try:
        msb = eval_constant(rng.msb, params)
        lsb = eval_constant(rng.lsb, params)
    except Exception as exc:
        raise ElaborationError(f"cannot evaluate range of {what}: {exc}") from None
    width = abs(msb - lsb) + 1
    return width, min(msb, lsb)


class _Elaborator:
    def __init__(self, source: ast.SourceFile) -> None:
        self._source = source

    def elaborate(
        self, top: str, overrides: Optional[Dict[str, int]] = None
    ) -> Design:
        module = self._source.module(top)
        if module is None:
            raise ElaborationError(f"no module named {top!r}")
        design = Design(top=top)
        self._instantiate(
            design, module, prefix="", overrides=dict(overrides or {}), depth=0,
            is_top=True,
        )
        return design

    # -- per-instance elaboration -----------------------------------------

    def _instantiate(
        self,
        design: Design,
        module: ast.Module,
        prefix: str,
        overrides: Dict[str, int],
        depth: int,
        is_top: bool,
    ) -> Dict[str, str]:
        """Elaborate one instance; returns local-name -> flat-name map."""
        if depth > _MAX_DEPTH:
            raise ElaborationError(
                f"instantiation depth exceeds {_MAX_DEPTH} "
                f"(recursive hierarchy at {module.name!r}?)"
            )
        params = _resolve_params(module, overrides)
        if is_top:
            design.params = dict(params)

        rename: Dict[str, str] = {}
        lsb_offsets: Dict[str, int] = {}

        # Ports and nets become flat signals; memories are split out.
        declared: Dict[str, Signal] = {}
        port_dirs: Dict[str, str] = {}
        for port in module.ports:
            width, lsb = _range_geometry(
                port.range, params, f"port {port.name!r}"
            )
            flat = prefix + port.name
            declared[port.name] = Signal(
                name=flat,
                width=width,
                signed=port.signed,
                kind="reg" if port.is_reg else "wire",
                direction=port.direction if is_top else None,
                lsb=lsb,
            )
            port_dirs[port.name] = port.direction
            rename[port.name] = flat
            lsb_offsets[port.name] = lsb

        init_assigns: List[Tuple[str, ast.Expr]] = []
        for net in module.nets:
            if net.name in declared:
                # ``output reg q;`` style re-declaration refines the port.
                if port_dirs.get(net.name):
                    existing = declared[net.name]
                    if net.kind == "reg":
                        existing.kind = "reg"
                    if net.range is not None:
                        width, lsb = _range_geometry(
                            net.range, params, f"net {net.name!r}"
                        )
                        existing.width = width
                        existing.lsb = lsb
                        lsb_offsets[net.name] = lsb
                    continue
                raise ElaborationError(
                    f"module {module.name!r}: duplicate declaration "
                    f"{net.name!r}"
                )
            flat = prefix + net.name
            if net.array_dims:
                if len(net.array_dims) != 1:
                    raise ElaborationError(
                        "only one-dimensional memories are supported"
                    )
                width, _ = _range_geometry(
                    net.range, params, f"memory {net.name!r}"
                )
                dim = net.array_dims[0]
                lo = eval_constant(dim.msb, params)
                hi = eval_constant(dim.lsb, params)
                base, top_idx = min(lo, hi), max(lo, hi)
                design.memories[flat] = Memory(
                    name=flat, width=width, depth=top_idx - base + 1, base=base
                )
                rename[net.name] = flat
                continue
            width, lsb = _range_geometry(net.range, params, f"net {net.name!r}")
            if net.kind == "integer":
                width, lsb = 32, 0
            declared[net.name] = Signal(
                name=flat,
                width=width,
                signed=net.signed or net.kind == "integer",
                kind=net.kind,
                direction=None,
                lsb=lsb,
            )
            rename[net.name] = flat
            lsb_offsets[net.name] = lsb
            if net.init is not None:
                init_assigns.append((net.name, net.init))

        for sig in declared.values():
            design.signals[sig.name] = sig

        rewriter = _Rewriter(params, rename, lsb_offsets)

        # Declaration initializers: wire x = expr  ->  continuous assign;
        # reg r = expr  ->  initial value.
        for name, expr in init_assigns:
            target = ast.Identifier(name=rename[name])
            value = rewriter.expr(expr)
            if declared[name].kind == "wire":
                design.comb_assigns.append(CombAssign(target=target, value=value))
            else:
                design.initial_stmts.append(
                    ast.Assign(target=target, value=value, blocking=True)
                )

        for assign in module.assigns:
            design.comb_assigns.append(
                CombAssign(
                    target=rewriter.expr(assign.target),
                    value=rewriter.expr(assign.value),
                )
            )

        for block in module.always_blocks:
            body = rewriter.stmt(block.body)
            if block.is_combinational:
                design.comb_blocks.append(CombBlock(body=body))
            else:
                triggers = []
                for item in block.edge_items:
                    if item.signal not in rename:
                        raise ElaborationError(
                            f"module {module.name!r}: unknown trigger "
                            f"{item.signal!r}"
                        )
                    triggers.append((item.edge, rename[item.signal]))
                design.seq_blocks.append(SeqBlock(triggers=triggers, body=body))

        for block in module.initial_blocks:
            design.initial_stmts.append(rewriter.stmt(block.body))

        for inst in module.instances:
            self._elaborate_instance(
                design, module, inst, prefix, params, rewriter, depth
            )
        return rename

    def _elaborate_instance(
        self,
        design: Design,
        parent: ast.Module,
        inst: ast.Instance,
        prefix: str,
        parent_params: Dict[str, int],
        parent_rewriter: _Rewriter,
        depth: int,
    ) -> None:
        child = self._source.module(inst.module_name)
        if child is None:
            raise ElaborationError(
                f"module {parent.name!r} instantiates unknown module "
                f"{inst.module_name!r}"
            )
        # Parameter overrides fold in the parent's constant environment.
        child_overrides: Dict[str, int] = {}
        public_params = [p.name for p in child.params if not p.local]
        for pos, (name, expr) in enumerate(inst.param_overrides):
            value = eval_constant(expr, parent_params)
            if name is None:
                if pos >= len(public_params):
                    raise ElaborationError(
                        f"too many positional parameters for "
                        f"{inst.module_name!r}"
                    )
                child_overrides[public_params[pos]] = value
            else:
                child_overrides[name] = value

        child_prefix = f"{prefix}{inst.instance_name}."
        child_rename = self._instantiate(
            design, child, child_prefix, child_overrides, depth + 1, is_top=False
        )

        # Map connections to port names.
        conn_map: Dict[str, Optional[ast.Expr]] = {}
        positional = all(c.name is None for c in inst.connections)
        if positional and inst.connections:
            if len(inst.connections) > len(child.port_order):
                raise ElaborationError(
                    f"too many connections for {inst.module_name!r}"
                )
            for port_name, conn in zip(child.port_order, inst.connections):
                conn_map[port_name] = conn.expr
        else:
            for conn in inst.connections:
                if conn.name is None:
                    raise ElaborationError(
                        "cannot mix positional and named connections"
                    )
                conn_map[conn.name] = conn.expr

        for port in child.ports:
            flat_child = child_rename[port.name]
            expr = conn_map.get(port.name)
            if expr is None:
                if port.direction == "input":
                    # Unconnected input ties to 0.
                    design.comb_assigns.append(
                        CombAssign(
                            target=ast.Identifier(name=flat_child),
                            value=ast.Number(value=0),
                        )
                    )
                continue
            parent_expr = parent_rewriter.expr(expr)
            if port.direction == "input":
                design.comb_assigns.append(
                    CombAssign(
                        target=ast.Identifier(name=flat_child),
                        value=parent_expr,
                    )
                )
            elif port.direction == "output":
                design.comb_assigns.append(
                    CombAssign(
                        target=parent_expr,
                        value=ast.Identifier(name=flat_child),
                    )
                )
            else:
                raise ElaborationError("inout ports are not supported")
        unknown = set(conn_map) - {p.name for p in child.ports}
        if unknown:
            raise ElaborationError(
                f"{inst.module_name!r} has no port(s) "
                f"{', '.join(sorted(unknown))}"
            )


def elaborate(
    source: ast.SourceFile,
    top: str,
    overrides: Optional[Dict[str, int]] = None,
) -> Design:
    """Elaborate ``top`` from ``source`` with optional parameter overrides."""
    return _Elaborator(source).elaborate(top, overrides)
