"""Persistent on-disk cache for simulation compile artifacts.

Evaluation pool workers each pay the full lex -> parse -> elaborate ->
stimulate -> simulate pipeline for every golden module (the in-process
caches are per worker, and ``Design.__getstate__`` deliberately drops the
unpicklable closure caches), and duplicate low-temperature completions
re-elaborate verbatim-identical candidate sources in every fresh process.
This module gives those paths a disk tier:

* artifacts are pickled under a content-addressed key —
  ``sha256(kind, source, module name, *extra)`` — so a cache entry can
  never alias a different source text, module, or protocol; every entry
  carries :data:`BACKEND_VERSION` in an envelope, and a version mismatch
  (the entry predates a backend-semantics bump) is **counted and
  evicted** rather than silently served or stranded on disk forever;
* the cache root comes from the ``REPRO_SIM_CACHE`` environment variable
  or :func:`configure`; when neither is set every call is a cheap no-op,
  so the tier is strictly opt-in;
* writes are atomic (temp file + ``os.replace``) so concurrent pool
  workers can share one directory; unreadable/corrupt entries are
  deleted, treated as misses, and counted (a one-line warning fires the
  first time a corrupt entry is evicted in a process);
* every outcome feeds the :mod:`repro.obs` metrics registry
  (``sim.cache.hit`` / ``.miss`` / ``.store`` / ``.evict`` /
  ``.corrupt`` / ``.version_mismatch``), and :func:`stats` snapshots
  those counters — so cache behaviour is a measured quantity instead of
  an anecdote.

Consumers: :func:`repro.vereval.harness._golden_ref` persists whole
golden artifact bundles (design + stimulus + output trace),
:func:`repro.vereval.harness.check_candidate_source` persists elaborated
candidate designs, :func:`repro.vereval.harness.check_candidates_lockstep`
persists the lockstep grouping artifact (the structural shape digest of
each candidate, or its unbatchability), and
:class:`repro.evalkit.stages.CheckStage` forwards the configured cache
directory to pool workers.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from repro import obs
from repro.sim.elaborate import Design
from repro.testing import faults

__all__ = [
    "BACKEND_VERSION",
    "cache_dir",
    "configure",
    "load",
    "store",
    "stats",
    "get_design",
    "put_design",
    "get_shape",
    "put_shape",
    "UNBATCHABLE_SHAPE",
]

#: Version carried inside every entry's envelope.  Bump on any change to
#: backend semantics or to the layout of pickled artifacts: stale entries
#: are then counted as ``sim.cache.version_mismatch`` and evicted instead
#: of deserializing stale behaviour (or leaking on disk forever, as the
#: old key-embedded-version scheme did).  7: golden-ref artifacts grew
#: coverage/full_cycles slots (CEGIS), evicting pre-CEGIS pickles.
BACKEND_VERSION = 7

_ENV = "REPRO_SIM_CACHE"

#: process-wide override; None defers to the environment, "" disables
_configured: Optional[str] = None

_log = logging.getLogger("repro.sim.cache")

#: set after the first corrupt-entry eviction warning in this process
_warned_corrupt = False


def cache_dir() -> Optional[str]:
    """The active cache root, or None when the disk tier is disabled."""
    if _configured is not None:
        return _configured or None
    return os.environ.get(_ENV) or None


def configure(path: Optional[str]) -> Optional[str]:
    """Set the process-wide cache root; returns the previous override.

    ``None`` defers to ``REPRO_SIM_CACHE`` again; ``""`` disables the
    cache even if the environment variable is set.  Evaluation stages
    call this in pool workers so a run's cache directory survives
    executor start methods that do not inherit the environment.
    """
    global _configured
    previous = _configured
    _configured = path
    return previous


def stats() -> Dict[str, float]:
    """Snapshot of the ``sim.cache.*`` counters recorded so far.

    Counters accumulate per process and, after a parallel run, include
    the worker-side counts merged home through the executor's chunk
    buffers (see :mod:`repro.obs`).
    """
    snapshot = obs.counters("sim.cache.")
    return {name.split("sim.cache.", 1)[1]: value
            for name, value in snapshot.items()}


def _key(kind: str, *parts: str) -> str:
    digest = hashlib.sha256()
    digest.update(repr(("repro-sim-cache", kind)).encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def _path_for(root: str, key: str) -> str:
    # Two-level fan-out keeps directories small under large sweeps.
    return os.path.join(root, key[:2], key + ".pkl")


def _evict(path: str) -> None:
    try:
        os.remove(path)
        obs.count("sim.cache.evict")
    except OSError:
        pass


def _evict_corrupt(path: str) -> None:
    global _warned_corrupt
    obs.count("sim.cache.corrupt")
    obs.count("sim.cache.miss")
    _evict(path)
    if not _warned_corrupt:
        _warned_corrupt = True
        _log.warning(
            "evicted corrupt sim-cache entry %s (counted under "
            "sim.cache.corrupt; this warning fires once per process)",
            path,
        )


def load(kind: str, *parts: str) -> Optional[Any]:
    """Fetch the artifact stored under ``(kind, *parts)``, or None.

    Misses, a disabled cache, and unreadable entries all return None;
    corrupt and version-stale entries are evicted so they stop costing a
    read each time, and every outcome is counted (see :func:`stats`).
    """
    root = cache_dir()
    if root is None:
        return None
    path = _path_for(root, _key(kind, *parts))
    try:
        # An armed "raise" at this point stands in for a corrupt or
        # unreadable entry: it lands in the generic handler below, so
        # the evict-and-miss recovery path is directly testable.
        faults.fire("sim.cache.load")
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
    except FileNotFoundError:
        obs.count("sim.cache.miss")
        return None
    except Exception:
        _evict_corrupt(path)
        return None
    if not (isinstance(entry, tuple) and len(entry) == 2):
        _evict_corrupt(path)
        return None
    version, payload = entry
    if version != BACKEND_VERSION:
        obs.count("sim.cache.version_mismatch")
        obs.count("sim.cache.miss")
        _evict(path)
        return None
    obs.count("sim.cache.hit")
    return payload


def store(kind: str, payload: Any, *parts: str) -> bool:
    """Persist ``payload`` under ``(kind, *parts)``; True when written.

    The payload is wrapped in a ``(BACKEND_VERSION, payload)`` envelope.
    Atomic against concurrent writers of the same key (last replace
    wins — both wrote identical content-addressed payloads).  Failures
    (unpicklable payload, full disk, read-only root) are swallowed: the
    cache is an accelerator, never a correctness dependency.
    """
    root = cache_dir()
    if root is None:
        return False
    path = _path_for(root, _key(kind, *parts))
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    (BACKEND_VERSION, payload),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
    except Exception:
        return False
    obs.count("sim.cache.store")
    return True


def get_design(source: str, module_name: str) -> Optional[Design]:
    """Disk-cached elaborated design for ``module_name`` in ``source``."""
    design = load("design", source, module_name)
    return design if isinstance(design, Design) else None


def put_design(source: str, module_name: str, design: Design) -> bool:
    """Persist an elaborated design keyed by its exact source text."""
    return store("design", design, source, module_name)


#: marker stored instead of a digest when a candidate cannot carry a
#: lockstep lane at all (not statically lowerable / not levelizable /
#: wider than the int64 lane budget)
UNBATCHABLE_SHAPE = ""


def get_shape(
    source: str, module_name: str, representation: str = "auto"
) -> Optional[str]:
    """Cached lockstep shape digest for ``module_name`` in ``source``.

    Returns the digest string, :data:`UNBATCHABLE_SHAPE` when the
    candidate is known not to lane-lower, or None on a miss.  This is
    the grouping half of the lockstep compile artifact: pool workers and
    later runs group candidates without re-probing the compiler, and the
    digest can never alias a different source because the key hashes the
    full text (the envelope's :data:`BACKEND_VERSION` check evicts
    digests stranded by grouping-rule changes).  ``representation`` is
    the active lane-representation pin
    (:func:`repro.sim.batch.configured_lane_representation`): the same
    source groups differently under different pins — a >63-bit design is
    a spill lane under ``"auto"`` but unbatchable under a forced
    ``"int64"`` — so the pin is part of the key.
    """
    shape = load("lockstep-shape", source, module_name, representation)
    return shape if isinstance(shape, str) else None


def put_shape(
    source: str,
    module_name: str,
    digest: str,
    representation: str = "auto",
) -> bool:
    """Persist a lockstep shape digest (or :data:`UNBATCHABLE_SHAPE`).

    ``representation`` must be the same lane-representation pin the
    digest was computed under (see :func:`get_shape`).
    """
    return store("lockstep-shape", digest, source, module_name, representation)
