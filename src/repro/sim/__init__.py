"""Cycle-based two-state RTL simulator with two execution backends.

This package substitutes for the commercial/open-source simulation used by
VerilogEval to decide functional correctness.  It elaborates a parsed
design (resolving parameters and flattening hierarchy), then simulates it
with synchronous semantics:

* continuous assignments and combinational ``always`` blocks settle after
  every input or state change;
* edge-triggered ``always`` blocks execute on clock edges with nonblocking
  assignments committed atomically (async resets are honoured via edge
  detection on every input change);
* all state is two-valued — registers start at 0 and designs are expected
  to be reset-initialized, which holds for the benchmark problems.

Execution backends
------------------

``Simulator(design)`` fronts three cycle-identical backends:

========== ==================== ===========================================
backend    module               when it is selected
========== ==================== ===========================================
compiled   repro.sim.compile    default (``"auto"``): slot-indexed state,
                                closure-compiled nodes, levelized schedule
                                driven by a fanout dirty set — one stimulus
                                stream, fastest scalar path
interp     repro.sim.simulator  ``backend="interp"``, or ``"auto"`` when
                                the design cannot be statically lowered;
                                AST-walking ground truth for differentials
batch      repro.sim.batch      ``backend="batch"`` or the lane APIs
                                (``BatchSimulator(n_lanes=...)``,
                                ``BatchTestbench``,
                                ``sweep_random_stimulus``): per-slot numpy
                                int64 arrays of shape ``[n_lanes]``, one
                                full-level sweep evaluates every lane —
                                many stimulus streams per node visit
========== ==================== ===========================================

Backend selection: ``Simulator(design, backend=...)``, the
``REPRO_SIM_BACKEND`` environment variable, or
:func:`~repro.sim.simulator.set_default_backend`.  ``"auto"`` uses the
compiled backend whenever the design statically lowers and silently falls
back to the interpreter otherwise.

Fallback contracts: regions the static scheduler cannot levelize
(combinational cycles, multiple combinational drivers of one signal, or a
block reading a value it also drives) still run compiled node bodies, but
under the interpreter's bounded full-pass fixpoint — same evaluation
order, same round bound, same ``SimulationError`` classification for true
combinational loops (*fixpoint fallback*).  The batch backend narrows
further: designs that do not levelize fall back to the scalar backends
(*scalar fallback*) — signals wider than the 63-bit int64 lane budget
instead ride exact python-int *spill* lanes, and 1-bit-dominated control
designs pack all lanes into per-bit *bitslice* planes (census in
:func:`repro.sim.batch.lane_representation`, pinnable via
``REPRO_SIM_LANES``) — and the rare lane that hits an unrepresentable
runtime construct replays on the scalar path — so per-lane values and
error classification always match a lane-by-lane scalar run.  Differential tests in
``tests/test_sim_compile.py`` and ``tests/test_sim_batch.py`` enforce
cycle identity across every ``vgen`` family and the vereval problem set.

Compiled artifacts can persist across processes through the opt-in disk
cache in :mod:`repro.sim.cache` (``REPRO_SIM_CACHE=/path`` — see that
module for the key scheme), which evaluation pool workers use to skip
re-lexing/re-parsing/re-elaborating golden and duplicate candidate
modules.

The lanes axis can also run over *candidate designs* instead of stimulus
streams: :func:`~repro.sim.batch.build_lockstep_group` batches
structurally compatible designs (grouped by
:func:`~repro.sim.batch.lockstep_shape_digest`) into a
:class:`~repro.sim.batch.LockstepSimulator` that steps one candidate per
lane under one shared stimulus, with lane retirement and dirty-level
schedule skipping — the engine behind
:func:`repro.vereval.check_candidates_lockstep`.  See
``docs/architecture.md`` for the full backend matrix and contracts.

The public entry points are :func:`elaborate` and the
:class:`~repro.sim.testbench.Testbench` /
:func:`~repro.sim.testbench.equivalence_check` harness (lane-parallel:
:class:`~repro.sim.testbench.BatchTestbench` /
:func:`~repro.sim.testbench.sweep_random_stimulus`; per-candidate:
:class:`~repro.sim.testbench.LockstepTestbench`).
"""

from repro.sim.values import mask, to_signed, from_signed, bit_length_for
from repro.sim.elaborate import Design, Signal, elaborate
from repro.sim.simulator import (
    BACKENDS,
    InterpreterSimulator,
    Simulator,
    default_backend,
    set_default_backend,
)
from repro.sim.compile import (
    CompiledDesign,
    CompiledSimulator,
    UncompilableDesign,
    compile_design,
)
from repro.sim.batch import (
    BatchDesign,
    BatchDivergence,
    BatchSimulator,
    LockstepGroup,
    LockstepSimulator,
    REPRESENTATIONS,
    UnbatchableDesign,
    batch_design,
    build_lockstep_group,
    configure_lane_representation,
    configured_lane_representation,
    lane_representation,
    lockstep_shape_digest,
    make_batch_simulator,
)
from repro.sim.coverage import CoverageTracker, POINTS_PER_BIT
from repro.sim.testbench import (
    BatchTestbench,
    EquivalenceResult,
    LockstepTestbench,
    StimulusVector,
    SweepResult,
    Testbench,
    equivalence_check,
    interface_signature,
    random_stimulus,
    simulate_source,
    sweep_random_stimulus,
)

__all__ = [
    "mask",
    "to_signed",
    "from_signed",
    "bit_length_for",
    "Design",
    "Signal",
    "elaborate",
    "BACKENDS",
    "Simulator",
    "InterpreterSimulator",
    "CompiledSimulator",
    "CompiledDesign",
    "UncompilableDesign",
    "compile_design",
    "BatchDesign",
    "BatchDivergence",
    "BatchSimulator",
    "LockstepGroup",
    "LockstepSimulator",
    "REPRESENTATIONS",
    "UnbatchableDesign",
    "batch_design",
    "build_lockstep_group",
    "configure_lane_representation",
    "configured_lane_representation",
    "lane_representation",
    "lockstep_shape_digest",
    "make_batch_simulator",
    "default_backend",
    "set_default_backend",
    "CoverageTracker",
    "POINTS_PER_BIT",
    "Testbench",
    "BatchTestbench",
    "LockstepTestbench",
    "StimulusVector",
    "SweepResult",
    "EquivalenceResult",
    "equivalence_check",
    "interface_signature",
    "random_stimulus",
    "simulate_source",
    "sweep_random_stimulus",
]
