"""Cycle-based two-state RTL simulator.

This package substitutes for the commercial/open-source simulation used by
VerilogEval to decide functional correctness.  It elaborates a parsed
design (resolving parameters and flattening hierarchy), then simulates it
with synchronous semantics:

* continuous assignments and combinational ``always`` blocks settle to a
  fixpoint after every input or state change;
* edge-triggered ``always`` blocks execute on clock edges with nonblocking
  assignments committed atomically (async resets are honoured via edge
  detection on every input change);
* all state is two-valued — registers start at 0 and designs are expected
  to be reset-initialized, which holds for the benchmark problems.

The public entry points are :func:`elaborate` and the
:class:`~repro.sim.testbench.Testbench` /
:func:`~repro.sim.testbench.equivalence_check` harness.
"""

from repro.sim.values import mask, to_signed, from_signed, bit_length_for
from repro.sim.elaborate import Design, Signal, elaborate
from repro.sim.simulator import Simulator
from repro.sim.testbench import (
    EquivalenceResult,
    StimulusVector,
    Testbench,
    equivalence_check,
    interface_signature,
    random_stimulus,
)

__all__ = [
    "mask",
    "to_signed",
    "from_signed",
    "bit_length_for",
    "Design",
    "Signal",
    "elaborate",
    "Simulator",
    "Testbench",
    "StimulusVector",
    "EquivalenceResult",
    "equivalence_check",
    "interface_signature",
    "random_stimulus",
]
