"""Cycle-based two-state RTL simulator with two execution backends.

This package substitutes for the commercial/open-source simulation used by
VerilogEval to decide functional correctness.  It elaborates a parsed
design (resolving parameters and flattening hierarchy), then simulates it
with synchronous semantics:

* continuous assignments and combinational ``always`` blocks settle after
  every input or state change;
* edge-triggered ``always`` blocks execute on clock edges with nonblocking
  assignments committed atomically (async resets are honoured via edge
  detection on every input change);
* all state is two-valued — registers start at 0 and designs are expected
  to be reset-initialized, which holds for the benchmark problems.

Execution backends
------------------

``Simulator(design)`` fronts two interchangeable backends:

* the **compiled backend** (:mod:`repro.sim.compile`, the default):
  :func:`~repro.sim.compile.compile_design` lowers the design once to
  slot-indexed state (signals/memories resolved to integer slots, widths
  and masks frozen), expressions and statement bodies to nested closures,
  and the acyclic combinational region to a levelized (topologically
  sorted) schedule.  A poke marks only the fanout cone dirty and executes
  it in one ordered pass — no global fixpoint iteration on the hot path.
* the **interpreter backend** (:class:`~repro.sim.simulator.InterpreterSimulator`):
  the original AST-walking reference implementation, kept as selectable
  ground truth for differential testing.

Backend selection: ``Simulator(design, backend="auto"|"compiled"|"interp")``,
the ``REPRO_SIM_BACKEND`` environment variable, or
:func:`~repro.sim.simulator.set_default_backend`.  ``"auto"`` uses the
compiled backend whenever the design statically lowers and silently falls
back to the interpreter otherwise.

Fixpoint fallback contract: regions the static scheduler cannot levelize
(combinational cycles, multiple combinational drivers of one signal, or a
block reading a value it also drives) still run compiled node bodies, but
under the interpreter's bounded full-pass fixpoint — same evaluation
order, same round bound, same ``SimulationError`` classification for true
combinational loops.  Both backends are cycle-identical; differential
tests in ``tests/test_sim_compile.py`` enforce this across every ``vgen``
family and the vereval problem set.

The public entry points are :func:`elaborate` and the
:class:`~repro.sim.testbench.Testbench` /
:func:`~repro.sim.testbench.equivalence_check` harness.
"""

from repro.sim.values import mask, to_signed, from_signed, bit_length_for
from repro.sim.elaborate import Design, Signal, elaborate
from repro.sim.simulator import (
    BACKENDS,
    InterpreterSimulator,
    Simulator,
    default_backend,
    set_default_backend,
)
from repro.sim.compile import (
    CompiledDesign,
    CompiledSimulator,
    UncompilableDesign,
    compile_design,
)
from repro.sim.testbench import (
    EquivalenceResult,
    StimulusVector,
    Testbench,
    equivalence_check,
    interface_signature,
    random_stimulus,
    simulate_source,
)

__all__ = [
    "mask",
    "to_signed",
    "from_signed",
    "bit_length_for",
    "Design",
    "Signal",
    "elaborate",
    "BACKENDS",
    "Simulator",
    "InterpreterSimulator",
    "CompiledSimulator",
    "CompiledDesign",
    "UncompilableDesign",
    "compile_design",
    "default_backend",
    "set_default_backend",
    "Testbench",
    "StimulusVector",
    "EquivalenceResult",
    "equivalence_check",
    "interface_signature",
    "random_stimulus",
    "simulate_source",
]
