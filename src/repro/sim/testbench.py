"""Testbench and equivalence-checking harness.

The functional benchmark (mini-VerilogEval) decides pass/fail for a model
completion by simulating it against the problem's golden module under the
same stimulus and comparing every output each cycle.  This module provides:

* :class:`Testbench` — drive a single design with named clock/reset,
* :class:`BatchTestbench` — drive N independent lanes of one design in
  lockstep on the lane-parallel numpy backend (:mod:`repro.sim.batch`),
* :func:`random_stimulus` — seeded random input vectors,
* :func:`sweep_random_stimulus` — N seeded stimulus episodes at once,
  lane-parallel when the design lowers, scalar replay otherwise,
* :func:`equivalence_check` — lockstep golden-vs-candidate comparison.

All front the multi-backend :class:`~repro.sim.simulator.Simulator`
(compiled by default, interpreter as reference, lane-parallel ``batch``);
pass ``backend=`` to pin one explicitly.  ``Testbench.drive`` applies a
whole stimulus vector through
:meth:`~repro.sim.simulator.Simulator.poke_many`, so one vector costs one
combinational settle and one edge-detection pass regardless of how many
inputs it carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.batch import (
    BatchSimulator,
    LockstepGroup,
    LockstepSimulator,
    UnbatchableDesign,
    make_batch_simulator,
)
from repro.sim.compile import UncompilableDesign
from repro.sim.elaborate import Design, elaborate
from repro.sim.simulator import Simulator
from repro.sim.values import mask
from repro.utils.rng import DeterministicRNG
from repro.verilog import ast

#: One cycle of input values, keyed by port name (clock excluded).
StimulusVector = Dict[str, int]


class Testbench:
    """Synchronous test harness around a :class:`Simulator`.

    If ``clock`` is None the design is treated as purely combinational:
    ``step`` just applies inputs and settles.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        design: Design,
        clock: Optional[str] = "clk",
        reset: Optional[str] = None,
        reset_active_high: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self.design = design
        self.sim = self._make_simulator(design, backend)
        input_names = {s.name for s in design.inputs}
        if clock is not None and clock not in input_names:
            clock = None  # combinational design; tolerate a missing clock
        self.clock = clock
        if reset is not None and reset not in input_names:
            reset = None
        self.reset = reset
        self.reset_active_high = reset_active_high
        # Port name lists are per-design constants; resolve them once
        # instead of re-walking the signal table every sample().
        special = {self.clock, self.reset}
        self._input_names = [
            s.name for s in design.inputs if s.name not in special
        ]
        self._output_names = [s.name for s in design.outputs]

    def _make_simulator(self, design: Design,
                        backend: Optional[str]) -> Simulator:
        """Backend-selection hook (BatchTestbench builds lane sims)."""
        return Simulator(design, backend=backend)

    @property
    def input_names(self) -> List[str]:
        return self._input_names

    @property
    def output_names(self) -> List[str]:
        return self._output_names

    def apply_reset(self, cycles: int = 2) -> None:
        """Assert reset for ``cycles`` clock cycles, then deassert."""
        if self.reset is None:
            return
        active = 1 if self.reset_active_high else 0
        self.sim.poke(self.reset, active)
        if self.clock is not None:
            for _ in range(cycles):
                self.tick()
        self.sim.poke(self.reset, 1 - active)

    def drive(self, vector: StimulusVector) -> None:
        """Apply one vector of input values (no clock toggle).

        The whole vector lands in one batch: one settle, one
        edge-detection pass (see :meth:`Simulator.poke_many`).
        """
        self.sim.poke_many(vector)

    def tick(self, cycles: int = 1) -> None:
        """Toggle the clock low->high ``cycles`` times."""
        if self.clock is None:
            return
        for _ in range(cycles):
            self.sim.poke(self.clock, 0)
            self.sim.poke(self.clock, 1)

    def step(self, vector: StimulusVector) -> Dict[str, int]:
        """Apply inputs, advance one cycle (if clocked), read outputs."""
        self.drive(vector)
        self.tick()
        return self.sample()

    def sample(self) -> Dict[str, int]:
        """Read all outputs after combinational settle."""
        peek = self.sim.peek
        return {name: peek(name) for name in self._output_names}


def random_stimulus(
    design: Design,
    cycles: int,
    seed: int,
    exclude: Sequence[str] = ("clk", "rst", "rst_n", "reset", "resetn"),
) -> List[StimulusVector]:
    """Generate ``cycles`` random input vectors for ``design``.

    Values are uniform over each input's width.  Control-looking inputs in
    ``exclude`` are left to the harness.  The data-input list and each
    input's range are resolved once up front, not per cycle.
    """
    rng = DeterministicRNG(seed)
    spans = [
        (s.name, (1 << s.width) - 1)
        for s in design.inputs
        if s.name not in exclude
    ]
    return [
        {name: rng.randint(0, hi) for name, hi in spans}
        for _ in range(cycles)
    ]


class BatchTestbench(Testbench):
    """Synchronous harness stepping ``n_lanes`` episodes in lockstep.

    Same protocol as :class:`Testbench` (clock/reset resolution, batched
    ``drive``, ``step = drive + tick + sample``) but the simulator is a
    lane-parallel :class:`~repro.sim.batch.BatchSimulator`: every poke
    value may be an int (broadcast to all lanes) or a per-lane int64
    array, and ``sample`` returns per-lane arrays.  Construction raises
    :class:`~repro.sim.batch.UnbatchableDesign` when the design cannot be
    lane-lowered — callers fall back to N scalar benches (see
    :func:`sweep_random_stimulus`, which automates exactly that) — and
    ``ValueError`` for ``n_lanes < 1`` or a per-lane poke value whose
    shape does not match the lane count.

    Example (three lanes of one adder, each with its own operands):

    >>> from repro.sim import BatchTestbench, elaborate
    >>> from repro.verilog import parse_source
    >>> import numpy as np
    >>> design = elaborate(parse_source(
    ...     "module add(input [3:0] a, input [3:0] b, output [4:0] y);"
    ...     " assign y = a + b; endmodule"), "add")
    >>> bench = BatchTestbench(design, n_lanes=3, clock=None)
    >>> out = bench.step({"a": np.array([1, 2, 3]), "b": 10})
    >>> out["y"].tolist()
    [11, 12, 13]
    """

    def __init__(
        self,
        design: Design,
        n_lanes: int,
        clock: Optional[str] = "clk",
        reset: Optional[str] = None,
        reset_active_high: bool = True,
    ) -> None:
        self.n_lanes = n_lanes  # read by _make_simulator during super init
        super().__init__(design, clock, reset, reset_active_high)

    def _make_simulator(self, design: Design,
                        backend: Optional[str]) -> BatchSimulator:
        return make_batch_simulator(design, n_lanes=self.n_lanes)

    def sample(self) -> Dict[str, np.ndarray]:
        """Per-lane output arrays after combinational settle."""
        peek_lanes = self.sim.peek_lanes
        return {name: peek_lanes(name) for name in self._output_names}


class LockstepTestbench(Testbench):
    """Harness stepping one *candidate group* — one candidate per lane.

    Where :class:`BatchTestbench` runs one design under N stimulus
    streams, this bench runs N structurally compatible designs (a
    :class:`~repro.sim.batch.LockstepGroup`, see
    :func:`~repro.sim.batch.build_lockstep_group`) under one shared
    stimulus: ``drive``/``tick`` broadcast to every lane, ``sample``
    returns per-lane (per-candidate) output arrays, and
    ``sim.retire_lanes`` drops candidates whose verdict is already
    decided.  This is the execution engine behind
    :func:`repro.vereval.harness.check_candidates_lockstep`; port
    resolution follows the group's first design (all members share the
    interface by construction).
    """

    def __init__(
        self,
        group: LockstepGroup,
        clock: Optional[str] = "clk",
        reset: Optional[str] = None,
        reset_active_high: bool = True,
    ) -> None:
        self._group = group
        super().__init__(group.designs[0], clock, reset, reset_active_high)

    def _make_simulator(self, design: Design,
                        backend: Optional[str]) -> LockstepSimulator:
        return LockstepSimulator(self._group)

    def sample(self) -> Dict[str, np.ndarray]:
        """Per-lane (per-candidate) output arrays after settle."""
        peek_lanes = self.sim.peek_lanes
        return {name: peek_lanes(name) for name in self._output_names}


@dataclass
class SweepResult:
    """Per-lane outcomes of a multi-seed stimulus sweep.

    ``traces[lane]`` is one output tuple per completed cycle, aligned to
    ``output_names``; ``errors[lane]`` carries the lane's
    ``SimulationError`` message (with a truncated trace) when the episode
    failed.  ``vectorized`` records whether the lane-parallel backend ran
    the sweep or the scalar replay did — outcomes are identical either
    way, which ``tests/test_sim_batch.py`` enforces.
    """

    seeds: Tuple[int, ...]
    output_names: Tuple[str, ...]
    traces: List[List[Tuple[int, ...]]]
    errors: List[Optional[str]]
    vectorized: bool

    def lane(self, index: int) -> List[Dict[str, int]]:
        """Materialize one lane's trace as per-cycle output dicts."""
        return [
            dict(zip(self.output_names, row)) for row in self.traces[index]
        ]

    @property
    def ok(self) -> bool:
        return all(error is None for error in self.errors)


def sweep_random_stimulus(
    design: Design,
    cycles: int,
    seeds: Sequence[int],
    clock: Optional[str] = "clk",
    reset: Optional[str] = None,
    reset_active_high: bool = True,
    exclude: Sequence[str] = ("clk", "rst", "rst_n", "reset", "resetn"),
    backend: Optional[str] = None,
    stimuli: Optional[Sequence[Sequence[StimulusVector]]] = None,
) -> SweepResult:
    """Run one seeded :func:`random_stimulus` episode per lane.

    With ``backend`` ``None`` or ``"batch"`` the sweep runs all episodes
    in lockstep on the lane-parallel backend; designs that cannot lane
    lower — or a lane that hits a construct int64 lanes cannot represent
    (:class:`~repro.sim.batch.BatchDivergence`) — transparently replay on
    the scalar backend, so per-lane results (values *and* error
    classification) always match a lane-by-lane scalar run.  Pass
    ``backend="compiled"``/``"interp"``/``"auto"`` to force the scalar
    path, which is how the differential tests build their reference.

    ``stimuli`` supplies one pre-generated episode (a vector list) per
    lane instead of deriving them from ``seeds`` — for custom stimulus
    programs, or to amortize generation across repeated sweeps.

    Malformed inputs fail fast with ``ValueError`` (negative ``cycles``,
    a ``stimuli`` list whose length does not match ``seeds``) rather
    than as a broadcasting error deep inside numpy; the same applies to
    per-lane poke arrays whose shape does not match the lane count.

    Example (two seeded episodes of a toggling register, in lockstep):

    >>> from repro.sim import elaborate, sweep_random_stimulus
    >>> from repro.verilog import parse_source
    >>> design = elaborate(parse_source(
    ...     "module t(input clk, input d, output reg q);"
    ...     " always @(posedge clk) q <= d; endmodule"), "t")
    >>> result = sweep_random_stimulus(design, cycles=4, seeds=(0, 1))
    >>> result.vectorized, result.ok, len(result.traces)
    (True, True, 2)
    >>> result.lane(0) == [
    ...     {"q": row[0]} for row in result.traces[0]]
    True
    """
    if cycles < 0:
        raise ValueError(f"cycles must be >= 0, got {cycles}")
    seeds = tuple(seeds)
    if not seeds:
        return SweepResult(
            seeds=(), output_names=tuple(s.name for s in design.outputs),
            traces=[], errors=[], vectorized=False,
        )
    lockstep = True
    if stimuli is None:
        stimuli = [
            random_stimulus(design, cycles, seed, exclude) for seed in seeds
        ]
    else:
        if len(stimuli) != len(seeds):
            raise ValueError(
                "stimuli must supply exactly one episode per lane"
            )
        stimuli = [list(episode) for episode in stimuli]
        # Lanes step in lockstep; ragged episode lengths can only run on
        # the scalar path (which the fallback below is anyway).
        lockstep = len({len(episode) for episode in stimuli}) <= 1
    if lockstep and backend in (None, "batch"):
        try:
            return _sweep_lanes(
                design, stimuli, seeds, clock, reset, reset_active_high
            )
        except (UncompilableDesign, SimulationError):
            pass  # scalar replay preserves per-lane verdicts exactly
    scalar_backend = None if backend in (None, "batch") else backend
    return _sweep_scalar(
        design, stimuli, seeds, clock, reset, reset_active_high,
        scalar_backend,
    )


def _lane_vector(values: List[int], wide: bool) -> np.ndarray:
    """Per-lane stimulus column; object dtype keeps >63-bit values exact."""
    if wide:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    return np.fromiter(values, dtype=np.int64, count=len(values))


def _sweep_lanes(design, stimuli, seeds, clock, reset,
                 reset_active_high) -> SweepResult:
    n_lanes = len(seeds)
    bench = BatchTestbench(
        design, n_lanes, clock, reset, reset_active_high
    )
    bench.apply_reset()
    names = tuple(bench.output_names)
    traces: List[List[Tuple[int, ...]]] = [[] for _ in seeds]
    input_names = list(stimuli[0][0]) if stimuli and stimuli[0] else []
    wide = bench.sim.bdesign.lane_dtype is object
    for cycle in range(len(stimuli[0]) if stimuli else 0):
        vector = {
            name: _lane_vector(
                [stimuli[lane][cycle][name] for lane in range(n_lanes)], wide
            )
            for name in input_names
        }
        outputs = bench.step(vector)
        if names:
            rows = np.stack([outputs[name] for name in names], axis=1)
            for lane, row in enumerate(rows.tolist()):
                traces[lane].append(tuple(row))
        else:
            for lane in range(n_lanes):
                traces[lane].append(())
    return SweepResult(
        seeds=seeds,
        output_names=names,
        traces=traces,
        errors=[None] * n_lanes,
        vectorized=True,
    )


def _sweep_scalar(design, stimuli, seeds, clock, reset, reset_active_high,
                  backend) -> SweepResult:
    names = tuple(s.name for s in design.outputs)
    traces: List[List[Tuple[int, ...]]] = []
    errors: List[Optional[str]] = []
    for stimulus in stimuli:
        trace: List[Tuple[int, ...]] = []
        error: Optional[str] = None
        try:
            bench = Testbench(
                design, clock, reset, reset_active_high, backend=backend
            )
            bench.apply_reset()
            peek = bench.sim.peek
            for vector in stimulus:
                bench.drive(vector)
                bench.tick()
                trace.append(tuple(peek(name) for name in names))
        except SimulationError as exc:
            error = str(exc)
        traces.append(trace)
        errors.append(error)
    return SweepResult(
        seeds=tuple(seeds),
        output_names=names,
        traces=traces,
        errors=errors,
        vectorized=False,
    )


@dataclass
class EquivalenceResult:
    """Outcome of a lockstep golden-vs-candidate comparison."""

    equivalent: bool
    cycles_run: int = 0
    first_mismatch_cycle: Optional[int] = None
    mismatched_output: Optional[str] = None
    expected: Optional[int] = None
    actual: Optional[int] = None
    error: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def interface_signature(design: Design) -> Dict[str, Dict[str, int]]:
    """Port names and widths, the equality key for interface checks."""
    return {
        "inputs": {s.name: s.width for s in design.inputs},
        "outputs": {s.name: s.width for s in design.outputs},
    }


_interface_signature = interface_signature


def equivalence_check(
    golden: Design,
    candidate: Design,
    stimulus: Sequence[StimulusVector],
    clock: Optional[str] = "clk",
    reset: Optional[str] = None,
    reset_active_high: bool = True,
    reset_cycles: int = 2,
    backend: Optional[str] = None,
) -> EquivalenceResult:
    """Simulate both designs in lockstep and compare outputs every cycle.

    The candidate must present exactly the golden interface (same port
    names and widths); an interface mismatch is an immediate fail, which
    mirrors how VerilogEval rejects completions that alter the provided
    module header.
    """
    if _interface_signature(golden) != _interface_signature(candidate):
        return EquivalenceResult(
            equivalent=False,
            error="interface mismatch",
            notes=[
                f"golden={_interface_signature(golden)}",
                f"candidate={_interface_signature(candidate)}",
            ],
        )
    try:
        tb_gold = Testbench(golden, clock, reset, reset_active_high,
                            backend=backend)
        tb_cand = Testbench(candidate, clock, reset, reset_active_high,
                            backend=backend)
        tb_gold.apply_reset(reset_cycles)
        tb_cand.apply_reset(reset_cycles)
        for cycle, vector in enumerate(stimulus):
            out_gold = tb_gold.step(vector)
            out_cand = tb_cand.step(vector)
            for name, expected in out_gold.items():
                actual = out_cand.get(name)
                if actual != expected:
                    return EquivalenceResult(
                        equivalent=False,
                        cycles_run=cycle + 1,
                        first_mismatch_cycle=cycle,
                        mismatched_output=name,
                        expected=expected,
                        actual=actual,
                    )
    except SimulationError as exc:
        return EquivalenceResult(equivalent=False, error=str(exc))
    return EquivalenceResult(equivalent=True, cycles_run=len(stimulus))


def simulate_source(
    source_file: "ast.SourceFile",
    top: str,
    stimulus: Sequence[StimulusVector],
    clock: Optional[str] = "clk",
    reset: Optional[str] = None,
    backend: Optional[str] = None,
) -> List[Dict[str, int]]:
    """Convenience: elaborate ``top`` and return per-cycle output samples."""
    design = elaborate(source_file, top)
    bench = Testbench(design, clock, reset, backend=backend)
    bench.apply_reset()
    return [bench.step(vector) for vector in stimulus]
